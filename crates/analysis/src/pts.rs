//! Points-to analysis over the IR.
//!
//! An Andersen-style inclusion analysis with configurable precision,
//! implementing the tier ladder of [`AliasTier`]:
//!
//! * register points-to sets, flow-insensitive or flow-sensitive;
//! * an abstract store (`(object, field) -> points-to set`) that is
//!   always flow-insensitive (standard), field-sensitive only at the
//!   path-based tier and above;
//! * allocation sites collapsed or distinguished;
//! * library calls clobbering everything or using effect summaries.
//!
//! All configurations are sound over-approximations of the programs this
//! workspace builds (pointers originate from region bases and `Alloc`,
//! never forged from integer constants), which the crate's property tests
//! verify against dynamically observed dependences.

use crate::tier::AliasTier;
use helix_ir::{
    AddrBase, AddrExpr, BlockId, Inst, InstSite, Intrinsic, Operand, Program, Reg, RegionId,
};
use std::collections::{BTreeMap, BTreeSet};

/// An abstract memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObjKey {
    /// A statically declared region.
    Region(RegionId),
    /// A specific allocation site (path-based tier and above).
    AllocSite(InstSite),
    /// All heap allocations, collapsed (lower tiers).
    AllocAny,
}

/// Field granularity within an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FieldKey {
    /// A specific constant byte offset.
    At(i64),
    /// Any offset (indexed or otherwise imprecise access).
    Any,
}

impl FieldKey {
    /// Whether two field accesses (with byte lengths) may overlap.
    pub fn overlaps(self, len_a: u64, other: FieldKey, len_b: u64) -> bool {
        match (self, other) {
            (FieldKey::Any, _) | (_, FieldKey::Any) => true,
            (FieldKey::At(a), FieldKey::At(b)) => {
                let (a0, a1) = (a, a + len_a as i64);
                let (b0, b1) = (b, b + len_b as i64);
                a0 < b1 && b0 < a1
            }
        }
    }
}

/// A points-to set: a set of objects, possibly `unknown` (⊤), possibly
/// `adjusted` (the pointer has been moved by arithmetic, so field offsets
/// computed from it are unreliable).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PtSet {
    /// Concrete objects the value may point to.
    pub objs: BTreeSet<ObjKey>,
    /// The value may point anywhere.
    pub unknown: bool,
    /// The pointer has undergone non-trivial arithmetic.
    pub adjusted: bool,
}

impl PtSet {
    /// The empty (definitely-not-a-pointer) set.
    pub fn empty() -> PtSet {
        PtSet::default()
    }

    /// The ⊤ set.
    pub fn top() -> PtSet {
        PtSet {
            objs: BTreeSet::new(),
            unknown: true,
            adjusted: true,
        }
    }

    /// A singleton set.
    pub fn single(obj: ObjKey) -> PtSet {
        let mut objs = BTreeSet::new();
        objs.insert(obj);
        PtSet {
            objs,
            unknown: false,
            adjusted: false,
        }
    }

    /// Whether this set denotes "definitely not a pointer".
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty() && !self.unknown
    }

    /// Union with another set; returns whether `self` changed.
    pub fn merge(&mut self, other: &PtSet) -> bool {
        let before = (self.objs.len(), self.unknown, self.adjusted);
        self.unknown |= other.unknown;
        self.adjusted |= other.adjusted;
        self.objs.extend(other.objs.iter().copied());
        before != (self.objs.len(), self.unknown, self.adjusted)
    }
}

/// An abstract location: object plus field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AbsLoc {
    /// The object.
    pub obj: ObjKey,
    /// The field within it.
    pub field: FieldKey,
}

/// The set of abstract locations an access may touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocSet {
    /// Locations (empty + `unknown` = may touch anything).
    pub locs: BTreeSet<AbsLoc>,
    /// May touch any location at all.
    pub unknown: bool,
    /// Access length in bytes (for field overlap checks).
    pub len: u64,
}

impl LocSet {
    /// A location set that may touch anything (`len` is the nominal
    /// access width).
    pub fn top(len: u64) -> LocSet {
        LocSet {
            locs: BTreeSet::new(),
            unknown: true,
            len,
        }
    }

    /// Whether two access location sets may overlap.
    pub fn may_overlap(&self, other: &LocSet) -> bool {
        if self.unknown || other.unknown {
            return true;
        }
        for a in &self.locs {
            for b in &other.locs {
                if a.obj == b.obj && a.field.overlaps(self.len, b.field, other.len) {
                    return true;
                }
            }
        }
        false
    }
}

/// Per-register points-to environment.
type RegEnv = BTreeMap<Reg, PtSet>;

/// Computed points-to information for a whole program.
#[derive(Debug, Clone)]
pub struct PointsTo {
    tier: AliasTier,
    /// Flow-insensitive register solution.
    global: RegEnv,
    /// Flow-sensitive entry states per block (only when the tier is flow
    /// sensitive).
    block_entry: Vec<RegEnv>,
    /// The abstract store: `(object, field) -> values stored there`.
    store: BTreeMap<AbsLoc, PtSet>,
    /// Values that escaped through unknown pointers (any load may observe
    /// them).
    escaped: PtSet,
}

impl PointsTo {
    /// Run the analysis on `program` at the given tier.
    pub fn analyze(program: &Program, tier: AliasTier) -> PointsTo {
        let mut pt = PointsTo {
            tier,
            global: RegEnv::new(),
            block_entry: vec![RegEnv::new(); program.graph.len()],
            store: BTreeMap::new(),
            escaped: PtSet::empty(),
        };
        if tier.flow_sensitive() {
            pt.solve_flow_sensitive(program);
        } else {
            pt.solve_flow_insensitive(program);
        }
        pt
    }

    /// The tier this solution was computed at.
    pub fn tier(&self) -> AliasTier {
        self.tier
    }

    fn solve_flow_insensitive(&mut self, program: &Program) {
        // Iterate transfer functions over every instruction until the
        // global register environment and the store stabilize.
        loop {
            let mut changed = false;
            for (bid, block) in program.graph.iter() {
                for (idx, inst) in block.insts.iter().enumerate() {
                    let site = InstSite {
                        block: bid,
                        index: idx,
                    };
                    let mut env = self.global.clone();
                    changed |= self.transfer(program, site, inst, &mut env);
                    // Merge env back into global (weak updates).
                    for (r, set) in env {
                        changed |= self
                            .global
                            .entry(r)
                            .or_insert_with(PtSet::empty)
                            .merge(&set);
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn solve_flow_sensitive(&mut self, program: &Program) {
        // Worklist over blocks; per-block entry environments; the store
        // stays flow-insensitive (weak updates), as is standard.
        let mut work: Vec<BlockId> = program.graph.iter().map(|(id, _)| id).collect();
        while let Some(bid) = work.pop() {
            let mut env = self.block_entry[bid.index()].clone();
            let block = program.graph.block(bid);
            let mut store_changed = false;
            for (idx, inst) in block.insts.iter().enumerate() {
                let site = InstSite {
                    block: bid,
                    index: idx,
                };
                store_changed |= self.transfer(program, site, inst, &mut env);
            }
            for succ in block.term.successors() {
                let entry = &mut self.block_entry[succ.index()];
                let mut changed = false;
                for (r, set) in &env {
                    changed |= entry.entry(*r).or_insert_with(PtSet::empty).merge(set);
                }
                if changed && !work.contains(&succ) {
                    work.push(succ);
                }
            }
            if store_changed {
                // Store updates can unlock new values at loads anywhere.
                for (id, _) in program.graph.iter() {
                    if !work.contains(&id) {
                        work.push(id);
                    }
                }
            }
        }
    }

    /// Apply one instruction's transfer function to `env`.
    /// Returns whether the (global) abstract store changed.
    fn transfer(
        &mut self,
        _program: &Program,
        site: InstSite,
        inst: &Inst,
        env: &mut RegEnv,
    ) -> bool {
        let mut store_changed = false;
        match inst {
            Inst::Const { dst, .. } => {
                env.insert(*dst, PtSet::empty());
            }
            Inst::Un { dst, .. } => {
                env.insert(*dst, PtSet::empty());
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                use helix_ir::BinOp::*;
                let set = match op {
                    Add | Sub => {
                        let mut s = self.operand_pts(env, *lhs);
                        s.merge(&self.operand_pts(env, *rhs));
                        // A copy (x + 0) preserves field precision;
                        // anything else is pointer arithmetic.
                        let is_copy = matches!(rhs, Operand::Imm(v) if v.as_int() == 0)
                            || matches!(lhs, Operand::Imm(v) if v.as_int() == 0);
                        if !is_copy && !s.is_empty() {
                            s.adjusted = true;
                        }
                        s
                    }
                    _ => PtSet::empty(),
                };
                env.insert(*dst, set);
            }
            Inst::Load { dst, addr, .. } => {
                let locs = self.addr_locs(env, addr, 8, false);
                let loaded = self.load_from(&locs);
                env.insert(*dst, loaded);
            }
            Inst::Store { src, addr, .. } => {
                let val = self.operand_pts(env, *src);
                if !val.is_empty() {
                    let locs = self.addr_locs(env, addr, 8, false);
                    store_changed |= self.store_to(&locs, &val);
                }
            }
            Inst::Call {
                dst,
                intrinsic,
                args,
            } => {
                if self.tier.lib_call_semantics() {
                    match intrinsic {
                        Intrinsic::Alloc => {
                            let obj = if self.tier.path_based() {
                                ObjKey::AllocSite(site)
                            } else {
                                ObjKey::AllocAny
                            };
                            if let Some(d) = dst {
                                env.insert(*d, PtSet::single(obj));
                            }
                        }
                        Intrinsic::Memcpy => {
                            // store[dst, Any] ∪= load(src, Any)
                            let dst_set = self.operand_pts(env, args[0]);
                            let src_set = self.operand_pts(env, args[1]);
                            let src_locs = Self::set_to_locs(&src_set, FieldKey::Any, 8);
                            let val = self.load_from(&src_locs);
                            if !val.is_empty() {
                                let dst_locs = Self::set_to_locs(&dst_set, FieldKey::Any, 8);
                                store_changed |= self.store_to(&dst_locs, &val);
                            }
                            if let Some(d) = dst {
                                env.insert(*d, PtSet::empty());
                            }
                        }
                        Intrinsic::Memset
                        | Intrinsic::PureHash
                        | Intrinsic::SinApprox
                        | Intrinsic::Rand
                        | Intrinsic::Free => {
                            if let Some(d) = dst {
                                env.insert(*d, PtSet::empty());
                            }
                        }
                    }
                } else {
                    // Unknown library call: clobber the world.
                    let mut esc = self.escaped.clone();
                    for a in args {
                        esc.merge(&self.operand_pts(env, *a));
                    }
                    esc.unknown = true;
                    store_changed |= self.escaped.merge(&esc);
                    if let Some(d) = dst {
                        env.insert(*d, PtSet::top());
                    }
                }
            }
            Inst::Wait { .. } | Inst::Signal { .. } | Inst::Nop { .. } => {}
        }
        store_changed
    }

    fn operand_pts(&self, env: &RegEnv, op: Operand) -> PtSet {
        match op {
            Operand::Reg(r) => env.get(&r).cloned().unwrap_or_else(PtSet::empty),
            Operand::Imm(_) => PtSet::empty(),
        }
    }

    fn set_to_locs(set: &PtSet, field: FieldKey, len: u64) -> LocSet {
        if set.unknown {
            return LocSet::top(len);
        }
        let field = if set.adjusted { FieldKey::Any } else { field };
        LocSet {
            locs: set.objs.iter().map(|&obj| AbsLoc { obj, field }).collect(),
            unknown: false,
            len,
        }
    }

    /// Abstract locations an address expression may denote, under `env`.
    ///
    /// `empty_is_top` distinguishes solving from querying: during fixpoint
    /// iteration an empty base set means "no flow discovered yet" and must
    /// stay bottom (monotonicity); at query time it means the pointer's
    /// origin is unknown to the analysis and the access must be treated
    /// conservatively.
    fn addr_locs(&self, env: &RegEnv, addr: &AddrExpr, len: u64, empty_is_top: bool) -> LocSet {
        let field_precise = self.tier.path_based();
        let base_set = match addr.base {
            AddrBase::Region(r) => PtSet::single(ObjKey::Region(r)),
            AddrBase::Reg(r) => env.get(&r).cloned().unwrap_or_else(PtSet::empty),
        };
        if base_set.unknown {
            return LocSet::top(len);
        }
        if base_set.is_empty() {
            return if empty_is_top {
                LocSet::top(len)
            } else {
                LocSet {
                    locs: BTreeSet::new(),
                    unknown: false,
                    len,
                }
            };
        }
        let field = if !field_precise || addr.index.is_some() || base_set.adjusted {
            FieldKey::Any
        } else {
            FieldKey::At(addr.offset)
        };
        Self::set_to_locs(&base_set, field, len)
    }

    fn load_from(&self, locs: &LocSet) -> PtSet {
        if locs.unknown {
            return PtSet::top();
        }
        let mut out = PtSet::empty();
        for loc in &locs.locs {
            // Collect every stored set whose location may overlap this
            // one. Field-insensitive tiers only ever produce `Any` keys.
            for (key, set) in &self.store {
                if key.obj == loc.obj && key.field.overlaps(8, loc.field, locs.len) {
                    out.merge(set);
                }
            }
        }
        // Anything that escaped may be observed through any pointer.
        out.merge(&self.escaped);
        out
    }

    fn store_to(&mut self, locs: &LocSet, val: &PtSet) -> bool {
        if locs.unknown {
            let mut v = val.clone();
            v.adjusted = true;
            return self.escaped.merge(&v);
        }
        let mut changed = false;
        for loc in &locs.locs {
            let key = if self.tier.path_based() {
                *loc
            } else {
                AbsLoc {
                    obj: loc.obj,
                    field: FieldKey::Any,
                }
            };
            changed |= self
                .store
                .entry(key)
                .or_insert_with(PtSet::empty)
                .merge(val);
        }
        changed
    }

    /// Register points-to set at a given program point.
    pub fn reg_at(&self, program: &Program, site: InstSite, reg: Reg) -> PtSet {
        if !self.tier.flow_sensitive() {
            return self.global.get(&reg).cloned().unwrap_or_else(PtSet::empty);
        }
        // Re-run the block's transfers from its entry state up to `site`.
        let mut env = self.block_entry[site.block.index()].clone();
        let block = program.graph.block(site.block);
        for (idx, inst) in block.insts.iter().enumerate() {
            if idx >= site.index {
                break;
            }
            let s = InstSite {
                block: site.block,
                index: idx,
            };
            // Cloning self to satisfy the borrow checker would be costly;
            // transfer only mutates the store, which is already at
            // fixpoint, so reuse it through a scratch copy of the parts
            // that could change.
            let mut scratch = self.clone_shallow();
            scratch.transfer(program, s, inst, &mut env);
        }
        env.get(&reg).cloned().unwrap_or_else(PtSet::empty)
    }

    fn clone_shallow(&self) -> PointsTo {
        PointsTo {
            tier: self.tier,
            global: BTreeMap::new(),
            block_entry: Vec::new(),
            store: self.store.clone(),
            escaped: self.escaped.clone(),
        }
    }

    /// Abstract locations the memory access at `site` may touch.
    ///
    /// `addr` and `len` come from the instruction itself.
    pub fn access_locs(
        &self,
        program: &Program,
        site: InstSite,
        addr: &AddrExpr,
        len: u64,
    ) -> LocSet {
        let env: RegEnv = if self.tier.flow_sensitive() {
            let mut env = RegEnv::new();
            for r in addr.reg_uses() {
                env.insert(r, self.reg_at(program, site, r));
            }
            env
        } else {
            self.global.clone()
        };
        self.addr_locs(&env, addr, len, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::{ProgramBuilder, Ty};

    /// Two disjoint regions; constant-offset accesses.
    #[test]
    fn disjoint_regions_never_alias() {
        let mut b = ProgramBuilder::new("t");
        let ra = b.region("a", 64, Ty::I64);
        let rb = b.region("b", 64, Ty::I64);
        let x = b.reg();
        b.load(x, AddrExpr::region(ra, 0), Ty::I64);
        b.store(x, AddrExpr::region(rb, 0), Ty::I64);
        let p = b.finish();
        for tier in AliasTier::ALL {
            let pts = PointsTo::analyze(&p, tier);
            let s0 = InstSite {
                block: BlockId(0),
                index: 0,
            };
            let s1 = InstSite {
                block: BlockId(0),
                index: 1,
            };
            let la = pts.access_locs(&p, s0, &AddrExpr::region(ra, 0), 8);
            let lb = pts.access_locs(&p, s1, &AddrExpr::region(rb, 0), 8);
            assert!(!la.may_overlap(&lb), "tier {tier}");
        }
    }

    #[test]
    fn same_region_distinct_fields_need_path_tier() {
        let mut b = ProgramBuilder::new("t");
        let r = b.region("a", 64, Ty::I64);
        let x = b.reg();
        b.load(x, AddrExpr::region(r, 0), Ty::I64);
        b.store(x, AddrExpr::region(r, 8), Ty::I64);
        let p = b.finish();
        let site = InstSite {
            block: BlockId(0),
            index: 0,
        };
        let a0 = AddrExpr::region(r, 0);
        let a8 = AddrExpr::region(r, 8);

        let base = PointsTo::analyze(&p, AliasTier::Vllpa);
        let la = base.access_locs(&p, site, &a0, 8);
        let lb = base.access_locs(&p, site, &a8, 8);
        assert!(la.may_overlap(&lb), "field-insensitive tier merges fields");

        let path = PointsTo::analyze(&p, AliasTier::PathBased);
        let la = path.access_locs(&p, site, &a0, 8);
        let lb = path.access_locs(&p, site, &a8, 8);
        assert!(!la.may_overlap(&lb), "field-sensitive tier splits fields");
    }

    #[test]
    fn overlapping_byte_ranges_alias_at_every_tier() {
        let mut b = ProgramBuilder::new("t");
        let r = b.region("a", 64, Ty::I64);
        let p = {
            let x = b.reg();
            b.load(x, AddrExpr::region(r, 0), Ty::I64);
            b.finish()
        };
        let pts = PointsTo::analyze(&p, AliasTier::LibCalls);
        let site = InstSite {
            block: BlockId(0),
            index: 0,
        };
        // [4..12) vs [8..16): overlap.
        let la = pts.access_locs(&p, site, &AddrExpr::region(r, 4), 8);
        let lb = pts.access_locs(&p, site, &AddrExpr::region(r, 8), 8);
        assert!(la.may_overlap(&lb));
        // [0..8) vs [8..16): no overlap.
        let lc = pts.access_locs(&p, site, &AddrExpr::region(r, 0), 8);
        assert!(!lc.may_overlap(&lb));
    }

    #[test]
    fn loaded_pointers_tracked_through_store() {
        // slots[0] = alloc(); p = load slots[0]; *p vs slots — distinct
        // objects at the lib-calls tier, conservatively aliased below it.
        let mut b = ProgramBuilder::new("t");
        let slots = b.region("slots", 64, Ty::I64);
        let [p, q] = b.regs();
        b.call(Some(p), Intrinsic::Alloc, vec![Operand::imm(32)]);
        b.store(p, AddrExpr::region(slots, 0), Ty::I64);
        b.load(q, AddrExpr::region(slots, 0), Ty::I64);
        b.store(q, AddrExpr::ptr(q, 8), Ty::I64);
        let prog = b.finish();

        let full = PointsTo::analyze(&prog, AliasTier::LibCalls);
        let deref_site = InstSite {
            block: BlockId(0),
            index: 3,
        };
        let deref = full.access_locs(&prog, deref_site, &AddrExpr::ptr(q, 8), 8);
        let slots_access = full.access_locs(&prog, deref_site, &AddrExpr::region(slots, 0), 8);
        assert!(
            !deref.may_overlap(&slots_access),
            "heap deref disjoint from slots at full tier"
        );

        let weak = PointsTo::analyze(&prog, AliasTier::Vllpa);
        let deref = weak.access_locs(&prog, deref_site, &AddrExpr::ptr(q, 8), 8);
        let slots_access = weak.access_locs(&prog, deref_site, &AddrExpr::region(slots, 0), 8);
        assert!(
            deref.may_overlap(&slots_access),
            "baseline clobbers via unknown call result"
        );
    }

    #[test]
    fn pointer_arithmetic_degrades_field_precision() {
        use helix_ir::BinOp;
        let mut b = ProgramBuilder::new("t");
        let r = b.region("a", 64, Ty::I64);
        let slots = b.region("slots", 64, Ty::I64);
        let [p, q] = b.regs();
        // p = &slots (via storing region pointer? We cannot take region
        // addresses directly, so alloc a node instead.)
        b.call(Some(p), Intrinsic::Alloc, vec![Operand::imm(32)]);
        b.bin(q, BinOp::Add, p, 8i64); // q = p + 8 (pointer arithmetic)
        b.store(q, AddrExpr::region(slots, 0), Ty::I64);
        let _ = r;
        let prog = b.finish();
        let pts = PointsTo::analyze(&prog, AliasTier::LibCalls);
        let site = InstSite {
            block: BlockId(0),
            index: 2,
        };
        // Accesses through q at "offset 0" may overlap accesses through p
        // at offset 8 — both collapse to FieldKey::Any.
        let via_q = pts.access_locs(&prog, site, &AddrExpr::ptr(q, 0), 8);
        let via_p = pts.access_locs(&prog, site, &AddrExpr::ptr(p, 8), 8);
        assert!(via_q.may_overlap(&via_p));
    }

    #[test]
    fn alloc_sites_distinguished_only_when_path_based() {
        let mut b = ProgramBuilder::new("t");
        let [p, q] = b.regs();
        b.call(Some(p), Intrinsic::Alloc, vec![Operand::imm(32)]);
        b.call(Some(q), Intrinsic::Alloc, vec![Operand::imm(32)]);
        b.store(p, AddrExpr::ptr(p, 0), Ty::I64);
        b.store(q, AddrExpr::ptr(q, 0), Ty::I64);
        let prog = b.finish();

        let site = InstSite {
            block: BlockId(0),
            index: 2,
        };
        let full = PointsTo::analyze(&prog, AliasTier::LibCalls);
        let lp = full.access_locs(&prog, site, &AddrExpr::ptr(p, 0), 8);
        let lq = full.access_locs(&prog, site, &AddrExpr::ptr(q, 0), 8);
        assert!(!lp.may_overlap(&lq), "distinct alloc sites disjoint");
    }

    #[test]
    fn flow_sensitivity_separates_reassigned_pointer() {
        // p = alloc A; store via p; p = alloc B; store via p.
        // Flow-insensitive: p maps to {A, B} at both stores -> overlap.
        // Flow-sensitive (with site sensitivity): first store touches only
        // A, second only B.
        let mut b = ProgramBuilder::new("t");
        let p = b.reg();
        b.call(Some(p), Intrinsic::Alloc, vec![Operand::imm(32)]);
        b.store(p, AddrExpr::ptr(p, 0), Ty::I64);
        b.call(Some(p), Intrinsic::Alloc, vec![Operand::imm(32)]);
        b.store(p, AddrExpr::ptr(p, 8), Ty::I64);
        let prog = b.finish();
        let s1 = InstSite {
            block: BlockId(0),
            index: 1,
        };
        let s3 = InstSite {
            block: BlockId(0),
            index: 3,
        };
        let full = PointsTo::analyze(&prog, AliasTier::LibCalls);
        let first = full.access_locs(&prog, s1, &AddrExpr::ptr(p, 0), 8);
        let second = full.access_locs(&prog, s3, &AddrExpr::ptr(p, 8), 8);
        assert!(!first.may_overlap(&second));
    }
}
