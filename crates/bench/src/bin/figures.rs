//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p helix-bench --bin figures -- all
//! cargo run --release -p helix-bench --bin figures -- fig07 fig12
//! cargo run --release -p helix-bench --bin figures -- --full fig07
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = helix_bench::harness_scale(full);
    let figures: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if figures.is_empty() {
        eprintln!(
            "usage: figures [--full] <{}>",
            helix_bench::FIGURES.join("|")
        );
        std::process::exit(2);
    }
    for f in figures {
        if let Err(e) = helix_bench::run_one(f, scale) {
            eprintln!("error running {f}: {e}");
            std::process::exit(1);
        }
    }
}
