//! The ring cache proper: nodes, lanes, value circulation, signal
//! broadcast, owner-mediated miss service, and the end-of-loop flush.
//!
//! Data and signals share one ordered main lane per link, which realizes
//! the paper's lockstep property: "signals move in lockstep with
//! forwarded data to ensure that a shared memory location is not accessed
//! before the data arrives" (§5.1). Per-cycle link budgets are charged
//! separately (words of data vs. signals), with head-of-line blocking so
//! ordering is never violated. Service traffic (ring-miss requests and
//! replies) moves on two dedicated lanes, as in Fig. 6, so it cannot
//! deadlock the main lane.

use crate::array::{CacheArray, Insert};
use crate::config::RingConfig;
use crate::stats::{RingStats, SharingProfile};
use helix_ir::SegmentId;
use std::cell::Cell;
use std::collections::VecDeque;

/// Main-lane message: a circulated store or a broadcast signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MainMsg {
    /// `(address, origin node)`.
    Data { addr: u64, origin: u8 },
    /// `(segment, source core, origin node)`.
    Signal { seg: SegmentId, src: u8, origin: u8 },
}

impl MainMsg {
    fn origin(&self) -> usize {
        match self {
            MainMsg::Data { origin, .. } | MainMsg::Signal { origin, .. } => *origin as usize,
        }
    }
}

/// Service-lane request: `requester` asks `owner` for `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReqMsg {
    ticket: u64,
    addr: u64,
    requester: u8,
    owner: u8,
}

/// Service-lane reply, routed back to `requester`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RepMsg {
    ticket: u64,
    addr: u64,
    requester: u8,
}

/// Result of issuing a load to the ring cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadIssue {
    /// The local node array has the line; data available at `ready_at`.
    Hit {
        /// Cycle the value reaches the core.
        ready_at: u64,
    },
    /// Ring miss: the owner node will service it; poll
    /// [`RingCache::load_ready`] with the ticket.
    Pending {
        /// Completion ticket.
        ticket: u64,
    },
}

#[derive(Debug)]
struct Node {
    array: CacheArray,
    in_main: VecDeque<(MainMsg, u64)>,
    inject: VecDeque<(MainMsg, u64)>,
    in_req: VecDeque<(ReqMsg, u64)>,
    in_rep: VecDeque<(RepMsg, u64)>,
    /// Signals received, indexed `seg.index() * nodes + src` (dense,
    /// grown on demand — segment ids are small per-program counters).
    signal_counts: Vec<u64>,
    /// Total signals ever delivered to this node: a cheap epoch counter
    /// the simulator uses to memoize failed wait checks (a wait's
    /// grant state can only change when a new signal arrives here).
    signals_received: u64,
    /// Messages ever drained from this node's injection queue: the
    /// matching epoch for backpressure stalls (a rejected injection can
    /// only succeed after something leaves the queue).
    inject_drained: u64,
    /// Ring loads ever completed for this node (as requester): the
    /// epoch for in-flight-load stalls (a pending ticket can only
    /// become ready when this moves).
    loads_completed: u64,
    /// Ring width, for the dense signal index.
    nodes: usize,
}

impl Node {
    fn new(cfg: &RingConfig) -> Node {
        Node {
            array: CacheArray::new(cfg.array),
            in_main: VecDeque::new(),
            inject: VecDeque::new(),
            in_req: VecDeque::new(),
            in_rep: VecDeque::new(),
            signal_counts: Vec::new(),
            signals_received: 0,
            inject_drained: 0,
            loads_completed: 0,
            nodes: cfg.nodes,
        }
    }

    fn count_signal(&mut self, seg: SegmentId, src: u8) {
        let idx = seg.index() * self.nodes + src as usize;
        if idx >= self.signal_counts.len() {
            self.signal_counts.resize(idx + 1, 0);
        }
        self.signal_counts[idx] += 1;
        self.signals_received += 1;
    }

    /// Whether every lane and the injection queue are empty, i.e. a tick
    /// of this node is a no-op.
    fn idle(&self) -> bool {
        self.in_main.is_empty()
            && self.inject.is_empty()
            && self.in_req.is_empty()
            && self.in_rep.is_empty()
    }
}

/// The ring cache: one node per core, connected unidirectionally.
#[derive(Debug)]
pub struct RingCache {
    cfg: RingConfig,
    nodes: Vec<Node>,
    now: u64,
    next_ticket: u64,
    /// Serviced-but-unretired loads: `(ticket, completion cycle)`. The
    /// set is tiny (bounded by outstanding loads), so a flat vector with
    /// linear probes beats a tree map on the per-cycle poll path and
    /// never allocates once warm.
    completed_loads: Vec<(u64, u64)>,
    /// Wake hints accumulated since the last [`RingCache::take_wake_mask`]:
    /// bit `n % 64` is set when node `n` received a signal, drained an
    /// injection, or completed a load — the three ring events that can
    /// end a core-side stall.
    wake_mask: u64,
    /// Nodes with anything queued (bit per node, rings ≤ 64 nodes —
    /// larger rings fall back to visiting every node). A tick visits
    /// only set bits; a visit that leaves the node empty clears it.
    active_mask: u64,
    /// Messages currently queued anywhere in the ring (lanes and
    /// injection queues). Zero means [`RingCache::tick`] is a no-op
    /// beyond advancing the clock, which makes quiescence O(1).
    in_flight: usize,
    /// Lower bound on the earliest ready time of any queued message.
    /// Injections update it eagerly (they know their ready time); pops
    /// leave it conservative (possibly stale-low, never stale-high), and
    /// a full scan refreshes it when it expires. While the bound is in
    /// the future, [`RingCache::tick`] is provably a no-op and
    /// [`RingCache::next_event_at`] answers without scanning — the two
    /// paths the simulator hits every machine cycle. `Cell` because the
    /// scan refresh happens inside the `&self` accessor.
    next_event_lb: Cell<u64>,
    stats: RingStats,
    sharing: SharingProfile,
}

impl RingCache {
    /// Build a ring cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`RingConfig::assert_valid`]).
    pub fn new(cfg: RingConfig) -> RingCache {
        cfg.assert_valid();
        RingCache {
            nodes: (0..cfg.nodes).map(|_| Node::new(&cfg)).collect(),
            cfg,
            now: 0,
            next_ticket: 0,
            completed_loads: Vec::new(),
            wake_mask: 0,
            active_mask: 0,
            in_flight: 0,
            next_event_lb: Cell::new(u64::MAX),
            stats: RingStats::default(),
            sharing: SharingProfile::default(),
        }
    }

    /// Build a ring cache, recycling a retired ring's allocations
    /// (queues, per-node cache arrays, signal tables) when the spare's
    /// geometry matches. Observable state is identical to
    /// [`RingCache::new`] — only the heap traffic differs.
    pub fn renew(cfg: RingConfig, spare: RingCache) -> RingCache {
        if spare.cfg != cfg {
            return RingCache::new(cfg);
        }
        let mut r = spare;
        for n in &mut r.nodes {
            n.array.clear();
            n.in_main.clear();
            n.inject.clear();
            n.in_req.clear();
            n.in_rep.clear();
            n.signal_counts.clear();
            n.signals_received = 0;
            n.inject_drained = 0;
            n.loads_completed = 0;
        }
        r.now = 0;
        r.next_ticket = 0;
        r.completed_loads.clear();
        r.wake_mask = 0;
        r.active_mask = 0;
        r.in_flight = 0;
        r.next_event_lb.set(u64::MAX);
        r.stats = RingStats::default();
        r.sharing = SharingProfile::default();
        r
    }

    /// Record a freshly queued message's ready time in the next-event
    /// lower bound.
    #[inline]
    fn note_event(&self, ready: u64) {
        if ready < self.next_event_lb.get() {
            self.next_event_lb.set(ready);
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// Current ring-local cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Collected statistics.
    pub fn stats(&self) -> &RingStats {
        &self.stats
    }

    /// Inject a store from `node`'s core. Returns `false` (and the core
    /// must stall) when the injection queue is full.
    pub fn store(&mut self, node: usize, addr: u64) -> bool {
        if self.nodes[node].inject.len() >= self.cfg.injection_queue {
            self.stats.injection_backpressure += 1;
            return false;
        }
        let ready = self.now + self.cfg.injection_latency as u64;
        self.note_event(ready);
        self.nodes[node].inject.push_back((
            MainMsg::Data {
                addr,
                origin: node as u8,
            },
            ready,
        ));
        self.mark_active(node);
        self.in_flight += 1;
        self.stats.stores += 1;
        self.sharing.on_store(&mut self.stats, addr, node);
        true
    }

    /// Inject a signal from `node`'s core. Returns `false` on
    /// backpressure.
    pub fn signal(&mut self, node: usize, seg: SegmentId) -> bool {
        if self.nodes[node].inject.len() >= self.cfg.injection_queue {
            self.stats.injection_backpressure += 1;
            return false;
        }
        let ready = self.now + self.cfg.injection_latency as u64;
        self.note_event(ready);
        self.nodes[node].inject.push_back((
            MainMsg::Signal {
                seg,
                src: node as u8,
                origin: node as u8,
            },
            ready,
        ));
        self.mark_active(node);
        self.in_flight += 1;
        self.stats.signals += 1;
        true
    }

    /// Issue a load from `node`'s core.
    pub fn load(&mut self, node: usize, addr: u64) -> LoadIssue {
        self.stats.loads += 1;
        self.sharing
            .on_load(&mut self.stats, addr, node, self.cfg.nodes);
        if self.nodes[node].array.probe(addr) {
            self.stats.load_hits += 1;
            return LoadIssue::Hit {
                ready_at: self.now + self.cfg.injection_latency as u64 + 1,
            };
        }
        self.stats.load_misses += 1;
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let owner = self.cfg.owner_of(addr);
        if owner == node {
            // Local miss at the owner: read the private L1 directly.
            let ready = self.now
                + self.cfg.injection_latency as u64
                + 1
                + self.cfg.l1_service_latency as u64;
            self.nodes[node].array.insert(addr, false);
            self.complete_load(node, ticket, ready);
        } else {
            let req = ReqMsg {
                ticket,
                addr,
                requester: node as u8,
                owner: owner as u8,
            };
            let ready = self.now + self.cfg.injection_latency as u64 + self.cfg.hop_latency as u64;
            self.note_event(ready);
            let next = (node + 1) % self.cfg.nodes;
            self.nodes[next].in_req.push_back((req, ready));
            self.mark_active(next);
            self.in_flight += 1;
        }
        LoadIssue::Pending { ticket }
    }

    /// Record a serviced load for `node` (the requester): queue the
    /// ticket for retirement, bump the node's load epoch, and hint the
    /// simulator that the node's stall inputs moved.
    fn complete_load(&mut self, node: usize, ticket: u64, ready: u64) {
        self.completed_loads.push((ticket, ready));
        self.nodes[node].loads_completed += 1;
        self.wake_mask |= 1 << (node as u64 & 63);
    }

    /// Completion cycle of a pending load, if serviced.
    pub fn load_ready(&self, ticket: u64) -> Option<u64> {
        self.completed_loads
            .iter()
            .find(|&&(t, _)| t == ticket)
            .map(|&(_, ready)| ready)
    }

    /// Discard a completed load ticket.
    pub fn retire_load(&mut self, ticket: u64) {
        if let Some(i) = self.completed_loads.iter().position(|&(t, _)| t == ticket) {
            self.completed_loads.swap_remove(i);
        }
    }

    /// Completion cycle of a pending load, retiring it in the same
    /// pass ([`RingCache::load_ready`] + [`RingCache::retire_load`]
    /// fused for the per-cycle poll path).
    pub fn take_ready(&mut self, ticket: u64) -> Option<u64> {
        let i = self
            .completed_loads
            .iter()
            .position(|&(t, _)| t == ticket)?;
        Some(self.completed_loads.swap_remove(i).1)
    }

    /// Signals received at `node` for `seg` from core `src`.
    pub fn signal_count(&self, node: usize, seg: SegmentId, src: usize) -> u64 {
        let n = &self.nodes[node];
        n.signal_counts
            .get(seg.index() * n.nodes + src)
            .copied()
            .unwrap_or(0)
    }

    /// Total signals ever delivered to `node` — an epoch counter: a
    /// failed wait check at this node cannot change outcome until this
    /// value does (plus new signal *executions*, see
    /// `SyncState` in the simulator).
    pub fn signal_epoch(&self, node: usize) -> u64 {
        self.nodes[node].signals_received
    }

    /// Messages ever drained from `node`'s injection queue — an epoch
    /// counter: an injection rejected for backpressure cannot succeed
    /// until this moves.
    pub fn inject_epoch(&self, node: usize) -> u64 {
        self.nodes[node].inject_drained
    }

    /// Ring loads ever completed for `node` as the requester — an epoch
    /// counter: a pending load ticket cannot become ready until this
    /// moves, so a core stalled on in-flight loads may sleep on it
    /// instead of polling every cycle.
    pub fn load_epoch(&self, node: usize) -> u64 {
        self.nodes[node].loads_completed
    }

    /// Drain the accumulated wake hints: bit `n % 64` set means node
    /// `n` received a signal, drained an injection, or completed a load
    /// since the last call. The simulator uses this to test sleeping
    /// cores with one mask probe instead of re-reading every epoch.
    pub fn take_wake_mask(&mut self) -> u64 {
        std::mem::take(&mut self.wake_mask)
    }

    /// Reset signal bookkeeping at the start of a parallel loop.
    pub fn begin_loop(&mut self) {
        for n in &mut self.nodes {
            n.signal_counts.iter_mut().for_each(|c| *c = 0);
        }
    }

    /// End-of-loop flush: drain in-flight traffic, write every dirty
    /// owned line back to its owner's L1, clear all arrays. Returns the
    /// number of cycles consumed (the "distributed fence" cost, §5.2).
    pub fn flush(&mut self) -> u64 {
        let start = self.now;
        // Drain: step until every queue is empty (bounded for safety).
        let mut guard = 0u64;
        while !self.quiescent() {
            self.tick();
            guard += 1;
            assert!(guard < 1_000_000, "ring failed to drain: deadlock?");
        }
        // Write-backs: each node retires its dirty lines at one per two
        // cycles, all nodes in parallel; one final L1 access latency.
        let mut max_dirty = 0usize;
        for n in &mut self.nodes {
            let d = n.array.dirty_count();
            max_dirty = max_dirty.max(d);
            self.stats.flush_writebacks += d as u64;
            n.array.clear();
            n.signal_counts.clear();
        }
        let wb_cycles = if max_dirty > 0 {
            2 * max_dirty as u64 + self.cfg.l1_service_latency as u64
        } else {
            0
        };
        for _ in 0..wb_cycles {
            self.tick();
        }
        self.sharing.finish(&mut self.stats);
        self.completed_loads.clear();
        // Drained: no queued messages remain, so the bound resets.
        self.next_event_lb.set(u64::MAX);
        self.now - start
    }

    /// Whether all lanes and injection queues are empty. O(1): tracked
    /// by the in-flight message counter.
    pub fn quiescent(&self) -> bool {
        debug_assert_eq!(
            self.in_flight == 0,
            self.nodes.iter().all(|n| {
                n.in_main.is_empty()
                    && n.inject.is_empty()
                    && n.in_req.is_empty()
                    && n.in_rep.is_empty()
            }),
            "in-flight counter out of sync"
        );
        self.in_flight == 0
    }

    /// Earliest cycle at which the ring's observable state can next
    /// change: the minimum ready time over every queued message (clamped
    /// to the next cycle for messages that are already due but were
    /// blocked by bandwidth or credits). `None` when quiescent.
    ///
    /// Answers from the cached lower bound while it is in the future
    /// (the common case on the simulator's every-idle-cycle path); the
    /// full scan runs only when the bound has expired, and refreshes it.
    /// A cached answer can be earlier than the true next event — callers
    /// fast-forwarding to it simply stall again and re-ask — but never
    /// later, so no event is ever skipped.
    pub fn next_event_at(&self) -> Option<u64> {
        if self.in_flight == 0 {
            return None;
        }
        let lb = self.next_event_lb.get();
        if lb > self.now {
            return Some(lb);
        }
        let mut min = u64::MAX;
        for n in &self.nodes {
            for &(_, ready) in n.in_main.iter().chain(n.inject.iter()) {
                if ready <= self.now {
                    return Some(self.now); // due now: can't get earlier
                }
                min = min.min(ready);
            }
            for &(_, ready) in &n.in_req {
                if ready <= self.now {
                    return Some(self.now);
                }
                min = min.min(ready);
            }
            for &(_, ready) in &n.in_rep {
                if ready <= self.now {
                    return Some(self.now);
                }
                min = min.min(ready);
            }
        }
        // Every queued message is strictly in the future: `min` is exact
        // and stays a valid bound until something new is injected.
        self.next_event_lb.set(min);
        Some(min)
    }

    /// Jump the ring clock to `to` in one step. Callers must guarantee
    /// the skipped window contains no events (see
    /// [`RingCache::next_event_at`]); ticking cycle by cycle over such a
    /// window only increments the clock, so this is equivalent.
    pub fn fast_forward(&mut self, to: u64) {
        debug_assert!(to >= self.now, "ring cannot rewind");
        debug_assert!(
            self.next_event_at().is_none_or(|e| e >= to),
            "fast-forward would skip a ring event"
        );
        self.now = to;
    }

    /// Advance the ring by one cycle. Nodes with nothing queued are
    /// skipped outright, so a tick costs O(active nodes), not O(nodes);
    /// a tick before the next-event bound is a pure clock increment.
    pub fn tick(&mut self) {
        if self.in_flight == 0 || (self.cfg.event_skip && self.next_event_lb.get() > self.now) {
            // Quiescence, or every queued message is strictly in the
            // future: nothing can move, no statistic can change.
            self.now += 1;
            return;
        }
        let now = self.now;
        let n = self.cfg.nodes;
        let mut acted = false;
        if n <= 64 {
            // Visit only nodes with queued work, in ascending order.
            // Messages handed forward mid-tick are never ready this
            // cycle, so skipping their (newly active) node is
            // equivalent to the no-op visit the full scan would make.
            let mut m = self.active_mask;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                let node = &self.nodes[i];
                let has_main = !node.in_main.is_empty() || !node.inject.is_empty();
                let has_service = !node.in_req.is_empty() || !node.in_rep.is_empty();
                if has_main {
                    acted |= self.tick_main(i, now);
                }
                if has_service {
                    acted |= self.tick_service(i, now);
                }
                if self.nodes[i].idle() {
                    self.active_mask &= !(1 << i);
                }
            }
        } else {
            for i in 0..n {
                if self.nodes[i].idle() {
                    continue;
                }
                acted |= self.tick_main(i, now);
                acted |= self.tick_service(i, now);
            }
        }
        if !acted && self.cfg.event_skip {
            // The walk changed nothing: the expired bound was stale.
            // Pay for one scan now so the ticks until the true next
            // event take the O(1) path above.
            let _ = self.next_event_at();
        }
        self.now += 1;
    }

    /// Mark `node` as having queued work.
    #[inline]
    fn mark_active(&mut self, node: usize) {
        self.active_mask |= 1 << (node as u64 & 63);
    }

    /// Returns whether anything observable changed (a message moved, or
    /// a stall statistic was charged) — `false` means the visit was a
    /// no-op the caller may avoid repeating until the next event bound.
    fn tick_main(&mut self, i: usize, now: u64) -> bool {
        let n = self.cfg.nodes;
        let next = if i + 1 == n { 0 } else { i + 1 };
        let hop = self.cfg.hop_latency as u64;
        let mut data_budget = self.cfg.data_bandwidth;
        let mut sig_budget = self.cfg.signal_bandwidth.unwrap_or(u32::MAX);
        let mut next_free = if next == i {
            0
        } else {
            self.cfg
                .link_buffers
                .saturating_sub(self.nodes[next].in_main.len())
        };
        let mut acted = false;
        let mut processed_through = false;
        let mut forwarded = false;

        // Through traffic first (the node prioritizes ring data and
        // stalls its own injection, §5.1). Forwarded messages move to
        // the next link directly — a forward is a pop plus a push, so
        // the in-flight total is untouched.
        while let Some(&(msg, ready)) = self.nodes[i].in_main.front() {
            if ready > now {
                break;
            }
            let budget = match msg {
                MainMsg::Data { .. } => &mut data_budget,
                MainMsg::Signal { .. } => &mut sig_budget,
            };
            if *budget == 0 {
                break;
            }
            let forward = next != msg.origin() && n > 1;
            if forward && next_free == 0 {
                self.stats.credit_stalls += 1;
                acted = true;
                break;
            }
            self.nodes[i].in_main.pop_front();
            *budget -= 1;
            acted = true;
            processed_through = true;
            self.handle_main(i, msg);
            if forward {
                self.nodes[next].in_main.push_back((msg, now + hop));
                next_free -= 1;
                forwarded = true;
                self.stats.forwards += 1;
            } else {
                self.in_flight -= 1;
            }
        }

        // Injection only when no through traffic moved this cycle.
        if !processed_through {
            if let Some(&(msg, ready)) = self.nodes[i].inject.front() {
                let budget = match msg {
                    MainMsg::Data { .. } => &mut data_budget,
                    MainMsg::Signal { .. } => &mut sig_budget,
                };
                if ready <= now && *budget > 0 {
                    acted = true;
                    let forward = n > 1;
                    if !forward || next_free > 0 {
                        self.nodes[i].inject.pop_front();
                        self.nodes[i].inject_drained += 1;
                        self.wake_mask |= 1 << (i as u64 & 63);
                        *budget -= 1;
                        self.handle_main(i, msg);
                        if forward {
                            self.nodes[next].in_main.push_back((msg, now + hop));
                            forwarded = true;
                            self.stats.forwards += 1;
                        } else {
                            self.in_flight -= 1;
                        }
                    } else {
                        self.stats.credit_stalls += 1;
                    }
                }
            }
        }

        if forwarded {
            self.mark_active(next);
        }
        acted
    }

    /// Apply a main-lane message's effect at node `i`.
    fn handle_main(&mut self, i: usize, msg: MainMsg) {
        match msg {
            MainMsg::Data { addr, .. } => {
                let dirty = self.cfg.owner_of(addr) == i;
                if let Insert::Evicted {
                    addr: _va,
                    dirty: true,
                } = self.nodes[i].array.insert(addr, dirty)
                {
                    // Owner write-back of the victim; cost is absorbed
                    // by the (pipelined) L1 port, counted in stats.
                    self.stats.evict_writebacks += 1;
                }
            }
            MainMsg::Signal { seg, src, .. } => {
                self.nodes[i].count_signal(seg, src);
                self.wake_mask |= 1 << (i as u64 & 63);
            }
        }
    }

    /// Returns whether any message moved (see [`RingCache::tick_main`]).
    fn tick_service(&mut self, i: usize, now: u64) -> bool {
        let n = self.cfg.nodes;
        let next = if i + 1 == n { 0 } else { i + 1 };
        let hop = self.cfg.hop_latency as u64;
        let mut acted = false;
        // Requests: one per cycle. Forwards move straight to the next
        // link (pop + push: in-flight total untouched).
        if let Some(&(req, ready)) = self.nodes[i].in_req.front() {
            if ready <= now {
                acted = true;
                self.nodes[i].in_req.pop_front();
                if req.owner as usize == i {
                    self.in_flight -= 1;
                    // Service: array lookup, or the owner's private L1.
                    let lat = if self.nodes[i].array.probe(req.addr) {
                        1
                    } else {
                        self.nodes[i].array.insert(req.addr, false);
                        self.cfg.l1_service_latency as u64
                    };
                    if req.requester as usize == i {
                        self.complete_load(i, req.ticket, now + lat + 1);
                    } else {
                        let rep = RepMsg {
                            ticket: req.ticket,
                            addr: req.addr,
                            requester: req.requester,
                        };
                        self.nodes[next].in_rep.push_back((rep, now + lat + hop));
                        self.mark_active(next);
                        self.in_flight += 1;
                    }
                } else {
                    self.nodes[next].in_req.push_back((req, now + hop));
                    self.mark_active(next);
                    self.stats.forwards += 1;
                }
            }
        }
        // Replies: one per cycle.
        if let Some(&(rep, ready)) = self.nodes[i].in_rep.front() {
            if ready <= now {
                acted = true;
                self.nodes[i].in_rep.pop_front();
                if rep.requester as usize == i {
                    self.in_flight -= 1;
                    self.nodes[i].array.insert(rep.addr, false);
                    self.complete_load(i, rep.ticket, now + 1);
                } else {
                    self.nodes[next].in_rep.push_back((rep, now + hop));
                    self.mark_active(next);
                    self.stats.forwards += 1;
                }
            }
        }
        acted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(nodes: usize) -> RingCache {
        RingCache::new(RingConfig::paper_default(nodes))
    }

    fn run_until<F: Fn(&RingCache) -> bool>(r: &mut RingCache, pred: F, max: u64) -> u64 {
        let start = r.now();
        for _ in 0..max {
            if pred(r) {
                return r.now() - start;
            }
            r.tick();
        }
        panic!("condition not reached within {max} cycles");
    }

    /// A store circulates to every node within ~N + injection cycles.
    #[test]
    fn store_circulates_full_ring() {
        let mut r = ring(16);
        assert!(r.store(3, 0x1000));
        let cycles = run_until(
            &mut r,
            |r| (0..16).all(|n| r.nodes[n].array.contains(0x1000)),
            100,
        );
        // injection (2) + 15 hops + processing slack.
        assert!(cycles <= 16 + 2 + 4, "took {cycles} cycles");
        assert!(r.quiescent());
    }

    /// Signals reach every node and are counted once per node.
    #[test]
    fn signal_broadcast_counts() {
        let mut r = ring(8);
        let seg = SegmentId(2);
        assert!(r.signal(5, seg));
        run_until(
            &mut r,
            |r| (0..8).all(|n| r.signal_count(n, seg, 5) == 1),
            64,
        );
        // No double counting after draining.
        for _ in 0..20 {
            r.tick();
        }
        for n in 0..8 {
            assert_eq!(r.signal_count(n, seg, 5), 1);
        }
    }

    /// Full-trip latency without contention is bounded by N hops
    /// (paper §5.1: "bound the latency for a full trip around the ring to
    /// N clock cycles").
    #[test]
    fn uncontended_full_trip_bound() {
        let mut r = ring(16);
        r.store(0, 0x40);
        // Last node to receive is node 15: distance 15.
        let cycles = run_until(&mut r, |r| r.nodes[15].array.contains(0x40), 64);
        assert!(
            cycles <= 2 + 16,
            "full trip took {cycles} > injection + N cycles"
        );
    }

    /// A load after circulation hits locally with small latency.
    #[test]
    fn load_hit_after_circulation() {
        let mut r = ring(16);
        r.store(2, 0x2000);
        run_until(&mut r, |r| r.quiescent(), 100);
        match r.load(9, 0x2000) {
            LoadIssue::Hit { ready_at } => {
                assert_eq!(ready_at, r.now() + 3); // injection 2 + lookup 1
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(r.stats().load_hits, 1);
    }

    /// A cold load misses and is serviced by the owner via the ring.
    #[test]
    fn cold_load_serviced_by_owner() {
        let mut r = ring(16);
        let addr = 0x4000;
        let owner = r.config().owner_of(addr);
        let requester = (owner + 4) % 16;
        let issue = r.load(requester, addr);
        let ticket = match issue {
            LoadIssue::Pending { ticket } => ticket,
            other => panic!("expected miss, got {other:?}"),
        };
        let waited = run_until(&mut r, |r| r.load_ready(ticket).is_some(), 200);
        let ready = r.load_ready(ticket).unwrap();
        // Round trip: hops to owner + L1 service + hops back.
        let min_rtt = 16 /* full circle */ + 3 /* L1 */;
        assert!(
            waited + 2 >= min_rtt / 2 && ready >= min_rtt / 2,
            "implausibly fast miss service: waited {waited}, ready {ready}"
        );
        r.retire_load(ticket);
        assert_eq!(r.load_ready(ticket), None);
        assert_eq!(r.stats().load_misses, 1);
        // The requester now caches the line.
        run_until(&mut r, |r| r.nodes[requester].array.contains(addr), 64);
    }

    /// Backpressure: a full injection queue rejects stores.
    #[test]
    fn injection_backpressure() {
        let mut r = ring(4);
        let cap = r.config().injection_queue;
        let mut accepted = 0;
        for k in 0..cap + 4 {
            if r.store(0, 0x100 + (k as u64) * 8) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, cap);
        assert!(r.stats().injection_backpressure >= 4);
        // Draining frees the queue.
        run_until(&mut r, |r| r.quiescent(), 200);
        assert!(r.store(0, 0x900));
    }

    /// Flush writes back dirty owned lines, clears arrays, and reports a
    /// nonzero cost.
    #[test]
    fn flush_writes_back_and_clears() {
        let mut r = ring(8);
        for k in 0..10u64 {
            r.store(k as usize % 8, 0x8000 + k * 8);
        }
        run_until(&mut r, |r| r.quiescent(), 400);
        let dirty_before: usize = (0..8).map(|n| r.nodes[n].array.dirty_count()).sum();
        assert!(dirty_before > 0, "owners hold dirty lines");
        let cost = r.flush();
        assert!(cost > 0);
        assert_eq!(r.stats().flush_writebacks, dirty_before as u64);
        assert!((0..8).all(|n| r.nodes[n].array.is_empty()));
    }

    /// begin_loop clears signal state but not the cached data.
    #[test]
    fn begin_loop_resets_signals_only() {
        let mut r = ring(4);
        r.signal(1, SegmentId(0));
        r.store(1, 0x500);
        run_until(&mut r, |r| r.quiescent(), 100);
        assert!(r.signal_count(3, SegmentId(0), 1) == 1);
        r.begin_loop();
        assert_eq!(r.signal_count(3, SegmentId(0), 1), 0);
        assert!(r.nodes[3].array.contains(0x500));
    }

    /// Messages from one node preserve order (data then signal): the
    /// signal never arrives anywhere before the data it follows.
    #[test]
    fn lockstep_data_before_signal() {
        let mut r = ring(16);
        r.store(0, 0x7000);
        r.signal(0, SegmentId(1));
        for _ in 0..100 {
            r.tick();
            for node in 0..16 {
                if r.signal_count(node, SegmentId(1), 0) > 0 {
                    assert!(
                        r.nodes[node].array.contains(0x7000),
                        "signal overtook its data at node {node}"
                    );
                }
            }
        }
    }

    /// `next_event_at` tracks queued messages; `fast_forward` jumps an
    /// idle ring without touching state.
    #[test]
    fn next_event_and_fast_forward() {
        let mut r = ring(8);
        assert_eq!(r.next_event_at(), None);
        r.fast_forward(100);
        assert_eq!(r.now(), 100);
        assert!(r.quiescent());
        r.store(0, 0x100);
        // Injection latency is 2: the first event is at now + 2.
        assert_eq!(r.next_event_at(), Some(102));
        run_until(&mut r, |r| r.quiescent(), 100);
        assert_eq!(r.next_event_at(), None);
    }

    /// Single-node ring degenerates gracefully.
    #[test]
    fn single_node_ring() {
        let mut r = ring(1);
        assert!(r.store(0, 0x100));
        run_until(&mut r, |r| r.nodes[0].array.contains(0x100), 16);
        assert!(r.quiescent());
        match r.load(0, 0x100) {
            LoadIssue::Hit { .. } => {}
            other => panic!("expected hit, got {other:?}"),
        }
    }

    /// Signal-bandwidth 1 still delivers everything (just slower).
    #[test]
    fn narrow_signal_bandwidth_still_delivers() {
        let mut cfg = RingConfig::paper_default(8);
        cfg.signal_bandwidth = Some(1);
        let mut r = RingCache::new(cfg);
        for s in 0..4u32 {
            assert!(r.signal(0, SegmentId(s)));
        }
        run_until(
            &mut r,
            |r| (0..4).all(|s| r.signal_count(7, SegmentId(s), 0) == 1),
            400,
        );
    }
}
