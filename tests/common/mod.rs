//! Shared helpers for the workspace integration tests: one source of
//! truth for locating repo files and enumerating the committed
//! `scenarios/*.toml` suite, so the per-test copies of the glob logic
//! cannot drift apart (different sort orders or extension filters would
//! silently gate different scenario sets).

// Each integration-test binary compiles its own copy of this module and
// uses a subset of the helpers.
#![allow(dead_code)]

use helix_rc::workloads::ScenarioSpec;
use std::path::PathBuf;

/// Absolute path of a repo-relative file.
pub fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Sorted paths of every committed `scenarios/*.toml` file.
pub fn committed_scenario_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(repo_path("scenarios"))
        .expect("scenarios/ directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no committed scenarios found");
    files
}

/// Every committed scenario, parsed (panics with the file name on a
/// parse error so a broken TOML is named, not just counted).
pub fn committed_specs() -> Vec<(PathBuf, ScenarioSpec)> {
    committed_scenario_files()
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path).expect("readable spec");
            let spec = ScenarioSpec::from_toml(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            (path, spec)
        })
        .collect()
}
