//! Compiler-side experiments: Fig. 2 (dependence-analysis accuracy),
//! Fig. 3 (predictable-variable communication reduction), and the §6.2
//! TLP/segment-size numbers.

use helix_analysis::{
    classify_registers, communication_demand, observe_loop_deps, tier_sweep, AliasTier,
};
use helix_hcc::{compile, tlp::estimate_tlp, HccConfig, SplitPolicy};
use helix_ir::cfg::LoopForest;
use helix_ir::interp::Env;
use helix_workloads::Workload;
use serde::{Deserialize, Serialize};

use crate::experiment::ExpError;

/// Fig. 2 result: mean accuracy per tier over the suite's hot loops.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyFigure {
    /// Tier labels in sweep order.
    pub tiers: Vec<String>,
    /// Mean accuracy per tier.
    pub accuracy: Vec<f64>,
    /// Loops analyzed.
    pub loops: usize,
}

/// Run the dependence-analysis accuracy sweep over the innermost hot
/// loops of the given workloads.
pub fn accuracy_sweep(workloads: &[Workload]) -> Result<AccuracyFigure, ExpError> {
    let mut sums = vec![0.0f64; AliasTier::ALL.len()];
    let mut n_loops = 0usize;
    for w in workloads {
        let forest = LoopForest::compute(&w.program.graph, w.program.graph.entry);
        // Hot loops: innermost loops (the ones HELIX-RC targets).
        let hot: Vec<_> = forest
            .loops
            .iter()
            .filter(|node| node.children.is_empty())
            .map(|node| node.lp.clone())
            .collect();
        let mut dynamics = Vec::new();
        for lp in &hot {
            let mut env = Env::for_program(&w.program);
            dynamics.push(observe_loop_deps(&w.program, lp, &mut env, 200_000_000)?);
        }
        let sweep = tier_sweep(&w.program, &hot, &dynamics);
        for (i, acc) in sweep.mean_accuracy.iter().enumerate() {
            sums[i] += acc * hot.len() as f64;
        }
        n_loops += hot.len();
    }
    Ok(AccuracyFigure {
        tiers: AliasTier::ALL
            .iter()
            .map(|t| t.label().to_string())
            .collect(),
        accuracy: sums
            .into_iter()
            .map(|s| {
                if n_loops == 0 {
                    1.0
                } else {
                    s / n_loops as f64
                }
            })
            .collect(),
        loops: n_loops,
    })
}

/// Fig. 3 result: communication demand before/after exploiting variable
/// predictability.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RecomputeFigure {
    /// Register values a naive scheme would forward (per-loop totals).
    pub naive_regs: usize,
    /// Registers still needing communication after re-computation.
    pub remaining_regs: usize,
    /// Shared memory access sites (communicated either way).
    pub memory_sites: usize,
}

impl RecomputeFigure {
    /// Remaining communication as a fraction of the naive total.
    pub fn remaining_fraction(&self) -> f64 {
        let naive = self.naive_regs + self.memory_sites;
        if naive == 0 {
            return 0.0;
        }
        (self.remaining_regs + self.memory_sites) as f64 / naive as f64
    }

    /// Of the remaining communication, the memory share.
    pub fn memory_share(&self) -> f64 {
        let rem = self.remaining_regs + self.memory_sites;
        if rem == 0 {
            return 0.0;
        }
        self.memory_sites as f64 / rem as f64
    }
}

/// Run the Fig. 3 measurement over the workloads' innermost loops.
pub fn recompute_reduction(workloads: &[Workload]) -> Result<RecomputeFigure, ExpError> {
    let mut fig = RecomputeFigure {
        naive_regs: 0,
        remaining_regs: 0,
        memory_sites: 0,
    };
    for w in workloads {
        let forest = LoopForest::compute(&w.program.graph, w.program.graph.entry);
        let config = helix_analysis::DepConfig::full();
        let pts = helix_analysis::PointsTo::analyze(&w.program, config.tier);
        for node in forest.loops.iter().filter(|n| n.children.is_empty()) {
            let classes = classify_registers(&w.program.graph, &node.lp);
            let deps = helix_analysis::analyze_loop(&w.program, &node.lp, config, &pts);
            let demand = communication_demand(&classes, deps.shared_sites().len());
            fig.naive_regs += demand.naive_regs;
            fig.remaining_regs += demand.remaining_regs;
            fig.memory_sites += demand.memory_sites;
        }
    }
    Ok(fig)
}

/// §6.2 text numbers: TLP and mean segment size under conservative vs.
/// aggressive splitting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TlpFigure {
    /// TLP with conservative splitting (HCCv2-style).
    pub tlp_conservative: f64,
    /// TLP with aggressive splitting (HELIX-RC).
    pub tlp_aggressive: f64,
    /// Mean segment size (static instructions), conservative.
    pub seg_conservative: f64,
    /// Mean segment size, aggressive.
    pub seg_aggressive: f64,
}

/// Run the abstract-TLP comparison over the suite at `cores`.
pub fn tlp_splitting(workloads: &[Workload], cores: u32) -> Result<TlpFigure, ExpError> {
    let mut out = TlpFigure {
        tlp_conservative: 0.0,
        tlp_aggressive: 0.0,
        seg_conservative: 0.0,
        seg_aggressive: 0.0,
    };
    let mut n = 0.0;
    for w in workloads {
        for (aggressive, tlp_slot, seg_slot) in [(false, 0, 0), (true, 1, 1)] {
            let mut cfg = HccConfig::v3(cores);
            if !aggressive {
                cfg.split = SplitPolicy::MaxSegments(1);
            }
            let compiled = compile(&w.program, &cfg)?;
            for plan in &compiled.plans {
                if plan.segments.is_empty() {
                    continue;
                }
                let seg_size = compiled.stats.mean_segment_size.max(1.0);
                let seg_sizes = vec![seg_size; plan.segments.len()];
                let t = estimate_tlp(plan.insts_per_iter, &seg_sizes, 1600, cores);
                if tlp_slot == 0 {
                    out.tlp_conservative += t.tlp;
                    out.seg_conservative += t.mean_segment_size;
                } else {
                    out.tlp_aggressive += t.tlp;
                    out.seg_aggressive += t.mean_segment_size;
                }
                let _ = seg_slot;
                if aggressive {
                    n += 1.0;
                }
            }
        }
    }
    if n > 0.0 {
        out.tlp_conservative /= n;
        out.tlp_aggressive /= n;
        out.seg_conservative /= n;
        out.seg_aggressive /= n;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_workloads::{by_name, Scale};

    #[test]
    fn accuracy_improves_across_tiers_on_suite_loops() {
        let ws = vec![
            by_name("164.gzip", Scale::Test).unwrap(),
            by_name("197.parser", Scale::Test).unwrap(),
        ];
        let fig = accuracy_sweep(&ws).unwrap();
        assert_eq!(fig.accuracy.len(), 5);
        assert!(fig.loops >= 2);
        assert!(
            fig.accuracy[4] >= fig.accuracy[0],
            "full tier must not be worse: {:?}",
            fig.accuracy
        );
    }

    #[test]
    fn recompute_removes_most_register_traffic() {
        let ws = helix_workloads::cint_suite(Scale::Test);
        let fig = recompute_reduction(&ws).unwrap();
        assert!(fig.naive_regs > 0);
        assert!(
            (fig.remaining_regs as f64) < 0.5 * fig.naive_regs as f64,
            "predictability should remove most register communication: {fig:?}"
        );
    }
}
