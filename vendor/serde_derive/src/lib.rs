//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds in environments with no crates.io access, so the
//! real serde machinery is replaced by marker traits (see the sibling
//! `serde` stub). These derives accept the usual syntax — including
//! `#[serde(...)]` helper attributes — and emit empty marker impls.

use proc_macro::{TokenStream, TokenTree};

/// Extract the name of the struct/enum a derive was applied to.
///
/// Returns `None` for shapes the stub does not support (e.g. generic
/// types); the derive then expands to nothing, which is fine because the
/// marker traits carry no behavior.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return Some(s);
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            TokenTree::Punct(p) if saw_kw && p.as_char() == '<' => return None,
            _ => {}
        }
    }
    None
}

/// Marker derive matching `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}

/// Marker derive matching `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}
