//! The resilient execution layer under [`crate::campaign`]: per-cell
//! panic isolation, failure classification, bounded deterministic
//! retries, budget watchdogs, a content-addressed on-disk journal for
//! crash/Ctrl-C resume, and a seeded chaos harness that proves the
//! isolation end-to-end.
//!
//! Design constraints, in order:
//!
//! 1. **Never poison the run.** A cell that panics, errors, or blows
//!    its budget becomes a [`CellFailure`] row in the report; every
//!    other cell's result is kept.
//! 2. **Stay byte-identical.** Failure classification and retry
//!    scheduling are functions of the spec and the failure kind only —
//!    no wall-clock values ever reach the report. The one opt-in
//!    exception is the wall-clock watchdog, which is documented as
//!    timing-dependent and off by default.
//! 3. **Journal = cache.** A completed cell is stored under the FNV-1a
//!    digest of everything that determines its result (crate version,
//!    scale, cycle budget, experiment, cores, reseeded scenario spec).
//!    Resume is therefore also edit-aware: touching one scenario file
//!    changes only that scenario's digests, so only its cells re-run.

use helix_workloads::ResiliencePolicy;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::error::ErrorKind;
use crate::experiment::ExpError;

/// Cycle budget substituted into cells chosen for a chaos "budget
/// blowout": small enough that any real scenario exhausts it, so the
/// injected failure is deterministic.
pub const CHAOS_BLOWOUT_FUEL: u64 = 100;

/// Why a campaign cell failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The cell's worker panicked (caught at the cell boundary).
    Panic,
    /// The experiment returned a deterministic error (spec/protocol).
    Error,
    /// The per-cell simulated-cycle budget ran out. Deterministic: the
    /// same cell exhausts the same budget at the same cycle every run.
    CycleBudget,
    /// The cooperative wall-clock watchdog flagged the cell. Timing
    /// dependent by nature; only possible when `wall_budget_ms > 0`.
    WallBudget,
}

impl FailureKind {
    /// Stable spelling used in report JSON and tables.
    pub fn render(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Error => "error",
            FailureKind::CycleBudget => "cycle-budget",
            FailureKind::WallBudget => "wall-budget",
        }
    }

    /// Whether a retry can plausibly change the outcome. Deterministic
    /// failures (experiment errors, cycle-budget exhaustion) would only
    /// repeat themselves; panics and wall-clock overruns may be
    /// environmental.
    pub fn transient(self) -> bool {
        matches!(self, FailureKind::Panic | FailureKind::WallBudget)
    }
}

/// One failed campaign cell, as enumerated in the report's `failures`
/// section.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// Scenario (workload) name.
    pub scenario: String,
    /// Experiment spelling (`CampaignExperiment::render`, or "derived"
    /// for post-processing failures).
    pub experiment: String,
    /// Core count of the cell.
    pub cores: usize,
    /// Classified cause.
    pub kind: FailureKind,
    /// Retries that were attempted before giving up.
    pub retries: u32,
    /// Human-readable cause (panic payload, error display, ...).
    pub message: String,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} @ {} cores: {} ({}, {} retr{})",
            self.scenario,
            self.experiment,
            self.cores,
            self.message,
            self.kind.render(),
            self.retries,
            if self.retries == 1 { "y" } else { "ies" }
        )
    }
}

/// FNV-1a 64-bit over `bytes`, continuing from `state` (seed with
/// [`FNV_OFFSET`]). Used for cell digests and fault-plan assignment;
/// stable across platforms and releases by construction.
pub fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x100_0000_01b3);
    }
    state
}

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// A seeded plan of faults to inject into a deterministic subset of
/// cells — the chaos harness that proves cell isolation end-to-end.
///
/// Cells are ranked by `fnv1a(seed ++ cell key)`; the first `panics`
/// cells in rank order panic, the next `stalls` sleep for `stall_ms`
/// before running, and the next `blowouts` run with
/// [`CHAOS_BLOWOUT_FUEL`] instead of their real cycle budget. The
/// assignment depends only on the seed and the cell keys, so a chaos
/// run is exactly reproducible and a test can predict which cells fail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the rank ordering.
    pub seed: u64,
    /// Number of cells that panic.
    pub panics: usize,
    /// Number of cells that stall for `stall_ms` before running.
    pub stalls: usize,
    /// Number of cells that run with [`CHAOS_BLOWOUT_FUEL`].
    pub blowouts: usize,
    /// Stall duration, milliseconds.
    pub stall_ms: u64,
    /// Inject only on a cell's first attempt, so a retry succeeds —
    /// exercises the recovery path instead of the failure path.
    pub transient: bool,
}

/// What the plan injects into one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the cell worker.
    Panic,
    /// Sleep before running the cell (trips the wall watchdog if armed).
    Stall,
    /// Replace the cycle budget with [`CHAOS_BLOWOUT_FUEL`].
    Blowout,
}

impl FaultPlan {
    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.panics + self.stalls + self.blowouts > 0
    }

    /// The fault (if any) this plan assigns to the cell with `key`,
    /// given the keys of every cell in the campaign.
    pub fn fault_for(&self, key: &str, all_keys: &[String]) -> Option<Fault> {
        if !self.is_active() {
            return None;
        }
        let rank = |k: &str| {
            let h = fnv1a(FNV_OFFSET, &self.seed.to_le_bytes());
            fnv1a(h, k.as_bytes())
        };
        let mut ranked: Vec<&String> = all_keys.iter().collect();
        // Tie-break on the key itself so equal hashes stay deterministic.
        ranked.sort_by_key(|k| (rank(k), k.as_str()));
        let pos = ranked.iter().position(|k| k.as_str() == key)?;
        if pos < self.panics {
            Some(Fault::Panic)
        } else if pos < self.panics + self.stalls {
            Some(Fault::Stall)
        } else if pos < self.panics + self.stalls + self.blowouts {
            Some(Fault::Blowout)
        } else {
            None
        }
    }
}

/// On-disk store of completed cells, keyed by content digest: one
/// `<16-hex-digits>.cell` file per cell under the journal directory.
/// Writes go through a temp file + rename so a cell file is either
/// absent or complete, never truncated, even across a crash.
#[derive(Debug, Clone)]
pub struct Journal {
    dir: PathBuf,
}

impl Journal {
    /// Open (creating if needed) a journal at `dir`.
    pub fn open(dir: &Path) -> Result<Journal, ExpError> {
        std::fs::create_dir_all(dir).map_err(|e| {
            ExpError::io(format!(
                "cannot create journal dir '{}': {e}",
                dir.display()
            ))
        })?;
        Ok(Journal {
            dir: dir.to_path_buf(),
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.cell"))
    }

    /// Fetch a journaled cell by digest, if present.
    pub fn load(&self, digest: u64) -> Option<String> {
        std::fs::read_to_string(self.path_of(digest)).ok()
    }

    /// Durably store a completed cell under `digest`.
    pub fn store(&self, digest: u64, text: &str) -> Result<(), ExpError> {
        let path = self.path_of(digest);
        let tmp = self.dir.join(format!("{digest:016x}.tmp"));
        std::fs::write(&tmp, text).map_err(|e| {
            ExpError::io(format!(
                "cannot write journal cell '{}': {e}",
                tmp.display()
            ))
        })?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            ExpError::io(format!(
                "cannot commit journal cell '{}': {e}",
                path.display()
            ))
        })?;
        Ok(())
    }
}

/// Outcome classification of one attempt, before retry policy.
enum Attempt<T> {
    Ok(T),
    Failed(FailureKind, String),
}

/// Run one cell's worker `f` (taking the effective cycle budget) behind
/// `catch_unwind`, classify any failure, and retry transient failures
/// up to `policy.max_retries` times with a bounded deterministic
/// backoff. `fault` optionally injects a chaos fault (see
/// [`FaultPlan`]; `stall_ms` is the [`Fault::Stall`] sleep); with
/// `transient_faults` the fault fires only on attempt 0 so the retry
/// path is exercised end-to-end.
///
/// The cycle budget passed to `f` is `policy.cycle_budget` when set,
/// else `default_fuel`. The wall watchdog is cooperative: the attempt's
/// elapsed time is checked after `f` returns, and an overrun discards
/// the result. It cannot preempt a wedged cell — that is the cycle
/// budget's job — but it keeps pathological cells from silently
/// dominating a campaign when the operator opts in.
pub fn run_cell_resilient<T, F>(
    f: F,
    default_fuel: u64,
    policy: &ResiliencePolicy,
    fault: Option<Fault>,
    stall_ms: u64,
    transient_faults: bool,
) -> Result<T, (FailureKind, String, u32)>
where
    F: Fn(u64) -> Result<T, ExpError>,
{
    let max_retries = policy.max_retries.max(0) as u32;
    let base_fuel = if policy.cycle_budget > 0 {
        policy.cycle_budget as u64
    } else {
        default_fuel
    };
    let mut last: Option<(FailureKind, String)> = None;
    for attempt in 0..=max_retries {
        let inject = fault.filter(|_| !transient_faults || attempt == 0);
        let fuel = match inject {
            Some(Fault::Blowout) => CHAOS_BLOWOUT_FUEL,
            _ => base_fuel,
        };
        if attempt > 0 {
            // Deterministic bounded backoff: 25ms, 50ms, 100ms, 200ms,
            // then flat. Gives environmental causes (fd pressure, OOM
            // killer near-misses) room to clear without stalling the
            // sweep.
            let ms = 25u64 << (attempt - 1).min(3);
            std::thread::sleep(Duration::from_millis(ms));
        }
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(Fault::Stall) = inject {
                std::thread::sleep(Duration::from_millis(stall_ms));
            }
            if let Some(Fault::Panic) = inject {
                panic!("chaos: injected panic");
            }
            f(fuel)
        }));
        let attempt_result = match outcome {
            Err(payload) => Attempt::Failed(FailureKind::Panic, panic_message(payload.as_ref())),
            Ok(Err(err)) => classify_error(err),
            Ok(Ok(value)) => {
                let elapsed_ms = started.elapsed().as_millis() as i64;
                if policy.wall_budget_ms > 0 && elapsed_ms > policy.wall_budget_ms {
                    Attempt::Failed(
                        FailureKind::WallBudget,
                        format!(
                            "cell exceeded the wall-clock budget of {} ms",
                            policy.wall_budget_ms
                        ),
                    )
                } else {
                    Attempt::Ok(value)
                }
            }
        };
        match attempt_result {
            Attempt::Ok(value) => return Ok(value),
            Attempt::Failed(kind, message) => {
                let give_up = !kind.transient() || attempt == max_retries;
                last = Some((kind, message));
                if give_up {
                    break;
                }
            }
        }
    }
    let (kind, message) = last.expect("at least one attempt ran");
    let retries = if kind.transient() {
        max_retries
    } else {
        // Deterministic failures stop at the first attempt.
        0
    };
    Err((kind, message, retries))
}

/// Classify an [`ExpError`]: cycle-budget exhaustion is recognized via
/// its structured [`ErrorKind::Budget`] kind (message match as a
/// fallback for errors that were stringified along the way).
fn classify_error<T>(err: ExpError) -> Attempt<T> {
    let message = err.to_string();
    let budget = err.kind == ErrorKind::Budget || message.contains("cycle budget exhausted");
    if budget {
        Attempt::Failed(FailureKind::CycleBudget, message)
    } else {
        Attempt::Failed(FailureKind::Error, message)
    }
}

/// Best-effort text of a panic payload (`&str` and `String` payloads
/// cover `panic!`-with-message; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_sim::SimError;

    fn policy(max_retries: i64) -> ResiliencePolicy {
        ResiliencePolicy {
            max_retries,
            ..ResiliencePolicy::default()
        }
    }

    #[test]
    fn ok_cell_passes_through() {
        let out = run_cell_resilient(Ok::<u64, ExpError>, 42, &policy(1), None, 0, false);
        assert_eq!(out.unwrap(), 42);
    }

    #[test]
    fn cycle_budget_overrides_default_fuel() {
        let p = ResiliencePolicy {
            cycle_budget: 7,
            ..ResiliencePolicy::default()
        };
        let out = run_cell_resilient(Ok::<u64, ExpError>, 42, &p, None, 0, false);
        assert_eq!(out.unwrap(), 7);
    }

    #[test]
    fn panic_is_caught_and_classified() {
        let out = run_cell_resilient(
            |_| -> Result<(), ExpError> { panic!("boom {}", 3) },
            1,
            &policy(0),
            None,
            0,
            false,
        );
        let (kind, message, retries) = out.unwrap_err();
        assert_eq!(kind, FailureKind::Panic);
        assert!(message.contains("boom 3"), "{message}");
        assert_eq!(retries, 0);
    }

    #[test]
    fn deterministic_errors_are_not_retried() {
        let calls = std::cell::Cell::new(0);
        let out = run_cell_resilient(
            |_| -> Result<(), ExpError> {
                calls.set(calls.get() + 1);
                Err("spec error: nope".into())
            },
            1,
            &policy(3),
            None,
            0,
            false,
        );
        let (kind, _, retries) = out.unwrap_err();
        assert_eq!(kind, FailureKind::Error);
        assert_eq!(retries, 0);
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn fuel_exhaustion_classifies_as_cycle_budget() {
        let out = run_cell_resilient(
            |_| -> Result<(), ExpError> { Err(SimError::FuelExhausted { cycles: 99 }.into()) },
            1,
            &policy(2),
            None,
            0,
            false,
        );
        let (kind, message, retries) = out.unwrap_err();
        assert_eq!(kind, FailureKind::CycleBudget);
        assert!(message.contains("99"), "{message}");
        assert_eq!(retries, 0);
    }

    #[test]
    fn transient_chaos_panic_recovers_on_retry() {
        let out = run_cell_resilient(
            Ok::<u64, ExpError>,
            5,
            &policy(1),
            Some(Fault::Panic),
            0,
            true, // transient: inject only on attempt 0
        );
        assert_eq!(out.unwrap(), 5);
    }

    #[test]
    fn persistent_chaos_panic_exhausts_retries() {
        let out = run_cell_resilient(
            Ok::<u64, ExpError>,
            5,
            &policy(2),
            Some(Fault::Panic),
            0,
            false,
        );
        let (kind, message, retries) = out.unwrap_err();
        assert_eq!(kind, FailureKind::Panic);
        assert!(message.contains("chaos"), "{message}");
        assert_eq!(retries, 2);
    }

    #[test]
    fn blowout_fault_substitutes_tiny_fuel() {
        let out = run_cell_resilient(
            |fuel| -> Result<u64, ExpError> {
                if fuel < 1000 {
                    Err(SimError::FuelExhausted { cycles: fuel }.into())
                } else {
                    Ok(fuel)
                }
            },
            1 << 20,
            &policy(1),
            Some(Fault::Blowout),
            0,
            false,
        );
        let (kind, _, _) = out.unwrap_err();
        assert_eq!(kind, FailureKind::CycleBudget);
    }

    #[test]
    fn wall_watchdog_flags_stalls() {
        let p = ResiliencePolicy {
            wall_budget_ms: 20,
            max_retries: 0,
            ..ResiliencePolicy::default()
        };
        let out = run_cell_resilient(Ok::<u64, ExpError>, 1, &p, Some(Fault::Stall), 60, false);
        let (kind, message, _) = out.unwrap_err();
        assert_eq!(kind, FailureKind::WallBudget);
        assert!(message.contains("20 ms"), "{message}");
    }

    #[test]
    fn fault_plan_assignment_is_deterministic_and_partitioned() {
        let keys: Vec<String> = (0..10).map(|i| format!("cell-{i}")).collect();
        let plan = FaultPlan {
            seed: 7,
            panics: 2,
            stalls: 1,
            blowouts: 3,
            stall_ms: 5,
            transient: false,
        };
        let faults: Vec<Option<Fault>> = keys.iter().map(|k| plan.fault_for(k, &keys)).collect();
        let count = |f: Fault| faults.iter().filter(|x| **x == Some(f)).count();
        assert_eq!(count(Fault::Panic), 2);
        assert_eq!(count(Fault::Stall), 1);
        assert_eq!(count(Fault::Blowout), 3);
        assert_eq!(faults.iter().filter(|x| x.is_none()).count(), 4);
        // Same seed, same assignment.
        let again: Vec<Option<Fault>> = keys.iter().map(|k| plan.fault_for(k, &keys)).collect();
        assert_eq!(faults, again);
        // Different seed, (almost surely) different victims.
        let other = FaultPlan {
            seed: 8,
            ..plan.clone()
        };
        let moved: Vec<Option<Fault>> = keys.iter().map(|k| other.fault_for(k, &keys)).collect();
        assert_eq!(moved.iter().filter(|x| x.is_some()).count(), 6);
    }

    #[test]
    fn journal_roundtrip_and_atomicity() {
        let dir = std::env::temp_dir().join(format!(
            "helix-journal-test-{}-{:x}",
            std::process::id(),
            fnv1a(FNV_OFFSET, b"journal_roundtrip")
        ));
        let j = Journal::open(&dir).unwrap();
        assert!(j.load(0xdead).is_none());
        j.store(0xdead, "v1\trow").unwrap();
        assert_eq!(j.load(0xdead).unwrap(), "v1\trow");
        j.store(0xdead, "v2\trow").unwrap();
        assert_eq!(j.load(0xdead).unwrap(), "v2\trow");
        // No temp litter after a successful store.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
