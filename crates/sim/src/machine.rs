//! The multicore machine: global cycle loop, serial/parallel phase
//! orchestration, and the per-core issue logic for both core models.

use crate::attribution::{Attribution, Bucket};
use crate::config::{CoreModel, MachineConfig};
use crate::core::{inst_latency, CoreState, RobEntry, RunState};
use crate::memsys::{MemStats, MemSystem};
use crate::race::{RaceDetector, RaceViolation};
use crate::sync::{required_count, required_sources, SyncState, WaitBlock};
use helix_hcc::{LiveOutResolve, LoopPlan};
use helix_ir::interp::{Env, InterpError, StepEvent, Thread};
use helix_ir::trace::{InstSite, MemAccess, TraceSink};
use helix_ir::{BlockId, Inst, Program, Reg, SegmentId, Terminator, Value};
use helix_ring_cache::{LoadIssue, RingCache, RingStats};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// Functional execution faulted.
    Interp(InterpError),
    /// The cycle budget was exhausted.
    FuelExhausted {
        /// Cycles executed before giving up.
        cycles: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Interp(e) => write!(f, "functional fault: {e}"),
            SimError::FuelExhausted { cycles } => {
                write!(f, "cycle budget exhausted after {cycles}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<InterpError> for SimError {
    fn from(e: InterpError) -> Self {
        SimError::Interp(e)
    }
}

/// Results of one simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Total cycles.
    pub cycles: u64,
    /// Dynamic instructions across all cores.
    pub dyn_insts: u64,
    /// Per-cycle attribution.
    pub attribution: Attribution,
    /// Digest of final memory contents.
    pub mem_digest: u64,
    /// Ring statistics, when a ring was configured.
    pub ring_stats: Option<RingStats>,
    /// Memory-hierarchy statistics.
    pub mem_stats: MemStats,
    /// Race violations (must be empty for a correct compiler).
    #[serde(skip)]
    pub race_violations: Vec<RaceViolation>,
    /// Protocol errors (missing signals, escaped workers, ...).
    pub protocol_errors: Vec<String>,
    /// Parallel loop invocations executed.
    pub loop_invocations: u64,
    /// Parallel iterations executed.
    pub iterations: u64,
    /// Sampled per-iteration durations in cycles (Fig. 4a).
    pub iteration_lengths: Vec<u32>,
    /// Orchestrator register file at program end.
    #[serde(skip)]
    pub final_regs: Vec<Value>,
}

impl RunReport {
    /// Speedup of this run relative to a baseline cycle count.
    pub fn speedup_vs(&self, baseline_cycles: u64) -> f64 {
        baseline_cycles as f64 / self.cycles.max(1) as f64
    }
}

/// Per-parallel-loop context.
#[derive(Debug)]
struct ParCtx {
    plan: usize,
    trip: u64,
    r0: Vec<Value>,
    /// reg -> (defining iteration, core), for LastWriter live-outs.
    last_writer: BTreeMap<Reg, (u64, usize)>,
    lastwriter_regs: BTreeSet<Reg>,
    seg_ids: Vec<SegmentId>,
}

#[derive(Debug)]
enum Mode {
    Serial,
    Parallel(ParCtx),
}

/// Sink capturing the memory accesses of a single step.
#[derive(Default)]
struct CapSink {
    mem: Vec<MemAccess>,
}

impl TraceSink for CapSink {
    fn on_mem(&mut self, _site: InstSite, access: MemAccess) {
        self.mem.push(access);
    }
}

/// The machine simulator.
#[derive(Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    plans: &'p [LoopPlan],
    cfg: MachineConfig,
    env: Env,
    cores: Vec<CoreState>,
    memsys: MemSystem,
    ring: Option<RingCache>,
    sync: SyncState,
    attr: Attribution,
    race: RaceDetector,
    now: u64,
    mode: Mode,
    plan_by_header: BTreeMap<BlockId, usize>,
    pending_enter: Option<usize>,
    protocol_errors: Vec<String>,
    loop_invocations: u64,
    iterations: u64,
    iteration_lengths: Vec<u32>,
    /// Minimum in-flight iteration this cycle (for the lap bound).
    min_iter: u64,
}

const MAX_ITER_SAMPLES: usize = 1 << 16;
/// Extra cycles a coherence-mediated wait pays to observe a flag after
/// the transfer completes (spin-loop detection).
const SPIN_OVERHEAD: u64 = 2;

impl<'p> Machine<'p> {
    /// Build a machine over a (possibly transformed) program and its
    /// parallel-loop plans.
    pub fn new(program: &'p Program, plans: &'p [LoopPlan], cfg: MachineConfig) -> Machine<'p> {
        cfg.assert_valid();
        let env = Env::for_program(program);
        let n_regs = program.n_regs as usize;
        let cores = (0..cfg.cores)
            .map(|id| CoreState::new(id, Thread::at_entry(program), n_regs))
            .collect();
        let memsys = MemSystem::new(&cfg);
        let ring = cfg.ring.map(RingCache::new);
        let plan_by_header = plans
            .iter()
            .enumerate()
            .map(|(i, p)| (p.header, i))
            .collect();
        Machine {
            program,
            plans,
            attr: Attribution::new(cfg.cores),
            cfg,
            env,
            cores,
            memsys,
            ring,
            sync: SyncState::default(),
            race: RaceDetector::new(),
            now: 0,
            mode: Mode::Serial,
            plan_by_header,
            pending_enter: None,
            protocol_errors: Vec::new(),
            loop_invocations: 0,
            iterations: 0,
            iteration_lengths: Vec::new(),
            min_iter: 0,
        }
    }

    /// Run to completion (or until `fuel` cycles elapse).
    ///
    /// # Errors
    ///
    /// Fails on functional faults or fuel exhaustion.
    pub fn run(&mut self, fuel: u64) -> Result<RunReport, SimError> {
        while !self.finished() {
            if self.now >= fuel {
                return Err(SimError::FuelExhausted { cycles: self.now });
            }
            self.tick_cycle()?;
        }
        Ok(self.report())
    }

    fn finished(&self) -> bool {
        matches!(self.mode, Mode::Serial) && self.cores[0].thread.finished
    }

    fn report(&self) -> RunReport {
        RunReport {
            cycles: self.now,
            dyn_insts: self.cores.iter().map(|c| c.thread.dyn_insts).sum(),
            attribution: self.attr.clone(),
            mem_digest: self.env.mem.digest(),
            ring_stats: self.ring.as_ref().map(|r| r.stats().clone()),
            mem_stats: self.memsys.stats,
            race_violations: self.race.violations.clone(),
            protocol_errors: self.protocol_errors.clone(),
            loop_invocations: self.loop_invocations,
            iterations: self.iterations,
            iteration_lengths: self.iteration_lengths.clone(),
            final_regs: self.cores[0].thread.regs.clone(),
        }
    }

    fn tick_cycle(&mut self) -> Result<(), SimError> {
        if let Some(ring) = &mut self.ring {
            ring.tick();
        }
        // Lap bound: the slowest in-flight iteration.
        self.min_iter = self
            .cores
            .iter()
            .map(|c| match c.run {
                RunState::Iter { iter, .. } | RunState::LapHold { iter } => iter,
                _ => u64::MAX,
            })
            .min()
            .unwrap_or(u64::MAX);
        for cid in 0..self.cfg.cores {
            self.tick_core(cid)?;
        }
        self.now += 1;
        if let Some(plan) = self.pending_enter.take() {
            self.enter_parallel(plan);
        }
        if matches!(self.mode, Mode::Parallel(_)) {
            let all_done = self.cores.iter().all(|c| {
                matches!(c.run, RunState::FinishedLoop | RunState::NoWork)
            });
            if all_done {
                self.exit_parallel();
            }
        }
        Ok(())
    }

    /// Enter parallel execution of `plans[pidx]`; the orchestrator's
    /// thread is positioned at the loop header.
    fn enter_parallel(&mut self, pidx: usize) {
        let plan = &self.plans[pidx];
        let mut r0 = self.cores[0].thread.regs.clone();
        for ind in &plan.inductions {
            r0[ind.init_copy.index()] = r0[ind.reg.index()];
        }
        for p2 in &plan.poly2 {
            r0[p2.init_copy.index()] = r0[p2.reg.index()];
        }
        let counter_entry = r0[plan.counter.index()].as_int();
        let bound = match plan.bound {
            helix_ir::Operand::Reg(r) => r0[r.index()].as_int(),
            helix_ir::Operand::Imm(v) => v.as_int(),
        };
        let trip = plan.trip_count(counter_entry, bound);
        debug_assert!(trip >= 1, "zero-trip loops stay serial");

        for (cid, core) in self.cores.iter_mut().enumerate() {
            core.thread.regs = r0.clone();
            core.thread.finished = false;
            if cid > 0 {
                for red in &plan.reductions {
                    core.thread.regs[red.reg.index()] = red.identity;
                }
            }
            for t in core.reg_ready.iter_mut() {
                *t = self.now;
            }
            core.reset_iteration();
            core.pending_ring.clear();
            core.fetch_stall_until = 0;
            if (cid as u64) < trip {
                core.thread.block = plan.iteration_entry;
                core.thread.ip = 0;
                core.thread.regs[plan.iter_reg.index()] = Value::Int(cid as i64);
                core.run = RunState::Iter {
                    iter: cid as u64,
                    started_at: self.now,
                };
            } else {
                core.run = RunState::NoWork;
            }
        }
        self.sync.begin_loop();
        self.race.begin_loop();
        if let Some(ring) = &mut self.ring {
            ring.begin_loop();
        }
        let lastwriter_regs = plan
            .liveouts
            .iter()
            .filter(|l| l.resolve == LiveOutResolve::LastWriter)
            .map(|l| l.reg)
            .collect();
        self.mode = Mode::Parallel(ParCtx {
            plan: pidx,
            trip,
            r0,
            last_writer: BTreeMap::new(),
            lastwriter_regs,
            seg_ids: plan.segments.iter().map(|s| s.id).collect(),
        });
        self.loop_invocations += 1;
    }

    /// Loop barrier: flush the ring, resolve live-outs, resume serial
    /// execution at the loop's exit block.
    fn exit_parallel(&mut self) {
        let Mode::Parallel(ctx) = std::mem::replace(&mut self.mode, Mode::Serial) else {
            unreachable!("exit_parallel outside parallel mode");
        };
        let plan = &self.plans[ctx.plan];

        // Distributed fence: drain and flush the ring cache.
        if let Some(ring) = &mut self.ring {
            let cost = ring.flush();
            self.now += cost;
            for cid in 0..self.cfg.cores {
                self.attr.charge_n(cid, Bucket::Communication, cost);
            }
        }

        // Resolve live-outs into the orchestrator's register file.
        let mut regs = ctx.r0.clone();
        let trip = ctx.trip as i64;
        for ind in &plan.inductions {
            let init = ctx.r0[ind.init_copy.index()].as_int();
            regs[ind.reg.index()] = Value::Int(init.wrapping_add(ind.step.wrapping_mul(trip)));
        }
        for p2 in &plan.poly2 {
            let r0v = ctx.r0[p2.init_copy.index()].as_int();
            let s0 = plan
                .inductions
                .iter()
                .find(|i| i.reg == p2.step_reg)
                .map(|i| ctx.r0[i.init_copy.index()].as_int())
                .unwrap_or(0);
            let k = trip;
            let val = r0v
                .wrapping_add(s0.wrapping_mul(k))
                .wrapping_add(p2.step_step.wrapping_mul(k.wrapping_mul(k - 1) / 2));
            regs[p2.reg.index()] = Value::Int(val);
        }
        for red in &plan.reductions {
            let mut acc = self.cores[0].thread.regs[red.reg.index()];
            for core in self.cores.iter().skip(1) {
                acc = red.op.eval(acc, core.thread.regs[red.reg.index()]);
            }
            regs[red.reg.index()] = acc;
        }
        // Reduction combining costs a serialized pass over the cores.
        let combine_cost = (plan.reductions.len() * self.cfg.cores) as u64;
        if combine_cost > 0 {
            self.now += combine_cost;
            self.attr
                .charge_n(0, Bucket::AdditionalInsts, combine_cost);
            for cid in 1..self.cfg.cores {
                self.attr.charge_n(cid, Bucket::SerialIdle, combine_cost);
            }
        }
        for (reg, (_iter, core)) in &ctx.last_writer {
            regs[reg.index()] = self.cores[*core].thread.regs[reg.index()];
        }

        let core0 = &mut self.cores[0];
        core0.thread.regs = regs;
        core0.thread.block = plan.exit_resume;
        core0.thread.ip = 0;
        core0.thread.finished = false;
        core0.run = RunState::SerialActive;
        for t in core0.reg_ready.iter_mut() {
            *t = self.now;
        }
        for core in self.cores.iter_mut().skip(1) {
            core.run = RunState::SerialIdle;
        }
    }

    /// Wait-grant check for `core` at `iter` on segment `seg`.
    fn check_wait(&self, core: usize, seg: SegmentId, iter: u64) -> Result<(), WaitBlock> {
        let n = self.cfg.cores;
        for src in required_sources(self.cfg.sync, core, n) {
            let k = required_count(src, iter, n);
            if k == 0 {
                continue;
            }
            if self.cfg.decouple.synch {
                let ring = self.ring.as_ref().expect("decoupled sync needs a ring");
                if ring.signal_count(core, seg, src) < k {
                    return Err(if self.sync.count(seg, src) < k {
                        WaitBlock::Dependence
                    } else {
                        WaitBlock::Communication
                    });
                }
            } else {
                match self.sync.kth_time(seg, src, k) {
                    None => return Err(WaitBlock::Dependence),
                    Some(t) => {
                        if self.now < t + self.cfg.c2c_latency as u64 + SPIN_OVERHEAD {
                            return Err(WaitBlock::Communication);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Route a load and return `(completion cycle, stall class)`, or
    /// `None` when the ring applied backpressure.
    #[allow(clippy::too_many_arguments)]
    fn route_load(
        &mut self,
        cid: usize,
        addr: u64,
        shared: Option<helix_ir::SharedTag>,
        dst: Reg,
        issue_at: u64,
    ) -> Option<(u64, Bucket)> {
        let decoupled = match shared.map(|t| t.class) {
            Some(helix_ir::TrafficClass::RegisterCarried) => self.cfg.decouple.register,
            Some(helix_ir::TrafficClass::MemoryCarried) => self.cfg.decouple.memory,
            None => false,
        };
        if decoupled {
            let ring = self.ring.as_mut().expect("decoupling requires ring");
            match ring.load(cid, addr) {
                LoadIssue::Hit { ready_at } => Some((ready_at.max(issue_at), Bucket::Communication)),
                LoadIssue::Pending { ticket } => {
                    self.cores[cid].pending_ring.push((ticket, dst));
                    Some((u64::MAX, Bucket::Communication))
                }
            }
        } else {
            let done = self.memsys.access(cid, addr, false, issue_at);
            let class = if shared.is_some() {
                Bucket::Communication
            } else {
                Bucket::Memory
            };
            Some((done, class))
        }
    }

    /// Route a store; returns `false` on ring backpressure.
    fn route_store(
        &mut self,
        cid: usize,
        addr: u64,
        shared: Option<helix_ir::SharedTag>,
        issue_at: u64,
    ) -> bool {
        let decoupled = match shared.map(|t| t.class) {
            Some(helix_ir::TrafficClass::RegisterCarried) => self.cfg.decouple.register,
            Some(helix_ir::TrafficClass::MemoryCarried) => self.cfg.decouple.memory,
            None => false,
        };
        if decoupled {
            let ring = self.ring.as_mut().expect("decoupling requires ring");
            ring.store(cid, addr)
        } else {
            // Fire-and-forget through the store buffer; coherence state
            // updates immediately, the core does not wait.
            let _ = self.memsys.access(cid, addr, true, issue_at);
            true
        }
    }

    /// Handle end-of-iteration bookkeeping; returns whether the core
    /// continues with another iteration this invocation.
    fn end_iteration(&mut self, cid: usize) {
        let Mode::Parallel(ctx) = &mut self.mode else {
            unreachable!("iteration end outside parallel mode");
        };
        let (iter, started_at) = match self.cores[cid].run {
            RunState::Iter { iter, started_at } => (iter, started_at),
            _ => unreachable!("iteration end on non-iterating core"),
        };
        self.iterations += 1;
        if self.iteration_lengths.len() < MAX_ITER_SAMPLES {
            self.iteration_lengths
                .push((self.now - started_at).min(u32::MAX as u64) as u32);
        }
        // Every segment must have been signalled on every path.
        for seg in &ctx.seg_ids {
            if !self.cores[cid].signaled.contains(seg) {
                self.protocol_errors.push(format!(
                    "core {cid} finished iteration {iter} without signalling {seg}"
                ));
            }
        }
        let next = iter + self.cfg.cores as u64;
        let core = &mut self.cores[cid];
        core.reset_iteration();
        if next < ctx.trip {
            core.run = RunState::LapHold { iter: next };
        } else {
            core.run = RunState::FinishedLoop;
        }
    }

    /// Try to start iteration `iter` on `cid` (subject to the lap bound).
    fn try_start_iteration(&mut self, cid: usize, iter: u64) -> bool {
        // One-lap-ahead bound: keeps at most two signals per segment in
        // flight (paper §4's last code property).
        let bound = self
            .min_iter
            .saturating_add(2 * self.cfg.cores as u64);
        if iter > bound {
            return false;
        }
        let Mode::Parallel(ctx) = &self.mode else {
            return false;
        };
        let plan = &self.plans[ctx.plan];
        let core = &mut self.cores[cid];
        core.thread.regs[plan.iter_reg.index()] = Value::Int(iter as i64);
        core.reg_ready[plan.iter_reg.index()] = self.now;
        core.thread.block = plan.iteration_entry;
        core.thread.ip = 0;
        core.run = RunState::Iter {
            iter,
            started_at: self.now,
        };
        true
    }

    /// One cycle of core `cid`.
    fn tick_core(&mut self, cid: usize) -> Result<(), SimError> {
        // Resolve completed ring loads.
        if !self.cores[cid].pending_ring.is_empty() {
            let mut resolved = Vec::new();
            if let Some(ring) = &mut self.ring {
                self.cores[cid].pending_ring.retain(|&(ticket, reg)| {
                    if let Some(ready) = ring.load_ready(ticket) {
                        resolved.push((ticket, reg, ready));
                        false
                    } else {
                        true
                    }
                });
                for (ticket, reg, ready) in resolved {
                    ring.retire_load(ticket);
                    self.cores[cid].reg_ready[reg.index()] = ready;
                }
            }
        }

        match self.cores[cid].run {
            RunState::SerialIdle | RunState::Done => {
                self.attr.charge(cid, Bucket::SerialIdle);
                return Ok(());
            }
            RunState::NoWork => {
                self.attr.charge(cid, Bucket::LowTripCount);
                return Ok(());
            }
            RunState::FinishedLoop => {
                self.attr.charge(cid, Bucket::IterationImbalance);
                return Ok(());
            }
            RunState::LapHold { iter } => {
                if !self.try_start_iteration(cid, iter) {
                    self.attr.charge(cid, Bucket::Communication);
                    return Ok(());
                }
                // Started: fall through into execution this cycle.
            }
            RunState::SerialActive | RunState::Iter { .. } => {}
        }
        if self.cores[cid].thread.finished {
            self.cores[cid].run = RunState::Done;
            self.attr.charge(cid, Bucket::SerialIdle);
            return Ok(());
        }

        match self.cfg.core {
            CoreModel::InOrder { width } => self.tick_inorder(cid, width),
            CoreModel::OutOfOrder { width, rob } => self.tick_ooo(cid, width, rob),
        }
    }

    /// In-order, stall-on-use issue of up to `width` instructions.
    fn tick_inorder(&mut self, cid: usize, width: u32) -> Result<(), SimError> {
        let now = self.now;
        let mut issued = 0u32;
        let mut any_original = false;
        let mut any_added = false;
        let mut stall: Option<Bucket> = None;

        while issued < width {
            if now < self.cores[cid].fetch_stall_until {
                if issued == 0 {
                    stall = Some(Bucket::Computation); // branch redirect bubble
                }
                break;
            }
            // Terminator next?
            if let Some(term) = self.cores[cid].thread.peek_terminator(self.program) {
                let term = term.clone();
                if let Terminator::Branch { cond, .. } = &term {
                    if let Some(r) = cond.reg() {
                        if let Some((_, class)) = self.cores[cid].blocking_reg(&[r], now) {
                            if issued == 0 {
                                stall = Some(class);
                            }
                            break;
                        }
                    }
                }
                let stop = self.issue_terminator(cid, &term)?;
                issued += 1;
                any_original = true;
                if stop {
                    break;
                }
                continue;
            }
            let Some(inst) = self.cores[cid].thread.peek(self.program) else {
                break; // finished
            };
            let inst = inst.clone();

            match &inst {
                Inst::Wait { seg } => {
                    if !self.cores[cid].granted.contains(seg) {
                        let iter = match self.cores[cid].run {
                            RunState::Iter { iter, .. } => iter,
                            _ => 0,
                        };
                        let in_parallel = matches!(self.mode, Mode::Parallel(_));
                        if in_parallel {
                            match self.check_wait(cid, *seg, iter) {
                                Ok(()) => {
                                    self.cores[cid].granted.insert(*seg);
                                }
                                Err(block) => {
                                    if issued == 0 {
                                        stall = Some(match block {
                                            WaitBlock::Dependence => Bucket::DependenceWaiting,
                                            WaitBlock::Communication => Bucket::Communication,
                                        });
                                    }
                                    break;
                                }
                            }
                        } else {
                            self.cores[cid].granted.insert(*seg);
                        }
                    }
                    self.step_functional(cid)?;
                    issued += 1;
                    // wait/signal instructions are charged to their own
                    // bucket unless real work issued too.
                }
                Inst::Signal { seg } => {
                    let seg = *seg;
                    if !self.cores[cid].signaled.contains(&seg)
                        && matches!(self.mode, Mode::Parallel(_))
                    {
                        if self.cfg.decouple.synch {
                            let ring = self.ring.as_mut().expect("ring");
                            if !ring.signal(cid, seg) {
                                if issued == 0 {
                                    stall = Some(Bucket::Communication);
                                }
                                break;
                            }
                        }
                        self.sync.record_signal(seg, cid, now);
                        self.cores[cid].signaled.insert(seg);
                    }
                    self.step_functional(cid)?;
                    issued += 1;
                }
                Inst::Load { addr, shared, dst, .. } => {
                    let uses: Vec<Reg> = inst.uses();
                    if let Some((_, class)) = self.cores[cid].blocking_reg(&uses, now) {
                        if issued == 0 {
                            stall = Some(class);
                        }
                        break;
                    }
                    let a = self.cores[cid].thread.eval_addr(addr, &self.env.mem);
                    let Some((done, class)) = self.route_load(cid, a, *shared, *dst, now) else {
                        if issued == 0 {
                            stall = Some(Bucket::Communication);
                        }
                        break;
                    };
                    self.step_functional(cid)?;
                    let core = &mut self.cores[cid];
                    core.reg_ready[dst.index()] = done; // u64::MAX while pending
                    core.reg_class[dst.index()] = class;
                    issued += 1;
                    if inst.is_added() {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
                Inst::Store { addr, shared, .. } => {
                    let uses: Vec<Reg> = inst.uses();
                    if let Some((_, class)) = self.cores[cid].blocking_reg(&uses, now) {
                        if issued == 0 {
                            stall = Some(class);
                        }
                        break;
                    }
                    let a = self.cores[cid].thread.eval_addr(addr, &self.env.mem);
                    if !self.route_store(cid, a, *shared, now) {
                        if issued == 0 {
                            stall = Some(Bucket::Communication);
                        }
                        break;
                    }
                    self.step_functional(cid)?;
                    issued += 1;
                    if inst.is_added() {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
                _ => {
                    let uses: Vec<Reg> = inst.uses();
                    if let Some((_, class)) = self.cores[cid].blocking_reg(&uses, now) {
                        if issued == 0 {
                            stall = Some(class);
                        }
                        break;
                    }
                    let lat = inst_latency(&inst) as u64;
                    let dst = inst.def();
                    self.step_functional(cid)?;
                    if let Some(d) = dst {
                        let core = &mut self.cores[cid];
                        core.reg_ready[d.index()] = now + lat;
                        core.reg_class[d.index()] = Bucket::Computation;
                    }
                    issued += 1;
                    if self.in_prologue(cid) || inst.is_added() {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
            }
        }

        // Attribute this cycle.
        let bucket = if issued > 0 {
            if any_original {
                Bucket::Computation
            } else if any_added {
                Bucket::AdditionalInsts
            } else {
                Bucket::WaitSignal
            }
        } else {
            stall.unwrap_or(Bucket::Computation)
        };
        self.attr.charge(cid, bucket);
        Ok(())
    }

    /// Whether `cid`'s program counter is inside a re-computation
    /// prologue block (everything there is parallelization overhead).
    fn in_prologue(&self, cid: usize) -> bool {
        if let Mode::Parallel(ctx) = &self.mode {
            self.cores[cid].thread.block == self.plans[ctx.plan].iteration_entry
        } else {
            false
        }
    }

    /// Execute the next instruction functionally, feeding the race
    /// detector.
    fn step_functional(&mut self, cid: usize) -> Result<StepEvent, SimError> {
        let mut sink = CapSink::default();
        let event = self.cores[cid]
            .thread
            .step(self.program, &mut self.env, &mut sink)?;
        if matches!(self.mode, Mode::Parallel(_)) {
            for access in sink.mem {
                let in_window = access
                    .shared
                    .map(|t| {
                        self.cores[cid].granted.contains(&t.seg)
                            && !self.cores[cid].signaled.contains(&t.seg)
                    })
                    .unwrap_or(false);
                self.race.on_access(
                    cid,
                    access.addr,
                    access.len,
                    access.is_store,
                    access.shared,
                    in_window,
                );
            }
            // LastWriter live-out tracking.
            if let Mode::Parallel(ctx) = &mut self.mode {
                if let RunState::Iter { iter, .. } = self.cores[cid].run {
                    // Only defs matter; re-peek is impossible (already
                    // stepped), so check the previous instruction.
                    let th = &self.cores[cid].thread;
                    if th.ip > 0 {
                        if let Some(prev) = self
                            .program
                            .graph
                            .block(th.block)
                            .insts
                            .get(th.ip - 1)
                        {
                            if let Some(d) = prev.def() {
                                if ctx.lastwriter_regs.contains(&d) {
                                    let e = ctx.last_writer.entry(d).or_insert((iter, cid));
                                    if iter >= e.0 {
                                        *e = (iter, cid);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(event)
    }

    /// Issue a terminator; returns `true` when the issue loop must stop
    /// (iteration boundary or parallel-loop entry).
    fn issue_terminator(&mut self, cid: usize, term: &Terminator) -> Result<bool, SimError> {
        let now = self.now;
        let from = self.cores[cid].thread.block;
        let event = self.step_functional(cid)?;
        let StepEvent::Flow { to, .. } = event else {
            // Return: the thread is finished.
            return Ok(true);
        };
        // Branch prediction.
        if let Terminator::Branch { then_, .. } = term {
            let taken = to == *then_;
            let correct = self.cores[cid].predictor.update(from, taken);
            if !correct {
                self.cores[cid].fetch_stall_until =
                    now + 1 + self.cfg.mispredict_penalty as u64;
            }
        }
        Ok(self.post_flow(cid, from, to))
    }

    /// Out-of-order dispatch of up to `width` instructions into a
    /// `rob_cap`-entry window.
    fn tick_ooo(&mut self, cid: usize, width: u32, rob_cap: u32) -> Result<(), SimError> {
        let now = self.now;
        // Retire completed entries in order.
        let mut retired = 0;
        while retired < width {
            match self.cores[cid].rob.front() {
                Some(e) if e.complete <= now => {
                    self.cores[cid].rob.pop_front();
                    retired += 1;
                }
                _ => break,
            }
        }

        let mut dispatched = 0u32;
        let mut any_original = false;
        let mut any_added = false;
        let mut stall: Option<Bucket> = None;

        while dispatched < width {
            if now < self.cores[cid].fetch_stall_until {
                if dispatched == 0 {
                    stall = Some(Bucket::Computation);
                }
                break;
            }
            if self.cores[cid].rob.len() >= rob_cap as usize {
                if dispatched == 0 {
                    stall = Some(
                        self.cores[cid]
                            .rob
                            .front()
                            .map(|e| e.class)
                            .unwrap_or(Bucket::Computation),
                    );
                }
                break;
            }
            if let Some(term) = self.cores[cid].thread.peek_terminator(self.program) {
                let term = term.clone();
                // Branch resolution happens when the condition is ready.
                let resolve_at = match &term {
                    Terminator::Branch { cond, .. } => cond
                        .reg()
                        .map(|r| self.cores[cid].reg_ready[r.index()])
                        .unwrap_or(now)
                        .max(now),
                    _ => now,
                };
                if resolve_at == u64::MAX {
                    if dispatched == 0 {
                        stall = Some(Bucket::Communication);
                    }
                    break;
                }
                let from = self.cores[cid].thread.block;
                let event = self.step_functional(cid)?;
                dispatched += 1;
                any_original = true;
                self.cores[cid].rob.push_back(RobEntry {
                    complete: resolve_at.saturating_add(1),
                    class: Bucket::Computation,
                });
                let StepEvent::Flow { to, .. } = event else {
                    break;
                };
                if let Terminator::Branch { then_, .. } = &term {
                    let taken = to == *then_;
                    let correct = self.cores[cid].predictor.update(from, taken);
                    if !correct {
                        self.cores[cid].fetch_stall_until =
                            resolve_at + 1 + self.cfg.mispredict_penalty as u64;
                    }
                }
                // Mode transitions (same rules as in-order).
                let stop = self.post_flow(cid, from, to);
                if stop {
                    break;
                }
                continue;
            }
            let Some(inst) = self.cores[cid].thread.peek(self.program) else {
                break;
            };
            let inst = inst.clone();
            match &inst {
                Inst::Wait { .. } | Inst::Signal { .. } => {
                    // Fence: dispatch only with an empty window.
                    if !self.cores[cid].rob.is_empty() {
                        if dispatched == 0 {
                            stall = Some(
                                self.cores[cid]
                                    .rob
                                    .front()
                                    .map(|e| e.class)
                                    .unwrap_or(Bucket::Computation),
                            );
                        }
                        break;
                    }
                    // Reuse the in-order logic for grant/record by
                    // falling back to a single-instruction in-order step.
                    let before = self.cores[cid].thread.dyn_insts;
                    self.inorder_sync_step(cid, &inst, &mut stall, dispatched)?;
                    if self.cores[cid].thread.dyn_insts == before {
                        break; // blocked
                    }
                    dispatched += 1;
                }
                Inst::Load { addr, shared, dst, .. } => {
                    let ops_ready = self.cores[cid].operands_ready(&inst.uses()).max(now);
                    if ops_ready == u64::MAX {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                        }
                        break; // operand awaits an outstanding ring load
                    }
                    let a = self.cores[cid].thread.eval_addr(addr, &self.env.mem);
                    let Some((done, class)) = self.route_load(cid, a, *shared, *dst, ops_ready)
                    else {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                        }
                        break;
                    };
                    self.step_functional(cid)?;
                    let core = &mut self.cores[cid];
                    core.reg_ready[dst.index()] = done; // u64::MAX while pending
                    core.reg_class[dst.index()] = class;
                    let complete = if done == u64::MAX { now + 1 } else { done };
                    core.rob.push_back(RobEntry { complete, class });
                    dispatched += 1;
                    if inst.is_added() {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
                Inst::Store { addr, shared, .. } => {
                    let ops_ready = self.cores[cid].operands_ready(&inst.uses()).max(now);
                    if ops_ready == u64::MAX {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                        }
                        break;
                    }
                    let a = self.cores[cid].thread.eval_addr(addr, &self.env.mem);
                    if !self.route_store(cid, a, *shared, ops_ready) {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                        }
                        break;
                    }
                    self.step_functional(cid)?;
                    self.cores[cid].rob.push_back(RobEntry {
                        complete: ops_ready.saturating_add(1),
                        class: Bucket::Memory,
                    });
                    dispatched += 1;
                    if inst.is_added() {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
                _ => {
                    let ops_ready = self.cores[cid].operands_ready(&inst.uses()).max(now);
                    if ops_ready == u64::MAX {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                        }
                        break;
                    }
                    let lat = inst_latency(&inst) as u64;
                    let dst = inst.def();
                    self.step_functional(cid)?;
                    let complete = ops_ready.saturating_add(lat);
                    let core = &mut self.cores[cid];
                    if let Some(d) = dst {
                        core.reg_ready[d.index()] = complete;
                        core.reg_class[d.index()] = Bucket::Computation;
                    }
                    core.rob.push_back(RobEntry {
                        complete,
                        class: Bucket::Computation,
                    });
                    dispatched += 1;
                    if self.in_prologue(cid) || inst.is_added() {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
            }
        }

        let bucket = if dispatched > 0 {
            if any_original {
                Bucket::Computation
            } else if any_added {
                Bucket::AdditionalInsts
            } else {
                Bucket::WaitSignal
            }
        } else {
            stall.unwrap_or(Bucket::Computation)
        };
        self.attr.charge(cid, bucket);
        Ok(())
    }

    /// Shared wait/signal semantics used by the OoO model.
    fn inorder_sync_step(
        &mut self,
        cid: usize,
        inst: &Inst,
        stall: &mut Option<Bucket>,
        dispatched: u32,
    ) -> Result<(), SimError> {
        match inst {
            Inst::Wait { seg } => {
                if !self.cores[cid].granted.contains(seg) {
                    let iter = match self.cores[cid].run {
                        RunState::Iter { iter, .. } => iter,
                        _ => 0,
                    };
                    if matches!(self.mode, Mode::Parallel(_)) {
                        match self.check_wait(cid, *seg, iter) {
                            Ok(()) => {
                                self.cores[cid].granted.insert(*seg);
                            }
                            Err(block) => {
                                if dispatched == 0 {
                                    *stall = Some(match block {
                                        WaitBlock::Dependence => Bucket::DependenceWaiting,
                                        WaitBlock::Communication => Bucket::Communication,
                                    });
                                }
                                return Ok(());
                            }
                        }
                    } else {
                        self.cores[cid].granted.insert(*seg);
                    }
                }
                self.step_functional(cid)?;
                self.cores[cid].rob.push_back(RobEntry {
                    complete: self.now + 1,
                    class: Bucket::WaitSignal,
                });
            }
            Inst::Signal { seg } => {
                let seg = *seg;
                if !self.cores[cid].signaled.contains(&seg)
                    && matches!(self.mode, Mode::Parallel(_))
                {
                    if self.cfg.decouple.synch {
                        let ring = self.ring.as_mut().expect("ring");
                        if !ring.signal(cid, seg) {
                            if dispatched == 0 {
                                *stall = Some(Bucket::Communication);
                            }
                            return Ok(());
                        }
                    }
                    self.sync.record_signal(seg, cid, self.now);
                    self.cores[cid].signaled.insert(seg);
                }
                self.step_functional(cid)?;
                self.cores[cid].rob.push_back(RobEntry {
                    complete: self.now + 1,
                    class: Bucket::WaitSignal,
                });
            }
            _ => unreachable!("sync step on non-sync instruction"),
        }
        Ok(())
    }

    /// Mode-transition handling after a control transfer (shared by both
    /// core models). Returns whether the issue loop must stop.
    fn post_flow(&mut self, cid: usize, from: BlockId, to: BlockId) -> bool {
        match &self.mode {
            Mode::Serial => {
                if cid == 0 {
                    if let Some(&pidx) = self.plan_by_header.get(&to) {
                        let plan = &self.plans[pidx];
                        let regs = &self.cores[0].thread.regs;
                        let counter = regs[plan.counter.index()].as_int();
                        let bound = match plan.bound {
                            helix_ir::Operand::Reg(r) => regs[r.index()].as_int(),
                            helix_ir::Operand::Imm(v) => v.as_int(),
                        };
                        if plan.trip_count(counter, bound) >= 1 {
                            self.pending_enter = Some(pidx);
                            return true;
                        }
                    }
                }
                false
            }
            Mode::Parallel(ctx) => {
                let plan = &self.plans[ctx.plan];
                if to == plan.header && from != plan.iteration_entry {
                    self.end_iteration(cid);
                    return true;
                }
                if !plan.blocks.contains(&to) && to != plan.header {
                    self.protocol_errors
                        .push(format!("core {cid} escaped the loop to {to}"));
                    self.cores[cid].run = RunState::FinishedLoop;
                    return true;
                }
                false
            }
        }
    }
}

/// Simulate a compiled program on `cfg`.
///
/// # Errors
///
/// Propagates functional faults; fails when `fuel` cycles elapse without
/// completion.
pub fn simulate(
    compiled: &helix_hcc::CompiledProgram,
    cfg: &MachineConfig,
    fuel: u64,
) -> Result<RunReport, SimError> {
    Machine::new(&compiled.program, &compiled.plans, cfg.clone()).run(fuel)
}

/// Simulate `program` sequentially (no parallel plans) on `cfg`.
///
/// # Errors
///
/// Propagates functional faults; fails when `fuel` cycles elapse without
/// completion.
pub fn simulate_sequential(
    program: &Program,
    cfg: &MachineConfig,
    fuel: u64,
) -> Result<RunReport, SimError> {
    Machine::new(program, &[], cfg.clone()).run(fuel)
}
