//! Lane-parallel batch simulation: decode a program once, then step
//! many independent machines in lockstep as *lanes*.
//!
//! Campaigns are lane-shaped: hundreds of grid cells simulate the same
//! scenario program under machine configurations that differ only in
//! core count, ring parameters, or compiler generation. A
//! [`SimSession`] is built once per (program, plans) pair, decodes the
//! program a single time (`Arc<DecodedProgram>` shared by every lane),
//! and [`drain`](SimSession::drain)s all enqueued lanes by stepping
//! each machine in bounded slices round-robin. Finished lanes retire
//! immediately and drop out of the rotation without stalling the batch.
//!
//! Lockstep slicing uses [`Machine::run_slice`], whose trajectory is
//! identical to an unsliced [`Machine::run`], so a lane's result is
//! bit-identical to running its configuration alone — the property the
//! lane-exactness regression tests pin across every committed scenario.

use crate::config::MachineConfig;
use crate::machine::{Machine, RunReport, SimError};
use helix_hcc::LoopPlan;
use helix_ir::decode::DecodedProgram;
use helix_ir::Program;
use std::sync::Arc;

/// How many cycles each lane advances per lockstep round. Large enough
/// that slice bookkeeping is noise, small enough that short lanes
/// retire promptly.
const CHUNK: u64 = 1 << 15;

/// One enqueued lane: a machine configuration plus its cycle budget.
#[derive(Debug, Clone)]
pub struct LaneConfig {
    /// Machine configuration for this lane.
    pub cfg: MachineConfig,
    /// Cycle budget (fuel) for this lane.
    pub fuel: u64,
}

/// One completed lane, tagged with the index its configuration was
/// enqueued under.
#[derive(Debug)]
pub struct LaneResult {
    /// Enqueue index of the lane (position in the order
    /// [`SimSession::enqueue`] was called).
    pub lane: usize,
    /// The lane's run outcome — exactly what a standalone
    /// [`Machine::run`] of the same configuration would return.
    pub result: Result<RunReport, SimError>,
}

/// A batch-simulation session over one (program, plans) pair.
///
/// Build once, [`enqueue`](SimSession::enqueue) any number of lane
/// configurations, then [`drain`](SimSession::drain). The program is
/// decoded at most once per session, lazily — a session whose lanes all
/// select the tree engine never decodes.
#[derive(Debug)]
pub struct SimSession<'p> {
    program: &'p Program,
    plans: &'p [LoopPlan],
    decoded: Option<Arc<DecodedProgram>>,
    lanes: Vec<LaneConfig>,
}

impl<'p> SimSession<'p> {
    /// Open a session over a program and its parallel-loop plans
    /// (empty `plans` for sequential execution).
    pub fn new(program: &'p Program, plans: &'p [LoopPlan]) -> SimSession<'p> {
        SimSession {
            program,
            plans,
            decoded: None,
            lanes: Vec::new(),
        }
    }

    /// Open a session seeded with an already-shared decode (e.g. a
    /// campaign's per-scenario decode cache), so even the first lane
    /// skips decoding.
    pub fn with_decoded(
        program: &'p Program,
        plans: &'p [LoopPlan],
        decoded: Arc<DecodedProgram>,
    ) -> SimSession<'p> {
        SimSession {
            program,
            plans,
            decoded: Some(decoded),
            lanes: Vec::new(),
        }
    }

    /// Enqueue one lane; returns its lane index.
    pub fn enqueue(&mut self, cfg: MachineConfig, fuel: u64) -> usize {
        self.lanes.push(LaneConfig { cfg, fuel });
        self.lanes.len() - 1
    }

    /// Number of lanes currently enqueued.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The session's shared decode, decoding now if no lane has needed
    /// it yet.
    pub fn decoded(&mut self) -> Arc<DecodedProgram> {
        self.decoded
            .get_or_insert_with(|| Arc::new(helix_ir::decode::decode(self.program)))
            .clone()
    }

    /// Run every enqueued lane to completion and return the results in
    /// lane order. Lanes step in lockstep rounds of bounded slices;
    /// a lane that finishes (or faults) retires immediately. The queue
    /// is cleared, so the session can be reused for another batch.
    pub fn drain(&mut self) -> Vec<LaneResult> {
        let lanes = std::mem::take(&mut self.lanes);
        let mut results: Vec<Option<LaneResult>> = (0..lanes.len()).map(|_| None).collect();
        // Build every machine up front; decoded lanes share one Arc.
        let mut active: Vec<(usize, u64, Machine<'p>)> = Vec::with_capacity(lanes.len());
        for (ix, lane) in lanes.into_iter().enumerate() {
            let machine = if lane.cfg.engine.is_decoded() {
                let decoded = self.decoded();
                Machine::with_decoded(self.program, self.plans, lane.cfg, decoded)
            } else {
                Machine::new(self.program, self.plans, lane.cfg)
            };
            active.push((ix, lane.fuel, machine));
        }
        let mut until = CHUNK;
        while !active.is_empty() {
            active.retain_mut(
                |(ix, fuel, machine)| match machine.run_slice(until, *fuel) {
                    Ok(None) => true,
                    Ok(Some(report)) => {
                        results[*ix] = Some(LaneResult {
                            lane: *ix,
                            result: Ok(report),
                        });
                        false
                    }
                    Err(e) => {
                        results[*ix] = Some(LaneResult {
                            lane: *ix,
                            result: Err(e),
                        });
                        false
                    }
                },
            );
            until = until.saturating_add(CHUNK);
        }
        results
            .into_iter()
            .map(|r| r.expect("lane retired"))
            .collect()
    }
}

/// Convenience: run one configuration as a single-lane session — the
/// fallback the campaign's chaos-injected and budget-isolated cells
/// use, preserving per-cell failure isolation.
pub fn run_one(
    program: &Program,
    plans: &[LoopPlan],
    cfg: MachineConfig,
    fuel: u64,
) -> Result<RunReport, SimError> {
    let mut session = SimSession::new(program, plans);
    session.enqueue(cfg, fuel);
    session
        .drain()
        .pop()
        .expect("single-lane session yields one result")
        .result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineSel;
    use helix_ir::{AddrExpr, ProgramBuilder, Ty};

    fn axpy() -> Program {
        let mut b = ProgramBuilder::new("axpy");
        let data = b.region("data", 1 << 14, Ty::I64);
        b.counted_loop(0, 500, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
            b.alu_chain(x, 4);
            b.store(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
        });
        b.finish()
    }

    /// Lanes of mixed configs land on exactly the standalone results.
    #[test]
    fn lanes_match_standalone_runs() {
        let program = axpy();
        let compiled = helix_hcc::compile(&program, &helix_hcc::HccConfig::v3(4)).unwrap();
        let cfgs = [
            MachineConfig::conventional(4),
            MachineConfig::helix_rc(4),
            MachineConfig::conventional(4).with_engine(EngineSel::Tree),
        ];
        let mut session = SimSession::new(&compiled.program, &compiled.plans);
        for cfg in &cfgs {
            session.enqueue(cfg.clone(), 1 << 24);
        }
        let results = session.drain();
        assert_eq!(results.len(), cfgs.len());
        for (ix, cfg) in cfgs.iter().enumerate() {
            let alone = Machine::new(&compiled.program, &compiled.plans, cfg.clone())
                .run(1 << 24)
                .unwrap();
            let lane = results[ix].result.as_ref().unwrap();
            assert_eq!(results[ix].lane, ix);
            assert_eq!(lane.cycles, alone.cycles, "lane {ix}");
            assert_eq!(lane.mem_digest, alone.mem_digest, "lane {ix}");
            assert_eq!(lane.dyn_insts, alone.dyn_insts, "lane {ix}");
        }
    }

    /// A lane that exhausts its fuel retires with the error without
    /// disturbing its batch-mates.
    #[test]
    fn fuel_exhaustion_is_per_lane() {
        let program = axpy();
        let mut session = SimSession::new(&program, &[]);
        session.enqueue(MachineConfig::conventional(1), 100);
        session.enqueue(MachineConfig::conventional(1), 1 << 24);
        let results = session.drain();
        assert!(matches!(
            results[0].result,
            Err(SimError::FuelExhausted { .. })
        ));
        let ok = results[1].result.as_ref().unwrap();
        let alone = Machine::new(&program, &[], MachineConfig::conventional(1))
            .run(1 << 24)
            .unwrap();
        assert_eq!(ok.cycles, alone.cycles);
        assert_eq!(ok.mem_digest, alone.mem_digest);
    }

    /// An all-Tree session never decodes; a mixed one decodes once.
    #[test]
    fn decode_is_lazy_and_shared() {
        let program = axpy();
        let mut session = SimSession::new(&program, &[]);
        session.enqueue(
            MachineConfig::conventional(1).with_engine(EngineSel::Tree),
            1 << 24,
        );
        let _ = session.drain();
        assert!(session.decoded.is_none(), "tree-only batch must not decode");
        session.enqueue(MachineConfig::conventional(1), 1 << 24);
        session.enqueue(MachineConfig::conventional(1), 1 << 24);
        let _ = session.drain();
        assert!(session.decoded.is_some());
    }

    /// run_one matches a plain Machine::run.
    #[test]
    fn run_one_matches_machine_run() {
        let program = axpy();
        let cfg = MachineConfig::conventional(1);
        let one = run_one(&program, &[], cfg.clone(), 1 << 24).unwrap();
        let alone = Machine::new(&program, &[], cfg).run(1 << 24).unwrap();
        assert_eq!(one.cycles, alone.cycles);
        assert_eq!(one.mem_digest, alone.mem_digest);
    }
}
