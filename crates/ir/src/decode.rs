//! Pre-decoded micro-op streams.
//!
//! [`decode`] lowers a [`Program`] once into a [`DecodedProgram`]: flat,
//! cache-friendly structure-of-arrays micro-op tables with pre-resolved
//! register slots, folded immediates, pre-evaluated address bases and
//! strides, and per-block metadata. Stepping a thread through the decoded
//! form ([`DecodedProgram::step`]) performs no per-step enum walking over
//! nested operand types, no register-list materialization, and no
//! allocation — the cycle-level simulator's issue loops index straight
//! into the tables.
//!
//! Decoding is purely a change of representation: a decoded step is
//! observably identical to [`Thread::step`](crate::interp::Thread::step)
//! on the original program — same register/memory effects, same
//! [`StepEvent`]s, same [`TraceSink`] callbacks in the same order. The
//! `decode_exactness` integration tests pin this equivalence across every
//! committed scenario.

use crate::inst::{AddrBase, BinOp, Inst, Intrinsic, Operand, SharedTag, Terminator, UnOp};
use crate::interp::{Env, InterpError, StepEvent, Thread};
use crate::memory::REGION_STRIDE;
use crate::program::Program;
use crate::trace::{InstSite, MemAccess, TraceSink};
use crate::types::{BlockId, SegmentId, Ty, Value};

/// Sentinel register slot meaning "none" (no destination / immediate
/// operand / absent address component).
pub const NO_REG: u32 = u32::MAX;

/// A packed operand: a pre-resolved register slot or a folded immediate.
#[derive(Debug, Clone, Copy)]
pub struct POp {
    /// Register slot, or [`NO_REG`] when the operand is an immediate.
    pub reg: u32,
    /// Immediate value, meaningful only when `reg == NO_REG`.
    pub imm: Value,
}

impl POp {
    fn pack(op: Operand) -> POp {
        match op {
            Operand::Reg(r) => POp {
                reg: r.0,
                imm: Value::Int(0),
            },
            Operand::Imm(v) => POp {
                reg: NO_REG,
                imm: v,
            },
        }
    }

    /// Evaluate against a register file.
    #[inline]
    pub fn eval(self, regs: &[Value]) -> Value {
        if self.reg == NO_REG {
            self.imm
        } else {
            regs[self.reg as usize]
        }
    }
}

/// Operation-specific payload of a micro-op.
#[derive(Debug, Clone, Copy)]
pub enum UOpKind {
    /// `dst = value`.
    Const {
        /// Destination slot.
        dst: u32,
        /// Folded constant.
        value: Value,
    },
    /// `dst = op src`.
    Un {
        /// Destination slot.
        dst: u32,
        /// Operation.
        op: UnOp,
        /// Packed operand.
        src: POp,
    },
    /// `dst = lhs op rhs`.
    Bin {
        /// Destination slot.
        dst: u32,
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: POp,
        /// Right operand.
        rhs: POp,
    },
    /// `dst = load ty, [addr]` (address fields live on the [`UOp`]).
    Load {
        /// Destination slot.
        dst: u32,
        /// Access width.
        ty: Ty,
    },
    /// `store ty, src -> [addr]`.
    Store {
        /// Value operand.
        src: POp,
        /// Access width.
        ty: Ty,
    },
    /// `dst = intrinsic(args...)`; arguments live in the shared pool.
    Call {
        /// Destination slot ([`NO_REG`] when none).
        dst: u32,
        /// The intrinsic.
        intrinsic: Intrinsic,
        /// Start of the argument run in
        /// [`DecodedProgram::args_pool`].
        args_start: u32,
        /// Argument count.
        args_len: u32,
    },
    /// `wait seg`.
    Wait {
        /// Segment to synchronize on.
        seg: SegmentId,
    },
    /// `signal seg`.
    Signal {
        /// Segment to signal.
        seg: SegmentId,
    },
    /// No operation.
    Nop,
}

/// One pre-decoded micro-op. Fixed-size and `Copy`: the simulator's
/// issue loops read these straight out of a dense table.
#[derive(Debug, Clone, Copy)]
pub struct UOp {
    /// Operation payload.
    pub kind: UOpKind,
    /// Folded constant address component: static region base plus byte
    /// offset (or just the offset for pointer-based addresses).
    pub addr_const: u64,
    /// Register slot holding the pointer base, or [`NO_REG`].
    pub addr_base_reg: u32,
    /// Register slot holding the scaled index, or [`NO_REG`].
    pub addr_index_reg: u32,
    /// Index scale in bytes.
    pub addr_scale: i64,
    /// Shared-access tag for ring routing, if any.
    pub shared: Option<SharedTag>,
    /// Destination register slot ([`NO_REG`] when the op defines
    /// nothing).
    pub dst: u32,
    /// Start of this op's register-use run in
    /// [`DecodedProgram::uses_pool`] (in
    /// [`Inst::for_each_use`] order, which the simulator's stall
    /// tie-breaking depends on).
    pub uses_start: u32,
    /// Number of registers read.
    pub uses_len: u8,
    /// Whether the parallelizer added this instruction (overhead
    /// attribution).
    pub is_added: bool,
    /// Whether the op touches memory.
    pub is_mem: bool,
}

impl UOp {
    /// Evaluate the pre-folded address expression against a register
    /// file. Identical to
    /// [`Thread::eval_addr`](crate::interp::Thread::eval_addr) on the
    /// original instruction: the region base is folded into
    /// `addr_const` (static region bases are pure arithmetic — see
    /// [`REGION_STRIDE`]), and wrapping addition commutes.
    #[inline]
    pub fn eval_addr(&self, regs: &[Value]) -> u64 {
        let mut a = self.addr_const;
        if self.addr_base_reg != NO_REG {
            a = a.wrapping_add(regs[self.addr_base_reg as usize].as_addr());
        }
        if self.addr_index_reg != NO_REG {
            let idx = regs[self.addr_index_reg as usize]
                .as_int()
                .wrapping_mul(self.addr_scale);
            a = a.wrapping_add(idx as u64);
        }
        a
    }
}

/// Decoded terminator kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DTermKind {
    /// Unconditional jump.
    Jump,
    /// Two-way branch.
    Branch,
    /// Leave the graph.
    Return,
}

/// A decoded terminator.
#[derive(Debug, Clone, Copy)]
pub struct DTerm {
    /// What kind of control transfer this is.
    pub kind: DTermKind,
    /// Branch condition (meaningful for [`DTermKind::Branch`]).
    pub cond: POp,
    /// Taken / jump target.
    pub then_: BlockId,
    /// Fall-through target (meaningful for [`DTermKind::Branch`]).
    pub else_: BlockId,
}

/// Per-block metadata, precomputed so the issue loops never re-derive
/// it: dense instruction range, decoded terminator, and op-class counts.
#[derive(Debug, Clone, Copy)]
pub struct BlockMeta {
    /// First micro-op of the block in [`DecodedProgram::uops`].
    pub start: u32,
    /// Number of micro-ops in the block.
    pub len: u32,
    /// The block's terminator.
    pub term: DTerm,
    /// Number of `wait`/`signal` ops in the block.
    pub sync_ops: u32,
    /// Number of memory-touching ops in the block.
    pub mem_ops: u32,
}

/// A program lowered into flat micro-op tables. Build once with
/// [`decode`], then drive threads with [`DecodedProgram::step`].
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    /// All micro-ops, blocks laid out contiguously in [`BlockId`] order.
    pub uops: Vec<UOp>,
    /// Per-block metadata (indexed by [`BlockId`]).
    pub blocks: Vec<BlockMeta>,
    /// Call-argument pool referenced by [`UOpKind::Call`].
    pub args_pool: Vec<POp>,
    /// Register-use pool referenced by [`UOp::uses_start`].
    pub uses_pool: Vec<u32>,
    /// The original instruction per micro-op (same indexing as `uops`),
    /// kept so trace sinks observe the identical `&Inst` the tree
    /// interpreter would hand them.
    insts: Vec<Inst>,
    /// Register-file size of the source program.
    pub n_regs: u32,
}

/// Base address of static region `index` — the pure-arithmetic layout
/// [`crate::memory::Memory`] guarantees for program-declared regions.
fn static_region_base(index: usize) -> u64 {
    (index as u64 + 1) * REGION_STRIDE
}

/// Lower `program` into its decoded form.
pub fn decode(program: &Program) -> DecodedProgram {
    let mut uops = Vec::with_capacity(program.graph.inst_count());
    let mut insts = Vec::with_capacity(program.graph.inst_count());
    let mut blocks = Vec::with_capacity(program.graph.len());
    let mut args_pool = Vec::new();
    let mut uses_pool = Vec::new();

    for (_, block) in program.graph.iter() {
        let start = uops.len() as u32;
        let mut sync_ops = 0u32;
        let mut mem_ops = 0u32;
        for inst in &block.insts {
            let uses_start = uses_pool.len() as u32;
            inst.for_each_use(|r| uses_pool.push(r.0));
            let uses_len = (uses_pool.len() - uses_start as usize) as u8;

            let mut uop = UOp {
                kind: UOpKind::Nop,
                addr_const: 0,
                addr_base_reg: NO_REG,
                addr_index_reg: NO_REG,
                addr_scale: 0,
                shared: None,
                dst: inst.def().map_or(NO_REG, |r| r.0),
                uses_start,
                uses_len,
                is_added: inst.is_added(),
                is_mem: inst.is_mem(),
            };
            match inst {
                Inst::Const { dst, value } => {
                    uop.kind = UOpKind::Const {
                        dst: dst.0,
                        value: *value,
                    };
                }
                Inst::Un { dst, op, src } => {
                    uop.kind = UOpKind::Un {
                        dst: dst.0,
                        op: *op,
                        src: POp::pack(*src),
                    };
                }
                Inst::Bin { dst, op, lhs, rhs } => {
                    uop.kind = UOpKind::Bin {
                        dst: dst.0,
                        op: *op,
                        lhs: POp::pack(*lhs),
                        rhs: POp::pack(*rhs),
                    };
                }
                Inst::Load {
                    dst,
                    addr,
                    ty,
                    shared,
                    ..
                } => {
                    uop.kind = UOpKind::Load {
                        dst: dst.0,
                        ty: *ty,
                    };
                    uop.shared = *shared;
                    fold_addr(&mut uop, addr);
                    mem_ops += 1;
                }
                Inst::Store {
                    src,
                    addr,
                    ty,
                    shared,
                    ..
                } => {
                    uop.kind = UOpKind::Store {
                        src: POp::pack(*src),
                        ty: *ty,
                    };
                    uop.shared = *shared;
                    fold_addr(&mut uop, addr);
                    mem_ops += 1;
                }
                Inst::Call {
                    dst,
                    intrinsic,
                    args,
                } => {
                    let args_start = args_pool.len() as u32;
                    args_pool.extend(args.iter().map(|a| POp::pack(*a)));
                    uop.kind = UOpKind::Call {
                        dst: dst.map_or(NO_REG, |r| r.0),
                        intrinsic: *intrinsic,
                        args_start,
                        args_len: args.len() as u32,
                    };
                    if uop.is_mem {
                        mem_ops += 1;
                    }
                }
                Inst::Wait { seg } => {
                    uop.kind = UOpKind::Wait { seg: *seg };
                    sync_ops += 1;
                }
                Inst::Signal { seg } => {
                    uop.kind = UOpKind::Signal { seg: *seg };
                    sync_ops += 1;
                }
                Inst::Nop { .. } => {}
            }
            uops.push(uop);
            insts.push(inst.clone());
        }
        let term = match &block.term {
            Terminator::Jump(t) => DTerm {
                kind: DTermKind::Jump,
                cond: POp::pack(Operand::imm(0)),
                then_: *t,
                else_: *t,
            },
            Terminator::Branch { cond, then_, else_ } => DTerm {
                kind: DTermKind::Branch,
                cond: POp::pack(*cond),
                then_: *then_,
                else_: *else_,
            },
            Terminator::Return => DTerm {
                kind: DTermKind::Return,
                cond: POp::pack(Operand::imm(0)),
                then_: BlockId(0),
                else_: BlockId(0),
            },
        };
        blocks.push(BlockMeta {
            start,
            len: uops.len() as u32 - start,
            term,
            sync_ops,
            mem_ops,
        });
    }

    DecodedProgram {
        uops,
        blocks,
        args_pool,
        uses_pool,
        insts,
        n_regs: program.n_regs,
    }
}

fn fold_addr(uop: &mut UOp, addr: &crate::inst::AddrExpr) {
    match addr.base {
        AddrBase::Region(r) => {
            uop.addr_const = static_region_base(r.index()).wrapping_add(addr.offset as u64);
        }
        AddrBase::Reg(r) => {
            uop.addr_const = addr.offset as u64;
            uop.addr_base_reg = r.0;
        }
    }
    if let Some((r, scale)) = addr.index {
        uop.addr_index_reg = r.0;
        uop.addr_scale = scale;
    }
}

impl DecodedProgram {
    /// Metadata of `block`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn block(&self, block: BlockId) -> &BlockMeta {
        &self.blocks[block.index()]
    }

    /// Dense micro-op index of `(block, ip)`.
    #[inline]
    pub fn pc_of(&self, block: BlockId, ip: usize) -> usize {
        self.blocks[block.index()].start as usize + ip
    }

    /// The micro-op at `(block, ip)`, or `None` when the terminator is
    /// next.
    #[inline]
    pub fn uop_at(&self, block: BlockId, ip: usize) -> Option<&UOp> {
        let meta = &self.blocks[block.index()];
        if ip < meta.len as usize {
            Some(&self.uops[meta.start as usize + ip])
        } else {
            None
        }
    }

    /// The original instructions, indexed like [`DecodedProgram::uops`].
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Register slots read by `uop`, in
    /// [`Inst::for_each_use`] order.
    #[inline]
    pub fn uses(&self, uop: &UOp) -> &[u32] {
        let s = uop.uses_start as usize;
        &self.uses_pool[s..s + uop.uses_len as usize]
    }

    /// Execute one micro-op or terminator of `t` — the decoded mirror of
    /// [`Thread::step`]: identical state transitions, events, and sink
    /// callbacks.
    ///
    /// # Errors
    ///
    /// Propagates memory faults, exactly as the tree interpreter does.
    pub fn step<S: TraceSink>(
        &self,
        t: &mut Thread,
        env: &mut Env,
        sink: &mut S,
    ) -> Result<StepEvent, InterpError> {
        if t.finished {
            return Ok(StepEvent::Done);
        }
        let meta = &self.blocks[t.block.index()];
        if t.ip >= meta.len as usize {
            t.dyn_insts += 1;
            let from = t.block;
            let term = &meta.term;
            let to = match term.kind {
                DTermKind::Jump => term.then_,
                DTermKind::Branch => {
                    if term.cond.eval(&t.regs).as_bool() {
                        term.then_
                    } else {
                        term.else_
                    }
                }
                DTermKind::Return => {
                    t.finished = true;
                    return Ok(StepEvent::Done);
                }
            };
            t.block = to;
            t.ip = 0;
            sink.on_flow(from, to);
            return Ok(StepEvent::Flow { from, to });
        }

        let pc = meta.start as usize + t.ip;
        let site = InstSite {
            block: t.block,
            index: t.ip,
        };
        let u = &self.uops[pc];
        t.ip += 1;
        t.dyn_insts += 1;
        sink.on_exec(site, &self.insts[pc]);

        match u.kind {
            UOpKind::Const { dst, value } => t.regs[dst as usize] = value,
            UOpKind::Un { dst, op, src } => {
                t.regs[dst as usize] = op.eval(src.eval(&t.regs));
            }
            UOpKind::Bin { dst, op, lhs, rhs } => {
                t.regs[dst as usize] = op.eval(lhs.eval(&t.regs), rhs.eval(&t.regs));
            }
            UOpKind::Load { dst, ty } => {
                let a = u.eval_addr(&t.regs);
                let v = env.mem.load(a, ty)?;
                sink.on_mem(
                    site,
                    MemAccess {
                        addr: a,
                        len: ty.size() as u32,
                        is_store: false,
                        shared: u.shared,
                    },
                );
                t.regs[dst as usize] = v;
            }
            UOpKind::Store { src, ty } => {
                let a = u.eval_addr(&t.regs);
                let v = src.eval(&t.regs);
                env.mem.store(a, ty, v)?;
                sink.on_mem(
                    site,
                    MemAccess {
                        addr: a,
                        len: ty.size() as u32,
                        is_store: true,
                        shared: u.shared,
                    },
                );
            }
            UOpKind::Call {
                dst,
                intrinsic,
                args_start,
                args_len,
            } => {
                let args = &self.args_pool[args_start as usize..(args_start + args_len) as usize];
                let result = exec_intrinsic(t, site, intrinsic, args, env, sink)?;
                if dst != NO_REG {
                    if let Some(v) = result {
                        t.regs[dst as usize] = v;
                    }
                }
            }
            UOpKind::Wait { .. } | UOpKind::Signal { .. } | UOpKind::Nop => {}
        }
        Ok(StepEvent::Inst(site))
    }
}

/// Decoded mirror of the tree interpreter's intrinsic execution: same
/// arithmetic, same memory effects, same sink events in the same order.
fn exec_intrinsic<S: TraceSink>(
    t: &mut Thread,
    site: InstSite,
    intrinsic: Intrinsic,
    args: &[POp],
    env: &mut Env,
    sink: &mut S,
) -> Result<Option<Value>, InterpError> {
    let arg = |i: usize| -> Value { args[i].eval(&t.regs) };
    match intrinsic {
        Intrinsic::Alloc => {
            let size = arg(0).as_int().max(0) as u64;
            let base = env.mem.alloc(size)?;
            Ok(Some(Value::Int(base as i64)))
        }
        Intrinsic::Rand => Ok(Some(Value::Int(env.rng.next_u64() as i64))),
        Intrinsic::Memcpy => {
            let (dst, src, len) = (arg(0).as_addr(), arg(1).as_addr(), arg(2).as_int() as u64);
            env.mem.copy(dst, src, len)?;
            sink.on_mem(
                site,
                MemAccess {
                    addr: src,
                    len: len as u32,
                    is_store: false,
                    shared: None,
                },
            );
            sink.on_mem(
                site,
                MemAccess {
                    addr: dst,
                    len: len as u32,
                    is_store: true,
                    shared: None,
                },
            );
            Ok(None)
        }
        Intrinsic::Memset => {
            let (dst, byte, len) = (arg(0).as_addr(), arg(1).as_int() as u8, arg(2).as_int());
            env.mem.fill(dst, byte, len as u64)?;
            sink.on_mem(
                site,
                MemAccess {
                    addr: dst,
                    len: len as u32,
                    is_store: true,
                    shared: None,
                },
            );
            Ok(None)
        }
        Intrinsic::PureHash => {
            let x = arg(0).as_int() as u64;
            let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 27;
            Ok(Some(Value::Int(z as i64)))
        }
        Intrinsic::SinApprox => {
            let x = arg(0).as_float();
            Ok(Some(Value::Float(x.sin())))
        }
        Intrinsic::Free => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::AddrExpr;
    use crate::interp::run_with_sink;
    use crate::memory::Memory;
    use crate::trace::CountingSink;
    use crate::types::Ty;

    /// A program exercising every op class: regions, loads/stores with
    /// indexed addresses, calls, loops, branches.
    fn exercise_program() -> Program {
        let mut b = ProgramBuilder::new("decode_exercise");
        let buf = b.region("buf", 4096, Ty::I64);
        let [acc, x, h] = b.regs();
        b.const_i(acc, 0);
        b.counted_loop(0, 64, 1, |b, i| {
            b.store(i, AddrExpr::region_indexed(buf, i, 8, 0), Ty::I64);
            b.load(x, AddrExpr::region_indexed(buf, i, 8, 0), Ty::I64);
            b.call(Some(h), Intrinsic::PureHash, vec![Operand::Reg(x)]);
            b.bin(acc, BinOp::Add, acc, h);
            let c = b.reg();
            b.bin(c, BinOp::And, h, 1i64);
            b.if_else(
                c,
                |b| b.bin(acc, BinOp::Add, acc, 1i64),
                |b| b.bin(acc, BinOp::Sub, acc, 1i64),
            );
        });
        b.finish()
    }

    /// Folded region bases match what the memory image actually maps.
    #[test]
    fn folded_region_bases_match_memory() {
        let p = exercise_program();
        let mem = Memory::for_program(&p);
        for (i, _) in p.regions.iter().enumerate() {
            assert_eq!(
                static_region_base(i),
                mem.base_of(crate::types::RegionId(i as u32))
            );
        }
    }

    /// Stepping the decoded program replays the tree interpreter
    /// exactly: registers, memory digest, dynamic instruction count, and
    /// every sink counter.
    #[test]
    fn decoded_run_matches_tree_run() {
        let p = exercise_program();
        let dec = decode(&p);

        let mut env_tree = Env::for_program(&p);
        let mut sink_tree = CountingSink::default();
        let tree = run_with_sink(&p, &mut env_tree, &mut sink_tree).unwrap();

        let mut env_dec = Env::for_program(&p);
        let mut sink_dec = CountingSink::default();
        let mut t = Thread::at_entry(&p);
        while !t.finished {
            dec.step(&mut t, &mut env_dec, &mut sink_dec).unwrap();
        }

        assert_eq!(t.regs, tree.regs);
        assert_eq!(t.dyn_insts, tree.dyn_insts);
        assert_eq!(env_dec.mem.digest(), env_tree.mem.digest());
        assert_eq!(sink_dec.insts, sink_tree.insts);
        assert_eq!(sink_dec.mem_accesses, sink_tree.mem_accesses);
        assert_eq!(sink_dec.stores, sink_tree.stores);
        assert_eq!(sink_dec.flows, sink_tree.flows);
    }

    /// Decoded addresses equal tree-interpreter addresses on every
    /// shape: region, region+index, pointer, pointer+index.
    #[test]
    fn eval_addr_matches_tree() {
        let mut b = ProgramBuilder::new("addr");
        let r = b.region("a", 1024, Ty::I64);
        let [p, i] = b.regs();
        b.const_i(p, (2 * REGION_STRIDE + 16) as i64);
        b.const_i(i, 3);
        let p_prog = {
            b.load(p, AddrExpr::region(r, 8), Ty::I64);
            b.finish()
        };
        let mem = Memory::for_program(&p_prog);
        let mut t = Thread::at_entry(&p_prog);
        t.regs[p.index()] = Value::Int((REGION_STRIDE + 40) as i64);
        t.regs[i.index()] = Value::Int(5);
        for addr in [
            AddrExpr::region(r, 8),
            AddrExpr::region_indexed(r, i, 8, -16),
            AddrExpr::ptr(p, 24),
            AddrExpr::ptr_indexed(p, i, -4, 7),
        ] {
            let mut uop = UOp {
                kind: UOpKind::Nop,
                addr_const: 0,
                addr_base_reg: NO_REG,
                addr_index_reg: NO_REG,
                addr_scale: 0,
                shared: None,
                dst: NO_REG,
                uses_start: 0,
                uses_len: 0,
                is_added: false,
                is_mem: false,
            };
            fold_addr(&mut uop, &addr);
            assert_eq!(
                uop.eval_addr(&t.regs),
                t.eval_addr(&addr, &mem),
                "address shapes diverge for {addr}"
            );
        }
    }

    /// Use lists preserve `for_each_use` order (the simulator's stall
    /// tie-breaking depends on it).
    #[test]
    fn uses_preserve_order() {
        let mut b = ProgramBuilder::new("uses");
        let r = b.region("a", 64, Ty::I64);
        let [v, idx] = b.regs();
        b.store(v, AddrExpr::region_indexed(r, idx, 8, 0), Ty::I64);
        let p = b.finish();
        let dec = decode(&p);
        let u = dec.uop_at(p.graph.entry, 0).unwrap();
        // Store order: value, then address registers.
        assert_eq!(dec.uses(u), &[v.0, idx.0]);
        let tree_uses: Vec<u32> = p.graph.block(p.graph.entry).insts[0]
            .uses()
            .iter()
            .map(|r| r.0)
            .collect();
        assert_eq!(dec.uses(u), tree_uses.as_slice());
    }

    /// Per-block metadata counts sync and memory ops.
    #[test]
    fn block_metadata_counts() {
        let mut b = ProgramBuilder::new("meta");
        let r = b.region("a", 64, Ty::I64);
        let v = b.reg();
        b.load(v, AddrExpr::region(r, 0), Ty::I64);
        b.store(v, AddrExpr::region(r, 8), Ty::I64);
        let mut p = b.finish();
        let insts = &mut p.graph.blocks[p.graph.entry.index()].insts;
        insts.insert(0, Inst::Wait { seg: SegmentId(0) });
        insts.push(Inst::Signal { seg: SegmentId(0) });
        let dec = decode(&p);
        let meta = dec.block(p.graph.entry);
        assert_eq!(meta.len, 4);
        assert_eq!(meta.sync_ops, 2);
        assert_eq!(meta.mem_ops, 2);
        assert_eq!(meta.term.kind, DTermKind::Return);
    }

    /// Blocks are laid out contiguously and `pc_of` is dense.
    #[test]
    fn dense_layout() {
        let p = exercise_program();
        let dec = decode(&p);
        assert_eq!(dec.uops.len(), p.graph.inst_count());
        assert_eq!(dec.insts().len(), dec.uops.len());
        let mut seen = 0usize;
        for (i, meta) in dec.blocks.iter().enumerate() {
            assert_eq!(meta.start as usize, seen, "block {i} not contiguous");
            seen += meta.len as usize;
            assert_eq!(dec.pc_of(BlockId(i as u32), 0), meta.start as usize);
        }
        assert_eq!(seen, dec.uops.len());
    }

    /// The destination cache mirrors `Inst::def`.
    #[test]
    fn dst_matches_def() {
        let p = exercise_program();
        let dec = decode(&p);
        for (u, inst) in dec.uops.iter().zip(dec.insts()) {
            assert_eq!(
                u.dst,
                inst.def().map_or(NO_REG, |r| r.0),
                "dst cache diverges for {inst}"
            );
        }
    }
}
