//! Per-scenario simulation cache for batched campaigns.
//!
//! A campaign grid simulates one scenario under many overlapping
//! (compiler, machine, fuel) combinations: every experiment re-runs the
//! sequential baseline, most share the HCCv3 compile, and several cells
//! repeat the exact HELIX-RC simulation. A [`SimCache`] — scoped to
//! **one** workload (one generated program) — memoizes compiles,
//! decodes, and successful run reports under deterministic string keys,
//! so a batched campaign performs each distinct unit of work once.
//!
//! Everything cached is deterministic: a hit returns byte-for-byte the
//! value a recompute would produce, which is why cached campaign
//! reports stay byte-identical to uncached ones (pinned by
//! `tests/lane_exactness.rs`). Failed simulations are deliberately
//! *not* cached — [`SimError`](helix_sim::SimError) is not clonable,
//! and failures must stay visible to the resilient retry layer.

use crate::experiment::ExpError;
use helix_hcc::{compile, CompiledProgram, HccConfig};
use helix_ir::decode::DecodedProgram;
use helix_ir::Program;
use helix_sim::{MachinePool, RunReport};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Decode-cache key for the original (uncompiled) program.
pub const SEQ_KEY: &str = "seq";

/// Memoized compile/decode/simulate results for one workload's program.
///
/// Shareable across threads (`Arc<SimCache>`): all maps sit behind
/// mutexes, and a race between two threads computing the same key is
/// benign — both compute the same deterministic value and one insert
/// wins.
#[derive(Debug, Default)]
pub struct SimCache {
    compiled: Mutex<HashMap<String, Arc<CompiledProgram>>>,
    decoded: Mutex<HashMap<String, Arc<DecodedProgram>>>,
    reports: Mutex<HashMap<String, RunReport>>,
    /// Retired machines' allocations, recycled across the scenario's
    /// batches (see [`MachinePool`]).
    pool: Mutex<MachinePool>,
}

/// Poison-tolerant lock: a panicking cell (chaos injection, bugs) must
/// not wedge every other cell of the scenario — cached values are
/// deterministic, so the map is never left in an inconsistent state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl SimCache {
    /// Fresh, empty cache.
    pub fn new() -> SimCache {
        SimCache::default()
    }

    /// Cache key of a compiler configuration (its `Debug` rendering —
    /// deterministic and collision-free over the config space).
    pub fn compile_key(cfg: &HccConfig) -> String {
        format!("{cfg:?}")
    }

    /// Compile `program` under `cfg`, memoized. Compilation is
    /// deterministic, so a concurrent duplicate compute is harmless.
    pub fn compile(
        &self,
        program: &Program,
        cfg: &HccConfig,
    ) -> Result<Arc<CompiledProgram>, ExpError> {
        let key = SimCache::compile_key(cfg);
        if let Some(hit) = lock(&self.compiled).get(&key) {
            return Ok(hit.clone());
        }
        let computed = Arc::new(compile(program, cfg)?);
        Ok(lock(&self.compiled).entry(key).or_insert(computed).clone())
    }

    /// The shared decode of the program identified by `key` (a compile
    /// key, or [`SEQ_KEY`] for the original program), decoding on first
    /// use.
    pub fn decoded(&self, key: &str, program: &Program) -> Arc<DecodedProgram> {
        if let Some(hit) = lock(&self.decoded).get(key) {
            return hit.clone();
        }
        let computed = Arc::new(helix_ir::decode::decode(program));
        lock(&self.decoded)
            .entry(key.to_string())
            .or_insert(computed)
            .clone()
    }

    /// A previously stored run report, if any.
    pub fn report(&self, key: &str) -> Option<RunReport> {
        lock(&self.reports).get(key).cloned()
    }

    /// Store a successful run report under its key.
    pub fn store_report(&self, key: String, report: &RunReport) {
        lock(&self.reports)
            .entry(key)
            .or_insert_with(|| report.clone());
    }

    /// Take the scenario's machine pool for a batch; the caller hands
    /// it back (with its newly retired spares) via
    /// [`SimCache::return_pool`]. Concurrent batches race to take and
    /// the loser sees an empty pool — benign: it just builds machines
    /// from scratch, exactly as if the pool were cold.
    pub fn take_pool(&self) -> MachinePool {
        std::mem::take(&mut *lock(&self.pool))
    }

    /// Merge a batch's pool back for the next batch to reuse.
    pub fn return_pool(&self, pool: MachinePool) {
        lock(&self.pool).merge(pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::{AddrExpr, ProgramBuilder, Ty};

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        let data = b.region("data", 1 << 12, Ty::I64);
        b.counted_loop(0, 64, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
            b.alu_chain(x, 2);
            b.store(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
        });
        b.finish()
    }

    #[test]
    fn compile_is_memoized_per_config() {
        let program = tiny();
        let cache = SimCache::new();
        let a = cache.compile(&program, &HccConfig::v3(4)).unwrap();
        let b = cache.compile(&program, &HccConfig::v3(4)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same config must hit");
        let c = cache.compile(&program, &HccConfig::v2(4)).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different config must miss");
    }

    #[test]
    fn decode_is_memoized_per_key() {
        let program = tiny();
        let cache = SimCache::new();
        let a = cache.decoded(SEQ_KEY, &program);
        let b = cache.decoded(SEQ_KEY, &program);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn reports_round_trip() {
        let program = tiny();
        let cache = SimCache::new();
        assert!(cache.report("k").is_none());
        let report =
            helix_sim::Machine::new(&program, &[], helix_sim::MachineConfig::conventional(1))
                .run(1 << 22)
                .unwrap();
        cache.store_report("k".into(), &report);
        let hit = cache.report("k").unwrap();
        assert_eq!(hit.cycles, report.cycles);
        assert_eq!(hit.mem_digest, report.mem_digest);
    }
}
