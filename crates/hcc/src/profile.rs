//! Training-input profiler.
//!
//! HCCv3 selects loops using profiling rather than a purely analytical
//! model (paper §4): the compiler runs the program on its training input
//! and records, per loop, how many times it was invoked, how many
//! iterations ran, and how much of the program's dynamic instruction
//! count it covers.

use helix_ir::cfg::LoopForest;
use helix_ir::interp::{Env, InterpError, StepEvent, Thread};
use helix_ir::trace::NullSink;
use helix_ir::{BlockId, Program};
use serde::{Deserialize, Serialize};

/// Dynamic statistics for one loop (indexed as in the [`LoopForest`]).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LoopProfile {
    /// Times the loop was entered.
    pub invocations: u64,
    /// Iterations across all invocations.
    pub iterations: u64,
    /// Dynamic instructions executed inside the loop (nested loops
    /// included).
    pub dyn_insts: u64,
}

impl LoopProfile {
    /// Mean iterations per invocation.
    pub fn trip_count(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.iterations as f64 / self.invocations as f64
        }
    }

    /// Mean dynamic instructions per iteration.
    pub fn insts_per_iter(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.dyn_insts as f64 / self.iterations as f64
        }
    }
}

/// Whole-program profile over a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramProfile {
    /// Per-loop statistics, indexed like `LoopForest::loops`.
    pub loops: Vec<LoopProfile>,
    /// Total dynamic instructions executed by the program.
    pub total_insts: u64,
}

impl ProgramProfile {
    /// Fraction of program execution spent in loop `idx`.
    pub fn coverage(&self, idx: usize) -> f64 {
        if self.total_insts == 0 {
            0.0
        } else {
            self.loops[idx].dyn_insts as f64 / self.total_insts as f64
        }
    }
}

/// Run `program` to completion on `env` and profile every loop in
/// `forest`.
///
/// # Errors
///
/// Propagates interpreter faults; `max_steps` bounds the run.
pub fn profile(
    program: &Program,
    forest: &LoopForest,
    env: &mut Env,
    max_steps: u64,
) -> Result<ProgramProfile, InterpError> {
    // Per-block: the chain of loops containing it (indices into forest).
    let n_blocks = program.graph.len();
    let mut chains: Vec<Vec<usize>> = vec![Vec::new(); n_blocks];
    for (li, node) in forest.loops.iter().enumerate() {
        for &b in &node.lp.blocks {
            chains[b.index()].push(li);
        }
    }
    // Header -> loop index.
    let mut header_of: Vec<Option<usize>> = vec![None; n_blocks];
    for (li, node) in forest.loops.iter().enumerate() {
        header_of[node.lp.header.index()] = Some(li);
    }

    let mut out = ProgramProfile {
        loops: vec![LoopProfile::default(); forest.loops.len()],
        total_insts: 0,
    };

    let mut thread = Thread::at_entry(program);
    let mut sink = NullSink;
    let mut steps = 0u64;
    let in_loop = |li: usize, b: BlockId| forest.loops[li].lp.blocks.contains(&b);
    while !thread.finished {
        if steps >= max_steps {
            return Err(InterpError::FuelExhausted);
        }
        steps += 1;
        let before_block = thread.block;
        let event = thread.step(program, env, &mut sink)?;
        out.total_insts += 1;
        for &li in &chains[before_block.index()] {
            out.loops[li].dyn_insts += 1;
        }
        if let StepEvent::Flow { from, to } = event {
            // Loop invocations: flow onto a header from outside the loop.
            if let Some(li) = header_of[to.index()] {
                if !in_loop(li, from) {
                    out.loops[li].invocations += 1;
                }
            }
            // Iterations: a header dispatching into its own body.
            if let Some(li) = header_of[from.index()] {
                if in_loop(li, to) {
                    out.loops[li].iterations += 1;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::{BinOp, ProgramBuilder};

    #[test]
    fn nested_loop_profile() {
        let mut b = ProgramBuilder::new("p");
        let acc = b.reg();
        b.const_i(acc, 0);
        b.counted_loop(0, 4, 1, |b, _i| {
            b.counted_loop(0, 10, 1, |b, _j| {
                b.bin(acc, BinOp::Add, acc, 1i64);
            });
        });
        let p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let mut env = Env::for_program(&p);
        let prof = profile(&p, &forest, &mut env, 1_000_000).unwrap();

        let outer = forest.loops.iter().position(|n| n.depth == 0).unwrap();
        let inner = forest.loops.iter().position(|n| n.depth == 1).unwrap();
        assert_eq!(prof.loops[outer].invocations, 1);
        assert_eq!(prof.loops[outer].iterations, 4);
        assert_eq!(prof.loops[inner].invocations, 4);
        assert_eq!(prof.loops[inner].iterations, 40);
        assert!((prof.loops[inner].trip_count() - 10.0).abs() < 1e-9);
        // The inner loop dominates execution.
        assert!(prof.coverage(inner) > 0.5);
        // Outer coverage includes inner.
        assert!(prof.coverage(outer) >= prof.coverage(inner));
        assert!(prof.loops[inner].insts_per_iter() > 1.0);
    }

    #[test]
    fn empty_program_profile() {
        let p = ProgramBuilder::new("e").finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let mut env = Env::for_program(&p);
        let prof = profile(&p, &forest, &mut env, 1000).unwrap();
        assert!(prof.loops.is_empty());
        assert!(prof.total_insts >= 1);
    }
}
