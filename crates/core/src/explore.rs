//! `helix explore` — property-driven scenario fuzzing with
//! differential oracles.
//!
//! The committed scenarios under `scenarios/` pin every exactness
//! guarantee the simulator makes, but only on ~20 hand-written shapes.
//! Explore drives the same guarantees over the *generated* spec space:
//! a seed-deterministic stream of valid [`ScenarioSpec`]s (see
//! [`helix_workloads::genspec`]) runs at smoke scale through a battery
//! of differential oracles —
//!
//! * **sanity** — no race violations, protocol errors, or simulation
//!   faults on the baseline runs;
//! * **engine-agreement** — tree, decoded, and batched engines produce
//!   identical observables;
//! * **fast-forward** — event-skipping equals the naive cycle loop;
//! * **lane-invariance** — batched session lanes equal standalone runs;
//! * **coverage-sum** — per-nest in-context weights account for the
//!   whole program;
//! * **amdahl-bound** — the *computation* speedup never exceeds the
//!   Amdahl bound implied by compiler coverage. Wall-clock speedup
//!   legitimately beats Amdahl's law on this machine — the ring cache
//!   serves decoupled shared traffic that the sequential baseline pays
//!   full memory-hierarchy latency for (that is the paper's point) —
//!   but the baseline's *issue* work cannot shrink: the parallel run
//!   can never finish in fewer cycles than the sequential computation
//!   cycles put through Amdahl's law at the measured coverage.
//!
//! Alongside the oracles, explore records *frontier* behavior: the
//! minimal `bound_frac` (speedup as a fraction of the Amdahl bound),
//! the maximal communication fraction, and any speedup inversions
//! across compiler generations (HCCv1 beating HCCv2, or HCCv2 beating
//! HELIX-RC). Failures and frontier extremes are auto-shrunk to
//! minimal specs with [`shrink_spec`] and embedded in the report as
//! runnable TOMLs (optionally exported to a directory), so a hit found
//! in CI reproduces locally from the report alone.
//!
//! Everything is deterministic: the same seed + budget produce a
//! byte-identical [`ExploreReport::to_json`], with no wall-clock
//! anywhere in the output.

use crate::error::HelixError;
use crate::experiment::comm_frac;
use crate::report::json_escape;
use crate::resilient::{fnv1a, FNV_OFFSET};
use crate::scenario::{nest_rows, NestRow};
use helix_hcc::{compile, HccConfig};
use helix_sim::{
    simulate, simulate_sequential, Bucket, EngineSel, MachineConfig, RunReport, SimError,
    SimSession,
};
use helix_workloads::spec::{CompilerGen, OpSpec, PhaseSpec};
use helix_workloads::{generate, Scale, ScenarioSpec, SpecGen};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Relative slack allowed before the amdahl-bound oracle fires:
/// speedups may brush the bound (coverage is measured, not exact), but
/// exceeding it by more than 10% means the accounting is broken.
const AMDAHL_TOLERANCE: f64 = 1.10;

/// Absolute slack on the coverage-sum oracle: in-context nest weights
/// plus glue weights must account for the whole program within 2%.
const COVERAGE_SUM_TOLERANCE: f64 = 0.02;

/// Relative margin before a generation speedup pair counts as inverted.
const INVERSION_MARGIN: f64 = 1.02;

/// Predicate evaluations [`shrink_spec`] may spend per finding.
const SHRINK_EVALS: usize = 48;

/// At most this many inversions are shrunk to minimal TOMLs; further
/// hits are still listed (the count is exact), just without a spec.
const SHRUNK_INVERSIONS: usize = 2;

/// Options for one explore run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOptions {
    /// Generator stream seed.
    pub seed: u64,
    /// Number of generated specs to examine.
    pub budget: usize,
    /// Core count every oracle simulation uses.
    pub cores: usize,
    /// Cycle budget per simulation.
    pub fuel: u64,
    /// Directory to export shrunk failure/frontier TOMLs into
    /// (local-only; not representable on the service wire).
    pub export_dir: Option<PathBuf>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            seed: 0,
            budget: 50,
            cores: 4,
            fuel: 1 << 24,
            export_dir: None,
        }
    }
}

/// One oracle of the battery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// Baseline runs are clean: no races, protocol errors, or faults.
    Sanity,
    /// Tree / decoded / batched engines agree on every observable.
    EngineAgreement,
    /// Fast-forward equals the naive cycle loop.
    FastForward,
    /// Session lanes equal standalone runs.
    LaneInvariance,
    /// Per-nest weights sum to the whole program.
    CoverageSum,
    /// Speedup stays within the Amdahl bound implied by coverage.
    AmdahlBound,
}

impl Oracle {
    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            Oracle::Sanity => "sanity",
            Oracle::EngineAgreement => "engine-agreement",
            Oracle::FastForward => "fast-forward",
            Oracle::LaneInvariance => "lane-invariance",
            Oracle::CoverageSum => "coverage-sum",
            Oracle::AmdahlBound => "amdahl-bound",
        }
    }
}

/// A confirmed oracle failure, shrunk to a minimal reproducing spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Generator index of the originating spec.
    pub index: u64,
    /// Name of the originating spec.
    pub spec: String,
    /// Which oracle fired.
    pub oracle: &'static str,
    /// Human-readable divergence description.
    pub detail: String,
    /// Minimal shrunk spec, as runnable TOML.
    pub shrunk_toml: String,
}

/// One frontier extreme (minimal `bound_frac` or maximal `comm_frac`).
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierHit {
    /// Generator index of the originating spec.
    pub index: u64,
    /// Name of the originating spec.
    pub spec: String,
    /// The metric value at the original spec.
    pub value: f64,
    /// Minimal spec still exhibiting the metric, as runnable TOML.
    pub toml: String,
}

/// A speedup inversion across compiler generations.
#[derive(Debug, Clone, PartialEq)]
pub struct InversionHit {
    /// Generator index of the originating spec.
    pub index: u64,
    /// Name of the originating spec.
    pub spec: String,
    /// HCCv1 speedup.
    pub v1: f64,
    /// HCCv2 speedup.
    pub v2: f64,
    /// HELIX-RC (HCCv3 + ring) speedup.
    pub helix_rc: f64,
    /// Minimal spec still inverted, as runnable TOML (empty when the
    /// per-report shrink budget was already spent).
    pub toml: String,
}

/// Frontier extremes discovered by the run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Frontier {
    /// Spec with the lowest speedup/Amdahl-bound ratio.
    pub min_bound_frac: Option<FrontierHit>,
    /// Spec with the highest communication fraction.
    pub max_comm_frac: Option<FrontierHit>,
    /// Generation speedup inversions, in discovery order.
    pub inversions: Vec<InversionHit>,
}

/// Deterministic result of one explore run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReport {
    /// Generator stream seed.
    pub seed: u64,
    /// Requested spec budget.
    pub budget: usize,
    /// Core count used by every oracle simulation.
    pub cores: usize,
    /// Cycle budget per simulation.
    pub fuel: u64,
    /// Specs actually examined (== budget).
    pub specs_run: usize,
    /// Total oracle evaluations across all specs.
    pub oracle_checks: usize,
    /// Oracle failures, shrunk and in discovery order.
    pub failures: Vec<Finding>,
    /// Frontier extremes.
    pub frontier: Frontier,
}

impl ExploreReport {
    /// Render the deterministic JSON document. Same seed + budget =>
    /// byte-identical output: no wall-clock, no environment, fixed
    /// float formatting.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"budget\": {},", self.budget);
        let _ = writeln!(out, "  \"cores\": {},", self.cores);
        let _ = writeln!(out, "  \"fuel\": {},", self.fuel);
        let _ = writeln!(out, "  \"specs_run\": {},", self.specs_run);
        let _ = writeln!(out, "  \"oracle_checks\": {},", self.oracle_checks);
        out.push_str("  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"index\": {}, \"spec\": \"{}\", \"oracle\": \"{}\", \
                 \"detail\": \"{}\", \"shrunk_toml\": \"{}\"}}",
                f.index,
                json_escape(&f.spec),
                f.oracle,
                json_escape(&f.detail),
                json_escape(&f.shrunk_toml)
            );
        }
        out.push_str(if self.failures.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"frontier\": {\n");
        let hit = |out: &mut String, key: &str, h: &Option<FrontierHit>, comma: bool| {
            let tail = if comma { "," } else { "" };
            match h {
                Some(h) => {
                    let _ = writeln!(
                        out,
                        "    \"{key}\": {{\"index\": {}, \"spec\": \"{}\", \
                         \"value\": {:.6}, \"toml\": \"{}\"}}{tail}",
                        h.index,
                        json_escape(&h.spec),
                        h.value,
                        json_escape(&h.toml)
                    );
                }
                None => {
                    let _ = writeln!(out, "    \"{key}\": null{tail}");
                }
            }
        };
        hit(
            &mut out,
            "min_bound_frac",
            &self.frontier.min_bound_frac,
            true,
        );
        hit(
            &mut out,
            "max_comm_frac",
            &self.frontier.max_comm_frac,
            true,
        );
        out.push_str("    \"inversions\": [");
        for (i, inv) in self.frontier.inversions.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "      {{\"index\": {}, \"spec\": \"{}\", \"v1\": {:.4}, \
                 \"v2\": {:.4}, \"helix_rc\": {:.4}, \"toml\": \"{}\"}}",
                inv.index,
                json_escape(&inv.spec),
                inv.v1,
                inv.v2,
                inv.helix_rc,
                json_escape(&inv.toml)
            );
        }
        out.push_str(if self.frontier.inversions.is_empty() {
            "]\n"
        } else {
            "\n    ]\n"
        });
        out.push_str("  }\n}\n");
        out
    }

    /// FNV-1a digest of the JSON document.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(FNV_OFFSET, self.to_json().as_bytes())
    }
}

// ---------------------------------------------------------------------
// Oracles (pure comparison functions, so negative tests can feed them
// deliberately broken inputs without a simulator in the loop)
// ---------------------------------------------------------------------

/// Differential agreement between two run reports over every
/// observable the exactness tests pin: cycles, memory digest, dynamic
/// instructions, iteration bookkeeping, protocol/race state, the full
/// attribution table, and cache statistics.
pub fn oracle_report_agreement(a: &RunReport, b: &RunReport, what: &str) -> Result<(), String> {
    let field = |name: &str, x: u64, y: u64| -> Result<(), String> {
        if x == y {
            Ok(())
        } else {
            Err(format!("{what}: {name} diverge ({x} vs {y})"))
        }
    };
    field("cycles", a.cycles, b.cycles)?;
    field("mem digests", a.mem_digest, b.mem_digest)?;
    field("dynamic instructions", a.dyn_insts, b.dyn_insts)?;
    field("iterations", a.iterations, b.iterations)?;
    field("loop invocations", a.loop_invocations, b.loop_invocations)?;
    if a.protocol_errors != b.protocol_errors {
        return Err(format!("{what}: protocol errors diverge"));
    }
    field(
        "race violation counts",
        a.race_violations.len() as u64,
        b.race_violations.len() as u64,
    )?;
    for bucket in Bucket::ALL {
        field(
            &format!("attribution[{bucket:?}]"),
            a.attribution.total(bucket),
            b.attribution.total(bucket),
        )?;
    }
    field("L1 hits", a.mem_stats.l1_hits, b.mem_stats.l1_hits)?;
    field("L1 misses", a.mem_stats.l1_misses, b.mem_stats.l1_misses)?;
    field(
        "C2C transfers",
        a.mem_stats.c2c_transfers,
        b.mem_stats.c2c_transfers,
    )?;
    Ok(())
}

/// Baseline cleanliness: a report carrying race violations or protocol
/// errors is broken regardless of what any other engine says.
pub fn oracle_sanity(r: &RunReport, what: &str) -> Result<(), String> {
    if !r.race_violations.is_empty() {
        return Err(format!(
            "{what}: {} race violation(s)",
            r.race_violations.len()
        ));
    }
    if !r.protocol_errors.is_empty() {
        return Err(format!(
            "{what}: protocol errors: {}",
            r.protocol_errors.join("; ")
        ));
    }
    Ok(())
}

/// Per-nest accounting: in-context nest weights plus glue weights must
/// sum to 1 (each within [0, 1]) — the differencing that produces them
/// covers the whole composed program exactly once.
pub fn oracle_coverage_sum(rows: &[NestRow]) -> Result<(), String> {
    let mut sum = 0.0;
    for row in rows {
        for (label, v) in [("weight", row.weight), ("glue weight", row.glue_weight)] {
            if !(0.0..=1.0 + COVERAGE_SUM_TOLERANCE).contains(&v) {
                return Err(format!(
                    "nest '{}': {label} {v:.4} outside [0, 1]",
                    row.name
                ));
            }
        }
        sum += row.weight + row.glue_weight;
    }
    if (sum - 1.0).abs() > COVERAGE_SUM_TOLERANCE {
        return Err(format!(
            "nest weights sum to {sum:.4}, expected 1.0 +/- {COVERAGE_SUM_TOLERANCE}"
        ));
    }
    Ok(())
}

/// The Amdahl bound implied by parallel-loop coverage `c` at `cores`.
pub fn amdahl_bound(coverage: f64, cores: usize) -> f64 {
    let c = coverage.clamp(0.0, 1.0);
    1.0 / ((1.0 - c) + c / cores.max(1) as f64)
}

/// Computation speedup may brush the Amdahl bound implied by compiler
/// coverage but never meaningfully exceed it — a violation means cycle
/// accounting or coverage measurement is broken.
///
/// `speedup` must be the *computation* speedup: the sequential run's
/// [`Bucket::Computation`] cycles divided by the parallel wall-clock
/// cycles. Wall-clock speedup is the wrong numerator here — the ring
/// cache legitimately erases memory-stall cycles the sequential
/// baseline pays, so wall speedup can exceed both the Amdahl bound and
/// the core count without anything being broken. Issue work, by
/// contrast, is conserved: the parallel machine still executes every
/// original instruction, so the serial share runs at best as fast as
/// before and the parallel share at best `cores` times faster.
pub fn oracle_amdahl_bound(speedup: f64, coverage: f64, cores: usize) -> Result<(), String> {
    if speedup <= 0.0 || !speedup.is_finite() {
        return Err(format!("speedup {speedup} is not positive and finite"));
    }
    let bound = amdahl_bound(coverage, cores);
    if speedup > bound * AMDAHL_TOLERANCE {
        return Err(format!(
            "computation speedup {speedup:.3}x exceeds the Amdahl bound {bound:.3}x \
             (coverage {coverage:.3}, {cores} cores)"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Per-spec examination
// ---------------------------------------------------------------------

/// Frontier metrics measured for one spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// HELIX-RC speedup over sequential.
    pub speedup: f64,
    /// HCCv3 parallel-loop coverage.
    pub coverage: f64,
    /// `speedup / amdahl_bound(coverage, cores)`.
    pub bound_frac: f64,
    /// Communication fraction of the HELIX-RC run (Fig. 9 definition).
    pub comm_frac: f64,
    /// HCCv1 / HCCv2 speedups on the HELIX-RC machine, when both
    /// generations compiled and ran cleanly.
    pub generations: Option<(f64, f64)>,
}

impl Metrics {
    /// Whether any adjacent generation pair is inverted (earlier
    /// generation faster by more than the margin).
    pub fn inverted(&self) -> bool {
        let Some((v1, v2)) = self.generations else {
            return false;
        };
        v1 > v2 * INVERSION_MARGIN || v2 > self.speedup * INVERSION_MARGIN
    }
}

/// Everything one examined spec produced: oracle verdicts plus
/// frontier metrics (absent when the baseline runs already failed).
#[derive(Debug, Clone)]
pub struct SpecExam {
    /// Failures, in battery order.
    pub failures: Vec<(Oracle, String)>,
    /// Frontier metrics (baseline runs succeeded).
    pub metrics: Option<Metrics>,
    /// Oracle evaluations performed.
    pub checks: usize,
}

/// Run the full oracle battery over one spec at smoke scale.
pub fn examine_spec(spec: &ScenarioSpec, opts: &ExploreOptions) -> SpecExam {
    let mut exam = SpecExam {
        failures: Vec::new(),
        metrics: None,
        checks: 0,
    };
    let cores = opts.cores.max(1);
    let fuel = opts.fuel;
    let fail = |exam: &mut SpecExam, oracle: Oracle, detail: String| {
        exam.failures.push((oracle, detail));
    };

    // Baseline: generate, sequential run, HCCv3 compile, HELIX-RC run.
    exam.checks += 1;
    let program = match generate(spec, Scale::Test) {
        Ok(p) => p,
        Err(e) => {
            fail(&mut exam, Oracle::Sanity, format!("generate: {e}"));
            return exam;
        }
    };
    let seq_cfg = MachineConfig::conventional(cores);
    let seq = match simulate_sequential(&program, &seq_cfg, fuel) {
        Ok(r) => r,
        Err(e) => {
            fail(&mut exam, Oracle::Sanity, format!("sequential run: {e:?}"));
            return exam;
        }
    };
    let compiled = match compile(&program, &HccConfig::v3(cores as u32)) {
        Ok(c) => c,
        Err(e) => {
            fail(&mut exam, Oracle::Sanity, format!("HCCv3 compile: {e:?}"));
            return exam;
        }
    };
    let helix_cfg = MachineConfig::helix_rc(cores);
    let helix = match simulate(&compiled, &helix_cfg, fuel) {
        Ok(r) => r,
        Err(e) => {
            fail(&mut exam, Oracle::Sanity, format!("helix-rc run: {e:?}"));
            return exam;
        }
    };
    for (r, what) in [(&seq, "sequential"), (&helix, "helix-rc")] {
        exam.checks += 1;
        if let Err(d) = oracle_sanity(r, what) {
            fail(&mut exam, Oracle::Sanity, d);
        }
    }

    // Engine agreement: decoded (baseline) vs tree vs batched.
    let tree = simulate(
        &compiled,
        &helix_cfg.clone().with_engine(EngineSel::Tree),
        fuel,
    );
    let batched = simulate(
        &compiled,
        &helix_cfg.clone().with_engine(EngineSel::Batched),
        fuel,
    );
    for (engine, run) in [("tree", &tree), ("batched", &batched)] {
        exam.checks += 1;
        match run {
            Ok(r) => {
                if let Err(d) = oracle_report_agreement(&helix, r, &format!("decoded vs {engine}"))
                {
                    fail(&mut exam, Oracle::EngineAgreement, d);
                }
            }
            Err(e) => fail(
                &mut exam,
                Oracle::EngineAgreement,
                format!("{engine} engine failed where decoded succeeded: {e:?}"),
            ),
        }
    }

    // Fast-forward vs the naive cycle loop.
    exam.checks += 1;
    match simulate(&compiled, &helix_cfg.clone().without_fast_forward(), fuel) {
        Ok(r) => {
            if let Err(d) = oracle_report_agreement(&helix, &r, "fast-forward vs naive") {
                fail(&mut exam, Oracle::FastForward, d);
            }
        }
        Err(e) => fail(
            &mut exam,
            Oracle::FastForward,
            format!("naive loop failed where fast-forward succeeded: {e:?}"),
        ),
    }

    // Lane invariance: a mixed-engine session drain must equal the
    // standalone runs, byte for byte (debug formatting, like the lane
    // exactness pins).
    let expected: [(&str, Result<RunReport, SimError>); 3] = [
        ("decoded", Ok(helix.clone())),
        ("tree", tree),
        ("batched", batched),
    ];
    let mut session = SimSession::new(&compiled.program, &compiled.plans);
    session.enqueue(helix_cfg.clone(), fuel);
    session.enqueue(helix_cfg.clone().with_engine(EngineSel::Tree), fuel);
    session.enqueue(helix_cfg.clone().with_engine(EngineSel::Batched), fuel);
    for (lane, (engine, standalone)) in session.drain().into_iter().zip(expected.iter()) {
        exam.checks += 1;
        let got = format!("{:?}", lane.result);
        let want = format!("{:?}", standalone);
        if got != want {
            fail(
                &mut exam,
                Oracle::LaneInvariance,
                format!(
                    "lane {} ({engine}) diverged from its standalone run",
                    lane.lane
                ),
            );
        }
    }

    // Per-nest coverage accounting (multi-nest specs only).
    if spec.nests.len() >= 2 {
        exam.checks += 1;
        match nest_rows(
            spec,
            Scale::Test,
            cores,
            fuel,
            Some(seq.cycles),
            CompilerGen::V3,
        ) {
            Ok(rows) => {
                if let Err(d) = oracle_coverage_sum(&rows) {
                    fail(&mut exam, Oracle::CoverageSum, d);
                }
            }
            Err(e) => fail(&mut exam, Oracle::CoverageSum, format!("nest rows: {e}")),
        }
    }

    // Amdahl bound over conserved issue work (see
    // [`oracle_amdahl_bound`] for why wall speedup is the wrong
    // numerator).
    let speedup = seq.cycles as f64 / helix.cycles.max(1) as f64;
    let coverage = compiled.stats.coverage;
    exam.checks += 1;
    let comp_speedup =
        seq.attribution.total(Bucket::Computation) as f64 / helix.cycles.max(1) as f64;
    if let Err(d) = oracle_amdahl_bound(comp_speedup, coverage, cores) {
        fail(&mut exam, Oracle::AmdahlBound, d);
    }

    // Frontier metrics: earlier compiler generations on the same
    // machine isolate the compiler axis. A generation that fails to
    // compile or run is a frontier gap, not an oracle failure.
    let generations = (|| {
        let v1 = compile(&program, &HccConfig::v1(cores as u32)).ok()?;
        let v2 = compile(&program, &HccConfig::v2(cores as u32)).ok()?;
        let r1 = simulate(&v1, &helix_cfg, fuel).ok()?;
        let r2 = simulate(&v2, &helix_cfg, fuel).ok()?;
        Some((
            seq.cycles as f64 / r1.cycles.max(1) as f64,
            seq.cycles as f64 / r2.cycles.max(1) as f64,
        ))
    })();
    exam.metrics = Some(Metrics {
        speedup,
        coverage,
        bound_frac: speedup / amdahl_bound(coverage, cores),
        comm_frac: comm_frac(&helix),
        generations,
    });
    exam
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Greedily shrink `spec` while `keep` still accepts the candidate.
///
/// Each round proposes single-step simplifications — halve the problem
/// size, merge nests into one pipeline, zero glue, drop a phase, drop
/// a hot-loop op, flatten a guard into its then-branch, drop the carry
/// chain, shrink doall work — and restarts from the first accepted
/// candidate. Deterministic: candidate order is fixed, `keep` is
/// evaluated at most `max_evals` times, and only candidates passing
/// `ScenarioSpec::validate` are ever offered.
pub fn shrink_spec(
    spec: &ScenarioSpec,
    keep: &mut dyn FnMut(&ScenarioSpec) -> bool,
    max_evals: usize,
) -> ScenarioSpec {
    let mut cur = spec.clone();
    let mut evals = 0;
    'outer: loop {
        for cand in shrink_candidates(&cur) {
            if evals >= max_evals {
                break 'outer;
            }
            if cand.validate().is_err() {
                continue;
            }
            evals += 1;
            if keep(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    cur
}

/// All single-step shrinks of `spec`, most aggressive first.
fn shrink_candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    // Halve the problem size.
    if spec.base_n > 16 {
        let mut s = spec.clone();
        s.base_n /= 2;
        out.push(s);
    }
    // Merge a multi-nest spec into one pipeline (private nest regions
    // are promoted to shared so phase references stay resolvable).
    if !spec.nests.is_empty() {
        let mut s = spec.clone();
        for nest in std::mem::take(&mut s.nests) {
            s.regions.extend(nest.regions);
            s.phases.extend(nest.phases);
        }
        out.push(s);
    }
    // Zero out glue stretches.
    for (i, nest) in spec.nests.iter().enumerate() {
        if nest.glue.eval(1) != 0 {
            let mut s = spec.clone();
            s.nests[i].glue = helix_workloads::spec::CountExpr::fixed(0);
            out.push(s);
        }
    }
    // Drop one phase (top-level or inside a nest), keeping at least one
    // phase overall.
    let total_phases = spec.phases.len() + spec.nests.iter().map(|n| n.phases.len()).sum::<usize>();
    if total_phases > 1 {
        for i in 0..spec.phases.len() {
            let mut s = spec.clone();
            s.phases.remove(i);
            out.push(s);
        }
        for (ni, nest) in spec.nests.iter().enumerate() {
            for i in 0..nest.phases.len() {
                let mut s = spec.clone();
                s.nests[ni].phases.remove(i);
                out.push(s);
            }
        }
    }
    // Hot-loop body edits: drop an op, flatten a guard, drop the carry,
    // shrink doall work.
    let mut edit_sites: Vec<(Option<usize>, usize)> = Vec::new();
    for i in 0..spec.phases.len() {
        edit_sites.push((None, i));
    }
    for (ni, nest) in spec.nests.iter().enumerate() {
        for i in 0..nest.phases.len() {
            edit_sites.push((Some(ni), i));
        }
    }
    for (ni, pi) in edit_sites {
        let phase = match ni {
            None => &spec.phases[pi],
            Some(n) => &spec.nests[n].phases[pi],
        };
        let mut variants: Vec<PhaseSpec> = Vec::new();
        match phase {
            PhaseSpec::HotLoop(hl) => {
                for oi in 0..hl.ops.len() {
                    let mut h = hl.clone();
                    match h.ops[oi].clone() {
                        OpSpec::Guard { then_ops, .. } => {
                            // Flatten the guard into its then-branch.
                            h.ops.splice(oi..=oi, then_ops);
                        }
                        _ => {
                            h.ops.remove(oi);
                        }
                    }
                    variants.push(PhaseSpec::HotLoop(h));
                }
                if hl.carry.is_some() {
                    let mut h = hl.clone();
                    h.carry = None;
                    variants.push(PhaseSpec::HotLoop(h));
                }
            }
            PhaseSpec::Doall {
                input,
                output,
                count,
                work,
            } if *work > 1 => {
                variants.push(PhaseSpec::Doall {
                    input: input.clone(),
                    output: output.clone(),
                    count: *count,
                    work: 1,
                });
            }
            _ => {}
        }
        for v in variants {
            let mut s = spec.clone();
            match ni {
                None => s.phases[pi] = v,
                Some(n) => s.nests[n].phases[pi] = v,
            }
            out.push(s);
        }
    }
    out
}

// ---------------------------------------------------------------------
// The run loop
// ---------------------------------------------------------------------

/// Frontier-only measurement used by the shrinkers: cheaper than the
/// full battery (no engine cross-checks), `None` when the spec no
/// longer builds or runs.
pub fn measure_metrics(spec: &ScenarioSpec, opts: &ExploreOptions) -> Option<Metrics> {
    let exam = examine_spec(spec, opts);
    exam.metrics
}

/// Run `helix explore`: examine `budget` generated specs, shrink every
/// failure and frontier extreme, and assemble the deterministic
/// report. Exports shrunk TOMLs to `opts.export_dir` when set.
pub fn run_explore(opts: &ExploreOptions) -> Result<ExploreReport, HelixError> {
    if opts.budget == 0 {
        return Err(HelixError::usage("explore budget must be >= 1"));
    }
    if opts.cores == 0 {
        return Err(HelixError::usage("explore cores must be >= 1"));
    }
    let gen = SpecGen::new(opts.seed);
    let mut report = ExploreReport {
        seed: opts.seed,
        budget: opts.budget,
        cores: opts.cores,
        fuel: opts.fuel,
        specs_run: 0,
        oracle_checks: 0,
        failures: Vec::new(),
        frontier: Frontier::default(),
    };
    // (index, spec, metrics) of the current frontier extremes.
    let mut min_bound: Option<(u64, ScenarioSpec, f64)> = None;
    let mut max_comm: Option<(u64, ScenarioSpec, f64)> = None;
    let mut inversions: Vec<(u64, ScenarioSpec, Metrics)> = Vec::new();

    for index in 0..opts.budget as u64 {
        let spec = gen.spec(index);
        let exam = examine_spec(&spec, opts);
        report.specs_run += 1;
        report.oracle_checks += exam.checks;
        for (oracle, detail) in &exam.failures {
            let shrunk = shrink_spec(
                &spec,
                &mut |cand| {
                    examine_spec(cand, opts)
                        .failures
                        .iter()
                        .any(|(o, _)| o == oracle)
                },
                SHRINK_EVALS,
            );
            report.failures.push(Finding {
                index,
                spec: spec.name.clone(),
                oracle: oracle.label(),
                detail: detail.clone(),
                shrunk_toml: shrunk.to_toml(),
            });
        }
        if let Some(m) = exam.metrics {
            if min_bound.as_ref().is_none_or(|(_, _, v)| m.bound_frac < *v) {
                min_bound = Some((index, spec.clone(), m.bound_frac));
            }
            if max_comm.as_ref().is_none_or(|(_, _, v)| m.comm_frac > *v) {
                max_comm = Some((index, spec.clone(), m.comm_frac));
            }
            if m.inverted() {
                inversions.push((index, spec, m));
            }
        }
    }

    // Shrink the frontier extremes: the minimal spec must still be at
    // least as extreme as the original hit (small tolerance, so a
    // shrink step can't ratchet the metric away).
    if let Some((index, spec, value)) = min_bound {
        let shrunk = shrink_spec(
            &spec,
            &mut |cand| measure_metrics(cand, opts).is_some_and(|m| m.bound_frac <= value + 0.05),
            SHRINK_EVALS,
        );
        report.frontier.min_bound_frac = Some(FrontierHit {
            index,
            spec: spec.name,
            value,
            toml: shrunk.to_toml(),
        });
    }
    if let Some((index, spec, value)) = max_comm {
        let shrunk = shrink_spec(
            &spec,
            &mut |cand| measure_metrics(cand, opts).is_some_and(|m| m.comm_frac >= value - 0.05),
            SHRINK_EVALS,
        );
        report.frontier.max_comm_frac = Some(FrontierHit {
            index,
            spec: spec.name,
            value,
            toml: shrunk.to_toml(),
        });
    }
    for (i, (index, spec, m)) in inversions.into_iter().enumerate() {
        let toml = if i < SHRUNK_INVERSIONS {
            shrink_spec(
                &spec,
                &mut |cand| measure_metrics(cand, opts).is_some_and(|c| c.inverted()),
                SHRINK_EVALS,
            )
            .to_toml()
        } else {
            String::new()
        };
        let (v1, v2) = m.generations.unwrap_or((0.0, 0.0));
        report.frontier.inversions.push(InversionHit {
            index,
            spec: spec.name,
            v1,
            v2,
            helix_rc: m.speedup,
            toml,
        });
    }

    if let Some(dir) = &opts.export_dir {
        export_keepers(dir, &report)?;
    }
    Ok(report)
}

/// Write every shrunk failure/frontier TOML in `report` into `dir`
/// (created if missing), named by origin so a directory of keepers
/// reads as an index of what explore found.
fn export_keepers(dir: &std::path::Path, report: &ExploreReport) -> Result<(), HelixError> {
    let write = |name: String, text: &str| -> Result<(), HelixError> {
        let path = dir.join(name);
        std::fs::write(&path, text).map_err(|e| HelixError::io(format!("{}: {e}", path.display())))
    };
    std::fs::create_dir_all(dir).map_err(|e| HelixError::io(format!("{}: {e}", dir.display())))?;
    for f in &report.failures {
        write(
            format!("fail-{}-{}.toml", f.index, f.oracle),
            &f.shrunk_toml,
        )?;
    }
    if let Some(h) = &report.frontier.min_bound_frac {
        write("frontier-min-bound-frac.toml".into(), &h.toml)?;
    }
    if let Some(h) = &report.frontier.max_comm_frac {
        write("frontier-max-comm-frac.toml".into(), &h.toml)?;
    }
    for inv in &report.frontier.inversions {
        if !inv.toml.is_empty() {
            write(format!("inversion-{}.toml", inv.index), &inv.toml)?;
        }
    }
    Ok(())
}
