//! Synthetic stand-ins for the six SPEC CINT2000 benchmarks (paper §6.1).
//!
//! Since PR 2 every one of these programs is *data*: the canonical
//! definitions are the declarative specs in [`crate::spec_builtin`]
//! (committed under `scenarios/` as TOML), and the constructors here are
//! thin shims that lower those pinned specs through [`crate::generate`].
//! The workspace tests pin the committed TOML files against the built-in
//! specs and the generated programs' cycle counts, so the two views can
//! never drift apart silently.
//!
//! Each program keeps the shape the paper characterizes: a coarse
//! disjoint-array phase every compiler generation parallelizes
//! (Table 1's HCCv1/v2 coverage) plus small hot loops with genuine
//! loop-carried dependences — short iterations, shared tables,
//! conditional scalar chains — that only HELIX-RC handles profitably.

use crate::common::Scale;
use crate::gen::generate;
use crate::spec_builtin;
use helix_ir::Program;

fn lower(spec: crate::ScenarioSpec, scale: Scale) -> Program {
    generate(&spec, scale).unwrap_or_else(|e| panic!("built-in spec {}: {e}", spec.name))
}

/// 164.gzip — LZ-style hash-chain compression: chain-head replacement
/// (memory-carried) feeding an unpredictable checksum register chain.
/// The paper's lowest CINT speedup (3.0×).
pub fn gzip(scale: Scale) -> Program {
    lower(spec_builtin::gzip_spec(), scale)
}

/// 175.vpr — placement cost update (the paper's Fig. 5 loop): a
/// cache-hostile grid stream plus one shared bounding-box accumulator.
pub fn vpr(scale: Scale) -> Program {
    lower(spec_builtin::vpr_spec(), scale)
}

/// 197.parser — dictionary/link-table lookups across four disjoint
/// shared tables with a guarded carry chain.
pub fn parser(scale: Scale) -> Program {
    lower(spec_builtin::parser_spec(), scale)
}

/// 300.twolf — annealing cell swaps: a serial temperature chain
/// re-invoking a short hot inner loop.
pub fn twolf(scale: Scale) -> Program {
    lower(spec_builtin::twolf_spec(), scale)
}

/// 181.mcf — network-simplex arc relaxation over shared node potentials
/// with an unpredictable best-cost register chain.
pub fn mcf(scale: Scale) -> Program {
    lower(spec_builtin::mcf_spec(), scale)
}

/// 256.bzip2 — block transform: a long private mixing chain feeding a
/// shared frequency table.
pub fn bzip2(scale: Scale) -> Program {
    lower(spec_builtin::bzip2_spec(), scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::interp::{run_to_completion, Env};

    #[test]
    fn all_cint_programs_validate_and_run() {
        for p in [
            gzip(Scale::Test),
            vpr(Scale::Test),
            parser(Scale::Test),
            twolf(Scale::Test),
            mcf(Scale::Test),
            bzip2(Scale::Test),
        ] {
            assert!(p.validate().is_ok(), "{}", p.name);
            let mut env = Env::for_program(&p);
            let t = run_to_completion(&p, &mut env).expect(&p.name);
            assert!(
                t.dyn_insts > 10_000,
                "{} too small: {}",
                p.name,
                t.dyn_insts
            );
        }
    }

    #[test]
    fn programs_are_deterministic() {
        let p1 = gzip(Scale::Test);
        let p2 = gzip(Scale::Test);
        assert_eq!(p1, p2);
        let mut e1 = Env::for_program(&p1);
        let mut e2 = Env::for_program(&p2);
        run_to_completion(&p1, &mut e1).unwrap();
        run_to_completion(&p2, &mut e2).unwrap();
        assert_eq!(e1.mem.digest(), e2.mem.digest());
    }

    /// The shims must map each name onto *its own* spec.
    #[test]
    fn shims_lower_their_namesake_specs() {
        for (name, p) in [
            ("164.gzip", gzip(Scale::Test)),
            ("175.vpr", vpr(Scale::Test)),
            ("197.parser", parser(Scale::Test)),
            ("300.twolf", twolf(Scale::Test)),
            ("181.mcf", mcf(Scale::Test)),
            ("256.bzip2", bzip2(Scale::Test)),
        ] {
            assert_eq!(p.name, name);
        }
    }
}
