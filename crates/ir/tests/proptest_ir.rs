//! Property-based tests for the IR substrate: arbitrary straight-line
//! programs and loop nests must interpret deterministically, and the
//! memory model must behave like a flat byte store.

use helix_ir::interp::{run_to_completion, run_with_sink, Env};
use helix_ir::trace::CountingSink;
use helix_ir::{AddrExpr, BinOp, Program, ProgramBuilder, Ty, UnOp};
use proptest::prelude::*;

/// A tiny recipe language for generating random (but valid) programs.
#[derive(Debug, Clone)]
enum Step {
    ConstI(i64),
    Bin(BinOp, u8, u8),
    Un(UnOp, u8),
    Store(u8, u8),
    Load(u8, u8),
}

const N_REGS: u8 = 8;
const SLOTS: i64 = 32;

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<i64>().prop_map(Step::ConstI),
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Div),
                Just(BinOp::Rem),
                Just(BinOp::And),
                Just(BinOp::Or),
                Just(BinOp::Xor),
                Just(BinOp::Shl),
                Just(BinOp::Shr),
                Just(BinOp::CmpLt),
                Just(BinOp::MinI),
                Just(BinOp::MaxI),
            ],
            0..N_REGS,
            0..N_REGS
        )
            .prop_map(|(op, a, b)| Step::Bin(op, a, b)),
        (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], 0..N_REGS)
            .prop_map(|(op, r)| Step::Un(op, r)),
        (0..N_REGS, 0..SLOTS as u8).prop_map(|(r, s)| Step::Store(r, s)),
        (0..N_REGS, 0..SLOTS as u8).prop_map(|(r, s)| Step::Load(r, s)),
    ]
}

fn build_program(steps: &[Step], loop_trip: u16) -> Program {
    let mut b = ProgramBuilder::new("prop");
    let region = b.region("slots", (SLOTS as u64) * 8, Ty::I64);
    let regs: Vec<_> = (0..N_REGS).map(|_| b.reg()).collect();
    for (i, r) in regs.iter().enumerate() {
        b.const_i(*r, i as i64 + 1);
    }
    b.counted_loop(0, loop_trip as i64, 1, |b, _i| {
        for (k, step) in steps.iter().enumerate() {
            let dst = regs[k % regs.len()];
            match step {
                Step::ConstI(v) => b.const_i(dst, *v),
                Step::Bin(op, a, c) => b.bin(dst, *op, regs[*a as usize], regs[*c as usize]),
                Step::Un(op, r) => b.un(dst, *op, regs[*r as usize]),
                Step::Store(r, s) => b.store(
                    regs[*r as usize],
                    AddrExpr::region(region, *s as i64 * 8),
                    Ty::I64,
                ),
                Step::Load(r, s) => {
                    let _ = r;
                    b.load(dst, AddrExpr::region(region, *s as i64 * 8), Ty::I64)
                }
            }
        }
    });
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interpreting the same program twice produces identical register
    /// files and memory digests (the interpreter is deterministic).
    #[test]
    fn interpretation_is_deterministic(
        steps in prop::collection::vec(step_strategy(), 1..24),
        trip in 1u16..20,
    ) {
        let p = build_program(&steps, trip);
        prop_assert!(p.validate().is_ok());
        let mut e1 = Env::for_program(&p);
        let mut e2 = Env::for_program(&p);
        let t1 = run_to_completion(&p, &mut e1).unwrap();
        let t2 = run_to_completion(&p, &mut e2).unwrap();
        prop_assert_eq!(&t1.regs, &t2.regs);
        prop_assert_eq!(e1.mem.digest(), e2.mem.digest());
    }

    /// The dynamic instruction count scales linearly with the trip count
    /// for straight-line loop bodies.
    #[test]
    fn dyn_inst_count_scales_with_trip(
        steps in prop::collection::vec(step_strategy(), 1..12),
    ) {
        let p1 = build_program(&steps, 5);
        let p2 = build_program(&steps, 10);
        let mut e1 = Env::for_program(&p1);
        let mut e2 = Env::for_program(&p2);
        let t1 = run_to_completion(&p1, &mut e1).unwrap();
        let t2 = run_to_completion(&p2, &mut e2).unwrap();
        // Same prologue; body executes 5 vs 10 times.
        let per_iter = (t2.dyn_insts - t1.dyn_insts) / 5;
        prop_assert!(per_iter >= steps.len() as u64);
    }

    /// A counting sink observes exactly as many memory events as the
    /// program's loads and stores execute.
    #[test]
    fn counting_sink_matches_mem_ops(
        steps in prop::collection::vec(step_strategy(), 1..16),
        trip in 1u16..10,
    ) {
        let p = build_program(&steps, trip);
        let mem_per_iter = steps
            .iter()
            .filter(|s| matches!(s, Step::Store(..) | Step::Load(..)))
            .count() as u64;
        let mut env = Env::for_program(&p);
        let mut sink = CountingSink::default();
        run_with_sink(&p, &mut env, &mut sink).unwrap();
        prop_assert_eq!(sink.mem_accesses, mem_per_iter * trip as u64);
    }

    /// Memory behaves like a flat byte store: the last store to an
    /// address wins regardless of how the address was expressed.
    #[test]
    fn last_store_wins(vals in prop::collection::vec(any::<i64>(), 1..10)) {
        let mut b = ProgramBuilder::new("laststore");
        let region = b.region("s", 64, Ty::I64);
        let r = b.reg();
        for v in &vals {
            b.const_i(r, *v);
            b.store(r, AddrExpr::region(region, 8), Ty::I64);
        }
        let out = b.reg();
        b.load(out, AddrExpr::region(region, 8), Ty::I64);
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let t = run_to_completion(&p, &mut env).unwrap();
        prop_assert_eq!(t.regs[out.index()].as_int(), *vals.last().unwrap());
    }
}
