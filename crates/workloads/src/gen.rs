//! Scenario generation: lower a [`ScenarioSpec`] to a
//! [`helix_ir::Program`] through the shared construction helpers in
//! [`crate::common`].
//!
//! This is the *only* program constructor in the workspace: the SPEC
//! stand-in functions in [`crate::cint`] / [`crate::cfp`] are thin shims
//! over their pinned specs in [`crate::spec_builtin`], and the workspace
//! tests pin the committed `scenarios/*.toml` files to those specs and
//! to their historical cycle counts. Generation is a pure function of
//! `(spec, scale)` — distribution-driven tables are sampled host-side
//! with a seeded [`SplitMix64`](helix_ir::rng::SplitMix64) — so the same
//! spec file always yields the same program and the same report.

use crate::common::{doall_phase, fill_hash, masked, table_update, Scale};
use crate::spec::{
    CarryOp, CarryOperand, HotLoopSpec, OpSpec, PhaseSpec, RegionSpec, ScenarioSpec, SpecError,
    UpdateOp, UpdateValue,
};
use helix_ir::{
    AddrExpr, BinOp, Intrinsic, Operand, Program, ProgramBuilder, Reg, RegionId, Ty, UnOp,
};

/// Block-id range one loop nest occupies in a generated program.
///
/// Boundaries are half-open `[first_block, end_block)` over the
/// program's block ids. Every loop header created while lowering the
/// nest (including its serial glue) lies inside the range; the handful
/// of straight-line instructions a nest prepends (glue seeding,
/// carried-state loads) land in the previous nest's exit block, which
/// is irrelevant for mapping *loops* — the only thing the compiler
/// parallelizes — onto nests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestBoundary {
    /// Nest name from the spec.
    pub name: String,
    /// First block id created for this nest.
    pub first_block: usize,
    /// One past the last block id created for this nest.
    pub end_block: usize,
}

impl NestBoundary {
    /// Whether `block` (a block id index) falls inside this nest.
    pub fn contains(&self, block: usize) -> bool {
        (self.first_block..self.end_block).contains(&block)
    }
}

/// Lower `spec` at `scale` to an executable program.
///
/// Validates first, so a malformed spec fails with a message instead of
/// a builder panic.
///
/// # Examples
///
/// ```
/// use helix_workloads::{builtin_spec, generate, Scale};
///
/// let spec = builtin_spec("175.vpr").unwrap();
/// let program = generate(&spec, Scale::Test)?;
/// assert!(program.validate().is_ok());
/// // Same spec, same scale => bit-identical program.
/// assert_eq!(program, generate(&spec, Scale::Test)?);
/// # Ok::<(), helix_workloads::SpecError>(())
/// ```
pub fn generate(spec: &ScenarioSpec, scale: Scale) -> Result<Program, SpecError> {
    Ok(generate_with_nests(spec, scale)?.0)
}

fn declare_regions(b: &mut ProgramBuilder, regions: &[RegionSpec], n: i64) -> Vec<RegionId> {
    regions
        .iter()
        .map(|r| b.region(r.name.clone(), r.size.eval(n) as u64 * 8, r.elem.ty()))
        .collect()
}

/// Lower `spec` at `scale`, also returning the block-id boundary of
/// every loop nest (empty for classic single-pipeline scenarios).
///
/// Single-pipeline specs take exactly the historical lowering path, so
/// their programs stay bit-identical to what earlier revisions
/// generated. Multi-nest specs lower as: shared regions, every nest's
/// private regions, then per nest — serial glue (seeded from the most
/// recent exported region, or `seed + nest_index`), the optional import
/// store, and the nest's phase pipeline.
pub fn generate_with_nests(
    spec: &ScenarioSpec,
    scale: Scale,
) -> Result<(Program, Vec<NestBoundary>), SpecError> {
    spec.validate()?;
    let n = scale.n(spec.base_n);
    let mut b = ProgramBuilder::new(spec.name.clone());
    let shared_ids = declare_regions(&mut b, &spec.regions, n);

    if spec.nests.is_empty() {
        let cx = Cx {
            regions: spec.regions.iter().collect(),
            ids: shared_ids,
            n,
            seed: spec.seed,
        };
        for phase in &spec.phases {
            cx.lower_phase(&mut b, phase);
        }
        return Ok((b.finish(), Vec::new()));
    }

    let boundaries = lower_multi_nest(&mut b, spec, shared_ids, n, spec.nests.len(), false);
    Ok((b.finish(), boundaries))
}

/// Shared multi-nest lowering: emit nests `0..nests` in full and, when
/// `glue_of_next` is set, the glue/import preamble of nest `nests`
/// without its phases. Returns the boundary of every fully-lowered
/// nest. The builder must already hold the shared region declarations;
/// this declares every nest's private regions (so the memory layout is
/// identical for every cut of the same spec).
fn lower_multi_nest(
    b: &mut ProgramBuilder,
    spec: &ScenarioSpec,
    shared_ids: Vec<RegionId>,
    n: i64,
    nests: usize,
    glue_of_next: bool,
) -> Vec<NestBoundary> {
    let nest_ids: Vec<Vec<RegionId>> = spec
        .nests
        .iter()
        .map(|nest| declare_regions(b, &nest.regions, n))
        .collect();
    let shared_rid = |name: &str| -> RegionId {
        let ix = spec
            .regions
            .iter()
            .position(|r| r.name == name)
            .expect("validated shared region reference");
        shared_ids[ix]
    };

    let mut boundaries = Vec::new();
    // Region whose word 0 carries state out of the most recent
    // exporting nest; the next glue/import consumes it.
    let mut carried: Option<RegionId> = None;
    let upto = if glue_of_next { nests + 1 } else { nests };
    for (k, nest) in spec.nests.iter().enumerate().take(upto) {
        let first_block = b.block_count();
        let glue = nest.glue.eval(n);
        if glue > 0 || nest.import.is_some() {
            let acc = b.reg();
            match carried {
                Some(rid) => b.load(acc, AddrExpr::region(rid, 0), Ty::I64),
                None => b.const_i(acc, spec.seed.wrapping_add(k as i64)),
            }
            if glue > 0 {
                b.serial_glue(acc, glue);
            }
            if let Some(import) = &nest.import {
                b.store(acc, AddrExpr::region(shared_rid(import), 0), Ty::I64);
            }
        }
        if k == nests {
            break; // glue-only cut: the phases of nest `nests` are excluded
        }
        let cx = Cx {
            regions: spec.regions.iter().chain(&nest.regions).collect(),
            ids: shared_ids.iter().chain(&nest_ids[k]).copied().collect(),
            n,
            seed: spec.seed,
        };
        for phase in &nest.phases {
            cx.lower_phase(b, phase);
        }
        boundaries.push(NestBoundary {
            name: nest.name.clone(),
            first_block,
            end_block: b.block_count(),
        });
        if let Some(export) = &nest.export {
            carried = Some(shared_rid(export));
        }
    }
    boundaries
}

/// Lower a *prefix* of a multi-nest spec: nests `0..nests` in full
/// (glue, carried state, phases — exactly as [`generate_with_nests`]
/// emits them), plus, when `glue_of_next` is set, the glue/import
/// preamble of nest `nests` without its phases.
///
/// Because multi-nest lowering only ever appends, a prefix program
/// executes identically to the composed program up to its cut point:
/// simulating successive prefixes sequentially and differencing the
/// cycle counts yields each nest's (and each glue stretch's) exact
/// in-context cost — warm caches included — which is how scenario and
/// campaign reports derive coverage weights.
pub fn generate_prefix(
    spec: &ScenarioSpec,
    scale: Scale,
    nests: usize,
    glue_of_next: bool,
) -> Result<Program, SpecError> {
    spec.validate()?;
    if nests > spec.nests.len() || (glue_of_next && nests == spec.nests.len()) {
        return Err(SpecError::new(format!(
            "{}: prefix of {nests} nests out of range ({} nests)",
            spec.name,
            spec.nests.len()
        )));
    }
    let n = scale.n(spec.base_n);
    let mut b = ProgramBuilder::new(spec.name.clone());
    let shared_ids = declare_regions(&mut b, &spec.regions, n);
    lower_multi_nest(&mut b, spec, shared_ids, n, nests, glue_of_next);
    Ok(b.finish())
}

/// Lower one nest of `spec` in isolation: all regions are declared (so
/// the memory layout matches the composed program) but only nest
/// `nest_ix`'s phases are emitted — no glue, no carried state.
///
/// This is the per-nest measurement program behind the campaign's
/// derived metrics: simulating it sequentially yields the nest's
/// coverage weight, and compiling + simulating it under HELIX-RC yields
/// the per-nest speedup. Carried-in state is absent in isolation
/// (imports read as zero), which perturbs data values but not the
/// loop/phase structure the timing measurement is about.
pub fn generate_nest(
    spec: &ScenarioSpec,
    scale: Scale,
    nest_ix: usize,
) -> Result<Program, SpecError> {
    spec.validate()?;
    let nest = spec.nests.get(nest_ix).ok_or_else(|| {
        SpecError::new(format!(
            "{}: no nest #{nest_ix} ({} nests)",
            spec.name,
            spec.nests.len()
        ))
    })?;
    let n = scale.n(spec.base_n);
    let mut b = ProgramBuilder::new(format!("{}::{}", spec.name, nest.name));
    let shared_ids = declare_regions(&mut b, &spec.regions, n);
    let nest_ids: Vec<Vec<RegionId>> = spec
        .nests
        .iter()
        .map(|nest| declare_regions(&mut b, &nest.regions, n))
        .collect();
    let cx = Cx {
        regions: spec.regions.iter().chain(&nest.regions).collect(),
        ids: shared_ids
            .iter()
            .chain(&nest_ids[nest_ix])
            .copied()
            .collect(),
        n,
        seed: spec.seed,
    };
    for phase in &nest.phases {
        cx.lower_phase(&mut b, phase);
    }
    Ok(b.finish())
}

/// Lowering context: the regions visible to the pipeline being lowered
/// (shared + the current nest's private regions), their resolved ids,
/// the scaled problem size, and the emission seed.
struct Cx<'a> {
    regions: Vec<&'a RegionSpec>,
    ids: Vec<RegionId>,
    n: i64,
    seed: i64,
}

impl Cx<'_> {
    /// Region id by name (the spec is validated, so lookups succeed).
    fn rid(&self, name: &str) -> RegionId {
        let ix = self
            .regions
            .iter()
            .position(|r| r.name == name)
            .expect("validated region reference");
        self.ids[ix]
    }

    /// Word count of a region at the current scale.
    fn words(&self, name: &str) -> i64 {
        let r = self
            .regions
            .iter()
            .find(|r| r.name == name)
            .expect("validated region reference");
        r.size.eval(self.n)
    }

    fn lower_phase(&self, b: &mut ProgramBuilder, phase: &PhaseSpec) {
        match phase {
            PhaseSpec::Fill {
                region,
                count,
                seed,
            } => fill_hash(b, self.rid(region), count.eval(self.n), *seed),
            PhaseSpec::Doall {
                input,
                output,
                count,
                work,
            } => doall_phase(
                b,
                self.rid(input),
                self.rid(output),
                count.eval(self.n),
                *work as usize,
            ),
            PhaseSpec::HotLoop(hl) => self.lower_hot_loop(b, hl),
            PhaseSpec::ArcRelax {
                tail,
                head,
                cost,
                pot,
                out,
                trips,
                nodes,
                chain,
            } => self.lower_arc_relax(
                b,
                self.rid(tail),
                self.rid(head),
                self.rid(cost),
                self.rid(pot),
                self.rid(out),
                trips.eval(self.n),
                *nodes,
                *chain as usize,
            ),
            PhaseSpec::Anneal {
                cells,
                table,
                out,
                outer,
                inner,
                stride,
                slot_mask,
                chain,
                table_mask,
            } => self.lower_anneal(
                b,
                self.rid(cells),
                self.rid(table),
                self.rid(out),
                outer.eval(self.n),
                *inner,
                *stride,
                *slot_mask,
                *chain as usize,
                *table_mask,
            ),
            PhaseSpec::FpElements {
                disp,
                vel,
                elements,
                trip,
            } => self.lower_fp_elements(
                b,
                self.rid(disp),
                self.rid(vel),
                elements.eval(self.n),
                *trip,
            ),
            PhaseSpec::FpNormalize {
                layer,
                pre,
                out,
                count,
                mask,
            } => self.lower_fp_normalize(
                b,
                self.rid(layer),
                self.rid(pre),
                self.rid(out),
                count.eval(self.n),
                *mask,
            ),
            PhaseSpec::FpPairForce {
                atoms,
                forces,
                count,
                chain,
            } => self.lower_fp_pair_force(
                b,
                self.rid(atoms),
                self.rid(forces),
                count.eval(self.n),
                *chain as usize,
            ),
            PhaseSpec::FpSpan {
                frame,
                zbuf,
                count,
                heavy_mask,
                heavy_chain,
            } => self.lower_fp_span(
                b,
                self.rid(frame),
                self.rid(zbuf),
                count.eval(self.n),
                *heavy_mask,
                *heavy_chain as usize,
            ),
        }
    }

    // -----------------------------------------------------------------
    // Generic irregular hot loop
    // -----------------------------------------------------------------

    fn lower_hot_loop(&self, b: &mut ProgramBuilder, hl: &HotLoopSpec) {
        let trips = hl.trips.eval(self.n);
        // Bake distribution tables first: one per var_work op, seeded
        // from the scenario seed and the op's position so two tables in
        // one loop draw independent streams.
        let mut table_ix = 0u64;
        self.bake_var_work_tables(b, &hl.ops, trips, &mut table_ix);
        let carry = hl.carry.as_ref().map(|c| {
            let r = b.reg();
            b.const_i(r, c.init);
            r
        });
        b.counted_loop(0, trips, 1, |b, i| {
            let mut cur = hl.input.as_ref().map(|input| {
                let x = b.reg();
                b.load(
                    x,
                    AddrExpr::region_indexed(self.rid(input), i, 8, 0),
                    Ty::I64,
                );
                x
            });
            self.emit_ops(b, &hl.ops, i, &mut cur, carry);
        });
        if let Some(c) = &hl.carry {
            b.store(
                carry.expect("carry register allocated"),
                AddrExpr::region(self.rid(&c.out), 0),
                Ty::I64,
            );
        }
    }

    fn bake_var_work_tables(
        &self,
        b: &mut ProgramBuilder,
        ops: &[OpSpec],
        trips: i64,
        table_ix: &mut u64,
    ) {
        for op in ops {
            match op {
                OpSpec::VarWork { region, dist } => {
                    let seed = (self.seed as u64)
                        .wrapping_add(table_ix.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    b.init_region_from_dist(self.rid(region), trips, *dist, seed);
                    *table_ix += 1;
                }
                OpSpec::Guard {
                    then_ops, else_ops, ..
                } => {
                    self.bake_var_work_tables(b, then_ops, trips, table_ix);
                    self.bake_var_work_tables(b, else_ops, trips, table_ix);
                }
                _ => {}
            }
        }
    }

    /// Emit the body operations. `cur` is the implicit current-value
    /// register; guard branches receive a copy, so value changes inside
    /// a branch stay local to it (there is no phi to merge them).
    fn emit_ops(
        &self,
        b: &mut ProgramBuilder,
        ops: &[OpSpec],
        i: Reg,
        cur: &mut Option<Reg>,
        carry: Option<Reg>,
    ) {
        let want = |cur: &Option<Reg>| cur.expect("validated: op has a current value");
        for op in ops {
            match op {
                OpSpec::Work { insts } => {
                    b.alu_chain(want(cur), *insts as usize);
                }
                OpSpec::Stream { region, stride } => {
                    let rid = self.rid(region);
                    let mask = self.words(region) - 1;
                    let j = b.reg();
                    b.bin(j, BinOp::Mul, i, *stride);
                    b.bin(j, BinOp::And, j, mask);
                    let x = b.reg();
                    b.load(x, AddrExpr::region_indexed(rid, j, 8, 0), Ty::I64);
                    b.bin(x, BinOp::Add, x, i);
                    b.store(x, AddrExpr::region_indexed(rid, j, 8, 0), Ty::I64);
                    *cur = Some(x);
                }
                OpSpec::Table {
                    region,
                    shift,
                    mask,
                    op,
                    value,
                } => {
                    let x = want(cur);
                    let h = b.reg();
                    if *shift > 0 {
                        b.bin(h, BinOp::Shr, x, *shift);
                        b.bin(h, BinOp::And, h, *mask);
                    } else {
                        masked(b, h, x, *mask);
                    }
                    let binop = match op {
                        UpdateOp::Add => BinOp::Add,
                        UpdateOp::Xor => BinOp::Xor,
                    };
                    match value {
                        UpdateValue::One => table_update(b, self.rid(region), h, 1i64, binop),
                        UpdateValue::Cur => table_update(b, self.rid(region), h, x, binop),
                    }
                }
                OpSpec::ChainHead { region, mask } => {
                    let rid = self.rid(region);
                    let h = b.reg();
                    masked(b, h, want(cur), *mask);
                    let prev = b.reg();
                    b.load(prev, AddrExpr::region_indexed(rid, h, 8, 0), Ty::I64);
                    b.store(i, AddrExpr::region_indexed(rid, h, 8, 0), Ty::I64);
                    *cur = Some(prev);
                }
                OpSpec::Guard {
                    mask,
                    then_ops,
                    else_ops,
                } => {
                    let c = b.reg();
                    b.bin(c, BinOp::And, want(cur), *mask);
                    let mut then_cur = *cur;
                    let mut else_cur = *cur;
                    b.if_else(
                        c,
                        |b| self.emit_ops(b, then_ops, i, &mut then_cur, carry),
                        |b| self.emit_ops(b, else_ops, i, &mut else_cur, carry),
                    );
                }
                OpSpec::Carry { op, operand } => {
                    let reg = carry.expect("validated: loop declares a carry");
                    let rhs: Operand = match operand {
                        CarryOperand::Cur => Operand::Reg(want(cur)),
                        CarryOperand::Imm(v) => Operand::imm(*v),
                    };
                    let binop = match op {
                        CarryOp::Add => BinOp::Add,
                        CarryOp::Xor => BinOp::Xor,
                        CarryOp::Mul => BinOp::Mul,
                        CarryOp::Shl => BinOp::Shl,
                        CarryOp::Min => BinOp::MinI,
                    };
                    b.bin(reg, binop, reg, rhs);
                }
                OpSpec::Bump { region } => {
                    let rid = self.rid(region);
                    let a = b.reg();
                    b.load(a, AddrExpr::region(rid, 0), Ty::I64);
                    b.bin(a, BinOp::Add, a, 1i64);
                    b.store(a, AddrExpr::region(rid, 0), Ty::I64);
                }
                OpSpec::ScaleStore { region, factor } => {
                    let t = b.reg();
                    b.bin(t, BinOp::Mul, want(cur), *factor);
                    b.store(
                        t,
                        AddrExpr::region_indexed(self.rid(region), i, 8, 0),
                        Ty::I64,
                    );
                }
                OpSpec::Store { region } => {
                    b.store(
                        want(cur),
                        AddrExpr::region_indexed(self.rid(region), i, 8, 0),
                        Ty::I64,
                    );
                }
                OpSpec::PtrChase { region, hops, mask } => {
                    let rid = self.rid(region);
                    for _ in 0..*hops {
                        let h = b.reg();
                        b.bin(h, BinOp::And, want(cur), *mask);
                        let p = b.reg();
                        b.load(p, AddrExpr::region_indexed(rid, h, 8, 0), Ty::I64);
                        b.bin(p, BinOp::Add, p, 1i64);
                        b.store(p, AddrExpr::region_indexed(rid, h, 8, 0), Ty::I64);
                        *cur = Some(p);
                    }
                }
                OpSpec::VarWork { region, .. } => {
                    let x = want(cur);
                    let w = b.reg();
                    b.load(
                        w,
                        AddrExpr::region_indexed(self.rid(region), i, 8, 0),
                        Ty::I64,
                    );
                    b.counted_loop(0, Operand::Reg(w), 1, |b, _k| {
                        b.bin(x, BinOp::Add, x, 1i64);
                    });
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Benchmark-shaped templates (mirroring cint.rs / cfp.rs)
    // -----------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn lower_arc_relax(
        &self,
        b: &mut ProgramBuilder,
        tail: RegionId,
        head: RegionId,
        cost: RegionId,
        pot: RegionId,
        out: RegionId,
        trips: i64,
        nodes: i64,
        chain: usize,
    ) {
        let best = b.reg();
        b.const_i(best, i64::MAX);
        b.counted_loop(0, trips, 1, |b, i| {
            let [t, h] = b.regs();
            b.load(t, AddrExpr::region_indexed(tail, i, 8, 0), Ty::I64);
            b.bin(t, BinOp::And, t, nodes - 1);
            b.load(h, AddrExpr::region_indexed(head, i, 8, 0), Ty::I64);
            b.bin(h, BinOp::And, h, nodes - 1);
            let c = b.reg();
            b.load(c, AddrExpr::region_indexed(cost, i, 8, 0), Ty::I64);
            b.alu_chain(c, chain);
            let [pt, red] = b.regs();
            b.load(pt, AddrExpr::region_indexed(pot, t, 8, 0), Ty::I64);
            b.bin(red, BinOp::Add, c, pt);
            let ph = b.reg();
            b.load(ph, AddrExpr::region_indexed(pot, h, 8, 0), Ty::I64);
            b.bin(red, BinOp::Sub, red, ph);
            let neg = b.reg();
            b.bin(neg, BinOp::And, red, 1i64);
            b.if_then(neg, |b| {
                let upd = b.reg();
                b.bin(upd, BinOp::Add, ph, 1i64);
                b.store(upd, AddrExpr::region_indexed(pot, h, 8, 0), Ty::I64);
                b.bin(best, BinOp::MinI, best, red);
                b.bin(best, BinOp::Xor, best, 1i64);
            });
        });
        b.store(best, AddrExpr::region(out, 0), Ty::I64);
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_anneal(
        &self,
        b: &mut ProgramBuilder,
        cells: RegionId,
        table: RegionId,
        out: RegionId,
        outer: i64,
        inner: i64,
        stride: i64,
        slot_mask: i64,
        chain: usize,
        table_mask: i64,
    ) {
        let temperature = b.reg();
        b.const_i(temperature, 1_000_003);
        b.counted_loop(0, outer, 1, |b, t| {
            b.bin(temperature, BinOp::Mul, temperature, 16807i64);
            b.bin(temperature, BinOp::Rem, temperature, 2147483647i64);
            let seed = b.reg();
            b.bin(seed, BinOp::Add, temperature, t);
            b.counted_loop(0, inner, 1, |b, i| {
                let j = b.reg();
                b.bin(j, BinOp::Mul, i, stride);
                b.bin(j, BinOp::Add, j, seed);
                b.bin(j, BinOp::And, j, slot_mask);
                let delta = b.reg();
                b.copy(delta, j);
                b.alu_chain(delta, chain);
                let x = b.reg();
                b.load(x, AddrExpr::region_indexed(cells, j, 8, 0), Ty::I64);
                b.bin(x, BinOp::Add, x, delta);
                b.store(x, AddrExpr::region_indexed(cells, j, 8, 0), Ty::I64);
                let h = b.reg();
                masked(b, h, delta, table_mask);
                table_update(b, table, h, 1i64, BinOp::Add);
            });
        });
        b.store(temperature, AddrExpr::region(out, 0), Ty::I64);
    }

    fn lower_fp_elements(
        &self,
        b: &mut ProgramBuilder,
        disp: RegionId,
        vel: RegionId,
        elements: i64,
        trip: i64,
    ) {
        b.counted_loop(0, trip, 1, |b, i| {
            let f = b.reg();
            b.un(f, UnOp::IntToF, i);
            b.store(f, AddrExpr::region_indexed(disp, i, 8, 0), Ty::F64);
            b.store(f, AddrExpr::region_indexed(vel, i, 8, 0), Ty::F64);
        });
        let phase = b.reg();
        b.const_i(phase, 3);
        b.counted_loop(0, elements, 1, |b, e| {
            b.bin(phase, BinOp::Mul, phase, 31i64);
            b.bin(phase, BinOp::Xor, phase, e);
            b.counted_loop(0, trip, 1, |b, i| {
                let [d, v] = b.regs();
                b.load(d, AddrExpr::region_indexed(disp, i, 8, 0), Ty::F64);
                b.load(v, AddrExpr::region_indexed(vel, i, 8, 0), Ty::F64);
                b.bin(v, BinOp::FMul, v, Operand::fimm(2.0));
                b.bin(d, BinOp::FAdd, d, v);
                let s = b.reg();
                b.call(Some(s), Intrinsic::SinApprox, vec![Operand::Reg(d)]);
                b.bin(d, BinOp::FAdd, d, s);
                let t = b.reg();
                b.bin(t, BinOp::FMul, d, Operand::fimm(0.5));
                b.store(t, AddrExpr::region_indexed(disp, i, 8, 0), Ty::F64);
            });
        });
    }

    fn lower_fp_normalize(
        &self,
        b: &mut ProgramBuilder,
        layer: RegionId,
        pre: RegionId,
        out: RegionId,
        count: i64,
        mask: i64,
    ) {
        b.counted_loop(0, count, 1, |b, i| {
            let [x, f] = b.regs();
            b.load(x, AddrExpr::region_indexed(pre, i, 8, 0), Ty::I64);
            b.bin(x, BinOp::And, x, mask);
            b.un(f, UnOp::IntToF, x);
            b.store(f, AddrExpr::region_indexed(layer, i, 8, 0), Ty::F64);
        });
        let best = b.reg();
        b.const_f(best, f64::NEG_INFINITY);
        b.counted_loop(0, count, 1, |b, i| {
            let v = b.reg();
            b.load(v, AddrExpr::region_indexed(layer, i, 8, 0), Ty::F64);
            b.bin(v, BinOp::FMul, v, Operand::fimm(0.25));
            b.bin(v, BinOp::FAdd, v, Operand::fimm(1.0));
            let s = b.reg();
            b.call(Some(s), Intrinsic::SinApprox, vec![Operand::Reg(v)]);
            let w = b.reg();
            b.bin(w, BinOp::FMul, v, v);
            b.bin(w, BinOp::FAdd, w, s);
            b.store(w, AddrExpr::region_indexed(layer, i, 8, 0), Ty::F64);
            b.bin(best, BinOp::FMax, best, w);
        });
        b.store(best, AddrExpr::region(out, 0), Ty::F64);
    }

    fn lower_fp_pair_force(
        &self,
        b: &mut ProgramBuilder,
        atoms: RegionId,
        forces: RegionId,
        count: i64,
        chain: usize,
    ) {
        b.counted_loop(0, 2 * count, 1, |b, i| {
            let f = b.reg();
            b.un(f, UnOp::IntToF, i);
            b.store(f, AddrExpr::region_indexed(atoms, i, 8, 0), Ty::F64);
        });
        let [tri, stepv] = b.regs();
        b.const_i(tri, 0);
        b.const_i(stepv, 0);
        b.counted_loop(0, count, 1, |b, i| {
            b.bin(tri, BinOp::Add, tri, stepv);
            b.bin(stepv, BinOp::Add, stepv, 1i64);
            let j = b.reg();
            b.bin(j, BinOp::And, tri, 2 * (count - 1));
            let [x, y] = b.regs();
            b.load(x, AddrExpr::region_indexed(atoms, i, 8, 0), Ty::F64);
            b.load(y, AddrExpr::region_indexed(atoms, j, 8, 8), Ty::F64);
            b.bin(x, BinOp::FAdd, x, y);
            let s = b.reg();
            b.call(Some(s), Intrinsic::SinApprox, vec![Operand::Reg(x)]);
            b.bin(x, BinOp::FAdd, x, s);
            b.bin(x, BinOp::FMul, x, Operand::fimm(0.5));
            b.store(x, AddrExpr::region_indexed(forces, i, 8, 0), Ty::F64);
            b.alu_chain(j, chain);
        });
    }

    fn lower_fp_span(
        &self,
        b: &mut ProgramBuilder,
        frame: RegionId,
        zbuf: RegionId,
        count: i64,
        heavy_mask: i64,
        heavy_chain: usize,
    ) {
        b.counted_loop(0, count, 1, |b, i| {
            let z = b.reg();
            b.load(z, AddrExpr::region_indexed(zbuf, i, 8, 0), Ty::I64);
            let f = b.reg();
            b.un(f, UnOp::IntToF, z);
            let heavy = b.reg();
            b.bin(heavy, BinOp::And, i, heavy_mask);
            let is_heavy = b.reg();
            b.bin(is_heavy, BinOp::CmpLt, heavy, 1i64);
            b.if_else(
                is_heavy,
                |b| {
                    let acc = b.reg();
                    b.copy(acc, 0i64);
                    b.alu_chain(acc, heavy_chain);
                    let g = b.reg();
                    b.un(g, UnOp::IntToF, acc);
                    b.bin(g, BinOp::FAdd, g, f);
                    b.store(g, AddrExpr::region_indexed(frame, i, 8, 0), Ty::F64);
                },
                |b| {
                    let s = b.reg();
                    b.call(Some(s), Intrinsic::SinApprox, vec![Operand::Reg(f)]);
                    b.bin(f, BinOp::FMul, f, Operand::fimm(0.125));
                    b.bin(f, BinOp::FAdd, f, s);
                    b.store(f, AddrExpr::region_indexed(frame, i, 8, 0), Ty::F64);
                },
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec_builtin::{builtin_spec, builtin_specs};
    use crate::{cfp, cint};
    use helix_ir::interp::{run_to_completion, Env};

    type Ctor = fn(Scale) -> Program;

    /// The constructor shims in `cint`/`cfp` lower exactly their pinned
    /// specs, at both scales (a mis-wired shim would silently swap
    /// workloads).
    #[test]
    fn spec_programs_match_constructor_shims() {
        let hand: Vec<(&str, Ctor)> = vec![
            ("164.gzip", cint::gzip),
            ("175.vpr", cint::vpr),
            ("197.parser", cint::parser),
            ("300.twolf", cint::twolf),
            ("181.mcf", cint::mcf),
            ("256.bzip2", cint::bzip2),
            ("183.equake", cfp::equake),
            ("179.art", cfp::art),
            ("188.ammp", cfp::ammp),
            ("177.mesa", cfp::mesa),
        ];
        for (name, ctor) in hand {
            let spec = builtin_spec(name).unwrap_or_else(|| panic!("no spec for {name}"));
            for scale in [Scale::Test, Scale::Full] {
                let generated = generate(&spec, scale).expect(name);
                let coded = ctor(scale);
                assert_eq!(generated, coded, "{name} at {scale:?} diverges");
            }
        }
    }

    #[test]
    fn all_builtin_specs_generate_valid_runnable_programs() {
        for spec in builtin_specs() {
            let p = generate(&spec, Scale::Test).expect(&spec.name);
            assert!(p.validate().is_ok(), "{}", spec.name);
            let mut env = Env::for_program(&p);
            let t = run_to_completion(&p, &mut env).expect(&spec.name);
            assert!(
                t.dyn_insts > 5_000,
                "{} too small: {}",
                spec.name,
                t.dyn_insts
            );
        }
    }

    /// Same spec + seed => bit-identical program and execution.
    #[test]
    fn generation_is_deterministic() {
        for name in ["910.bursty", "900.chase", "920.blend"] {
            let spec = builtin_spec(name).unwrap();
            let p1 = generate(&spec, Scale::Test).unwrap();
            let p2 = generate(&spec, Scale::Test).unwrap();
            assert_eq!(p1, p2, "{name}");
            let mut e1 = Env::for_program(&p1);
            let mut e2 = Env::for_program(&p2);
            run_to_completion(&p1, &mut e1).unwrap();
            run_to_completion(&p2, &mut e2).unwrap();
            assert_eq!(e1.mem.digest(), e2.mem.digest(), "{name}");
        }
    }

    /// A different seed must actually change a distribution-driven
    /// program (the work table is baked from the seed).
    #[test]
    fn seed_changes_distribution_tables() {
        let spec = builtin_spec("910.bursty").unwrap();
        let mut reseeded = spec.clone();
        reseeded.seed += 1;
        let p1 = generate(&spec, Scale::Test).unwrap();
        let p2 = generate(&reseeded, Scale::Test).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn generate_rejects_invalid_specs() {
        let mut spec = builtin_spec("175.vpr").unwrap();
        spec.regions.remove(1); // drop "grid"
        assert!(generate(&spec, Scale::Test).is_err());
    }

    /// Single-pipeline specs must report no nest boundaries (they take
    /// the historical lowering path bit for bit).
    #[test]
    fn single_nest_specs_have_no_boundaries() {
        for name in ["175.vpr", "930.zipf"] {
            let spec = builtin_spec(name).unwrap();
            let (program, boundaries) = generate_with_nests(&spec, Scale::Test).unwrap();
            assert!(boundaries.is_empty(), "{name}");
            assert_eq!(program, generate(&spec, Scale::Test).unwrap(), "{name}");
        }
    }

    /// Multi-nest lowering is deterministic and records ordered,
    /// non-overlapping boundaries that cover every loop in the program.
    #[test]
    fn multi_nest_boundaries_are_ordered_and_runnable() {
        for name in ["950.twonest", "970.pipeline", "962.cov_lo"] {
            let spec = builtin_spec(name).unwrap();
            let (p1, b1) = generate_with_nests(&spec, Scale::Test).unwrap();
            let (p2, b2) = generate_with_nests(&spec, Scale::Test).unwrap();
            assert_eq!(p1, p2, "{name}: lowering must be deterministic");
            assert_eq!(b1, b2, "{name}");
            assert_eq!(b1.len(), spec.nests.len(), "{name}");
            for pair in b1.windows(2) {
                assert!(
                    pair[0].end_block <= pair[1].first_block,
                    "{name}: overlapping boundaries {pair:?}"
                );
            }
            assert!(b1.last().unwrap().end_block <= p1.graph.len(), "{name}");
            assert!(p1.validate().is_ok(), "{name}");
            let mut env = Env::for_program(&p1);
            run_to_completion(&p1, &mut env).expect(name);
        }
    }

    /// The carried state is real: with the first nest's export removed,
    /// the downstream glue seeds from a constant instead of the
    /// exported carry, so the imported scalar — and hence the final
    /// memory image — must change, even though every phase is
    /// identical.
    #[test]
    fn exported_state_flows_into_later_nests() {
        let spec = builtin_spec("970.pipeline").unwrap();
        let mut no_export = spec.clone();
        no_export.nests[0].export = None;
        let p = generate(&spec, Scale::Test).unwrap();
        let q = generate(&no_export, Scale::Test).unwrap();
        let mut ep = Env::for_program(&p);
        let mut eq = Env::for_program(&q);
        run_to_completion(&p, &mut ep).unwrap();
        run_to_completion(&q, &mut eq).unwrap();
        assert_ne!(
            ep.mem.digest(),
            eq.mem.digest(),
            "glue must consume the exported value"
        );
    }

    /// Isolated-nest programs are valid, runnable, and share the
    /// composed program's region layout.
    #[test]
    fn isolated_nests_generate_and_run() {
        let spec = builtin_spec("970.pipeline").unwrap();
        let composed = generate(&spec, Scale::Test).unwrap();
        for ix in 0..spec.nests.len() {
            let p = generate_nest(&spec, Scale::Test, ix).unwrap();
            assert_eq!(p.regions, composed.regions, "nest {ix}: layout must match");
            assert!(p.validate().is_ok(), "nest {ix}");
            let mut env = Env::for_program(&p);
            run_to_completion(&p, &mut env).unwrap_or_else(|e| panic!("nest {ix}: {e:?}"));
        }
        assert!(generate_nest(&spec, Scale::Test, 99).is_err());
    }

    /// The full prefix *is* the composed program — the invariant the
    /// in-context weight differencing rests on.
    #[test]
    fn full_prefix_equals_composed_program() {
        for name in ["950.twonest", "970.pipeline"] {
            let spec = builtin_spec(name).unwrap();
            let whole = generate(&spec, Scale::Test).unwrap();
            let prefix = generate_prefix(&spec, Scale::Test, spec.nests.len(), false).unwrap();
            assert_eq!(prefix, whole, "{name}");
            // Shorter prefixes are strictly smaller and still valid.
            let shorter = generate_prefix(&spec, Scale::Test, 1, false).unwrap();
            assert!(shorter.graph.len() < whole.graph.len(), "{name}");
            assert!(shorter.validate().is_ok(), "{name}");
            // Out-of-range cuts are rejected.
            assert!(generate_prefix(&spec, Scale::Test, spec.nests.len(), true).is_err());
            assert!(generate_prefix(&spec, Scale::Test, spec.nests.len() + 1, false).is_err());
        }
    }
}
