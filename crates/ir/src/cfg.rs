//! Control-flow analyses: dominators, postdominators, natural loops, and
//! the loop nesting forest used by the compiler's loop selector.

use crate::inst::{BinOp, Inst, Operand, Terminator};
use crate::program::Graph;
use crate::types::{BlockId, Reg};
use std::collections::{BTreeMap, BTreeSet};

/// Reverse postorder of reachable blocks starting at `entry`.
pub fn reverse_postorder(graph: &Graph, entry: BlockId) -> Vec<BlockId> {
    let mut visited = vec![false; graph.len()];
    let mut postorder = Vec::with_capacity(graph.len());
    // Iterative DFS with an explicit "exit" marker to build postorder.
    let mut stack = vec![(entry, false)];
    while let Some((node, processed)) = stack.pop() {
        if processed {
            postorder.push(node);
            continue;
        }
        if visited[node.index()] {
            continue;
        }
        visited[node.index()] = true;
        stack.push((node, true));
        for succ in graph.block(node).term.successors() {
            if !visited[succ.index()] {
                stack.push((succ, false));
            }
        }
    }
    postorder.reverse();
    postorder
}

/// Dominator tree, computed with the Cooper–Harvey–Kennedy algorithm.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// Immediate dominator per block (`idom[entry] == entry`);
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Reverse postorder index per block (used by intersection).
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Compute dominators of `graph` from `entry`.
    pub fn compute(graph: &Graph, entry: BlockId) -> Dominators {
        let rpo = reverse_postorder(graph, entry);
        let mut rpo_index = vec![usize::MAX; graph.len()];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let preds = graph.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; graph.len()];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], a: BlockId, b: BlockId| -> BlockId {
            let (mut a, mut b) = (a, b);
            while a != b {
                while rpo_index[a.index()] > rpo_index[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while rpo_index[b.index()] > rpo_index[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }

    /// Nearest common dominator of a nonempty set of blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or contains unreachable blocks.
    pub fn nearest_common_dominator(&self, blocks: &[BlockId]) -> BlockId {
        let mut iter = blocks.iter();
        let mut cur = *iter.next().expect("nonempty block set");
        for &b in iter {
            cur = self.common(cur, b);
        }
        cur
    }

    fn common(&self, a: BlockId, b: BlockId) -> BlockId {
        let (mut a, mut b) = (a, b);
        while a != b {
            while self.rpo_index[a.index()] > self.rpo_index[b.index()] {
                a = self.idom[a.index()].expect("reachable");
            }
            while self.rpo_index[b.index()] > self.rpo_index[a.index()] {
                b = self.idom[b.index()].expect("reachable");
            }
        }
        a
    }
}

/// A natural loop discovered in the CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Loop header (single entry point of the natural loop).
    pub header: BlockId,
    /// Latch blocks (sources of back edges to the header).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop body, including header and latches.
    pub blocks: BTreeSet<BlockId>,
    /// Blocks outside the loop that are targets of loop exits.
    pub exits: BTreeSet<BlockId>,
}

impl NaturalLoop {
    /// Whether `b` is inside the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// A node of the loop nesting forest.
#[derive(Debug, Clone)]
pub struct LoopNode {
    /// The loop itself.
    pub lp: NaturalLoop,
    /// Index of the parent loop in the forest's arena (None = top level).
    pub parent: Option<usize>,
    /// Indices of directly nested loops.
    pub children: Vec<usize>,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
}

/// The loop nesting forest of a CFG.
///
/// This is the "loop nesting graph" HCCv3 annotates with profiling results
/// to choose loops to parallelize (paper §4).
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// Arena of loop nodes; children/parent fields index into it.
    pub loops: Vec<LoopNode>,
}

impl LoopForest {
    /// Discover all natural loops and arrange them into a nesting forest.
    pub fn compute(graph: &Graph, entry: BlockId) -> LoopForest {
        let dom = Dominators::compute(graph, entry);
        // Find back edges: n -> h where h dominates n.
        let mut loops_by_header: BTreeMap<BlockId, NaturalLoop> = BTreeMap::new();
        for (id, block) in graph.iter() {
            if !dom.is_reachable(id) {
                continue;
            }
            for succ in block.term.successors() {
                if dom.dominates(succ, id) {
                    let entry_loop = loops_by_header.entry(succ).or_insert(NaturalLoop {
                        header: succ,
                        latches: Vec::new(),
                        blocks: BTreeSet::new(),
                        exits: BTreeSet::new(),
                    });
                    entry_loop.latches.push(id);
                }
            }
        }
        // Fill loop bodies: reverse reachability from latch to header.
        let preds = graph.predecessors();
        for lp in loops_by_header.values_mut() {
            lp.blocks.insert(lp.header);
            let mut stack: Vec<BlockId> = lp.latches.clone();
            while let Some(b) = stack.pop() {
                if lp.blocks.insert(b) {
                    for &p in &preds[b.index()] {
                        stack.push(p);
                    }
                } else if b != lp.header {
                    // already visited
                }
            }
            // In the loop above header insertion prevents walking out of
            // the loop, but latches may need their preds visited even when
            // already inserted via another path; redo a clean pass:
            let mut blocks = BTreeSet::new();
            blocks.insert(lp.header);
            let mut stack: Vec<BlockId> = lp.latches.clone();
            while let Some(b) = stack.pop() {
                if blocks.insert(b) {
                    for &p in &preds[b.index()] {
                        if !blocks.contains(&p) {
                            stack.push(p);
                        }
                    }
                }
            }
            lp.blocks = blocks;
            for &b in &lp.blocks {
                for succ in graph.block(b).term.successors() {
                    if !lp.blocks.contains(&succ) {
                        lp.exits.insert(succ);
                    }
                }
            }
        }

        // Arrange into a forest: parent = smallest strictly-containing loop.
        let loop_list: Vec<NaturalLoop> = loops_by_header.into_values().collect();
        let mut nodes: Vec<LoopNode> = loop_list
            .into_iter()
            .map(|lp| LoopNode {
                lp,
                parent: None,
                children: Vec::new(),
                depth: 0,
            })
            .collect();
        let n = nodes.len();
        for i in 0..n {
            let mut best: Option<usize> = None;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let contains = nodes[j].lp.blocks.contains(&nodes[i].lp.header)
                    && nodes[j].lp.blocks.is_superset(&nodes[i].lp.blocks)
                    && nodes[j].lp.header != nodes[i].lp.header;
                if contains {
                    best = Some(match best {
                        None => j,
                        Some(b) if nodes[j].lp.blocks.len() < nodes[b].lp.blocks.len() => j,
                        Some(b) => b,
                    });
                }
            }
            nodes[i].parent = best;
        }
        for i in 0..n {
            if let Some(p) = nodes[i].parent {
                nodes[p].children.push(i);
            }
        }
        // Depths via repeated relaxation (forest is shallow).
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                let d = match nodes[i].parent {
                    None => 0,
                    Some(p) => nodes[p].depth + 1,
                };
                if nodes[i].depth != d {
                    nodes[i].depth = d;
                    changed = true;
                }
            }
        }
        LoopForest { loops: nodes }
    }

    /// Indices of top-level (outermost) loops.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.loops.len())
            .filter(|&i| self.loops[i].parent.is_none())
            .collect()
    }

    /// The innermost loop containing block `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<usize> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, node)| node.lp.contains(b))
            .max_by_key(|(_, node)| node.depth)
            .map(|(i, _)| i)
    }
}

/// Postdominator computation via dominators of the reversed CFG.
///
/// A virtual exit collects all `Return` blocks (and blocks without
/// successors).
#[derive(Debug, Clone)]
pub struct PostDominators {
    inner: Dominators,
    virtual_exit: BlockId,
}

impl PostDominators {
    /// Compute postdominators of `graph`.
    pub fn compute(graph: &Graph) -> PostDominators {
        // Build reversed graph with a virtual exit appended.
        let n = graph.len();
        let virtual_exit = BlockId(n as u32);
        let mut rev = Graph {
            blocks: Vec::with_capacity(n + 1),
            entry: virtual_exit,
        };
        // successor lists of the reversed graph = predecessors of original,
        // plus: virtual_exit -> every return block.
        let preds = graph.predecessors();
        let mut exit_sources = Vec::new();
        for (id, block) in graph.iter() {
            if block.term.successors().is_empty() {
                exit_sources.push(id);
            }
        }
        // Encode each node's reversed successors as a chain of Jump/Branch
        // terminators; an n-way fanout needs a synthetic representation, so
        // instead we build adjacency directly and run a tiny local
        // dominator computation over it.
        let mut adj: Vec<Vec<BlockId>> = preds;
        adj.push(exit_sources); // virtual exit's "successors"

        let inner = Dominators::compute_from_adj(&adj, virtual_exit, n + 1);
        let _ = &mut rev;
        PostDominators {
            inner,
            virtual_exit,
        }
    }

    /// Whether `a` postdominates `b` (reflexive).
    pub fn postdominates(&self, a: BlockId, b: BlockId) -> bool {
        self.inner.dominates(a, b)
    }

    /// Nearest common postdominator of a set of blocks; `None` if it is
    /// only the virtual exit.
    pub fn nearest_common_postdominator(&self, blocks: &[BlockId]) -> Option<BlockId> {
        if blocks.is_empty() {
            return None;
        }
        let ncd = self.inner.nearest_common_dominator(blocks);
        if ncd == self.virtual_exit {
            None
        } else {
            Some(ncd)
        }
    }

    /// Immediate postdominator of `b`.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        match self.inner.idom(b) {
            Some(d) if d != self.virtual_exit => Some(d),
            _ => None,
        }
    }
}

impl Dominators {
    /// Compute dominators over an explicit adjacency list (used for the
    /// reversed CFG in postdominator computation).
    fn compute_from_adj(adj: &[Vec<BlockId>], entry: BlockId, n: usize) -> Dominators {
        // Reverse postorder over adjacency.
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        let mut stack = vec![(entry, false)];
        while let Some((node, processed)) = stack.pop() {
            if processed {
                postorder.push(node);
                continue;
            }
            if visited[node.index()] {
                continue;
            }
            visited[node.index()] = true;
            stack.push((node, true));
            for &succ in &adj[node.index()] {
                if !visited[succ.index()] {
                    stack.push((succ, false));
                }
            }
        }
        postorder.reverse();
        let rpo = postorder;
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        // Predecessors in adjacency representation.
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (from, succs) in adj.iter().enumerate() {
            for &to in succs {
                preds[to.index()].push(BlockId(from as u32));
            }
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => {
                            let (mut a, mut c) = (cur, p);
                            while a != c {
                                while rpo_index[a.index()] > rpo_index[c.index()] {
                                    a = idom[a.index()].expect("processed");
                                }
                                while rpo_index[c.index()] > rpo_index[a.index()] {
                                    c = idom[c.index()].expect("processed");
                                }
                            }
                            a
                        }
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_index }
    }
}

/// Canonical counted-loop description recognized by the parallelizer.
///
/// The loop iterates `counter = init; while (counter < bound) { body;
/// counter += step; }` with `init`/`bound` loop-invariant, so the trip
/// count is computable at loop entry — the form HELIX distributes
/// round-robin across cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountedLoop {
    /// The loop counter register.
    pub counter: Reg,
    /// Loop-invariant initial value (evaluated at entry).
    pub init: Operand,
    /// Constant increment applied in the latch.
    pub step: i64,
    /// Loop-invariant bound.
    pub bound: Operand,
}

/// Try to recognize `lp` as a canonical counted loop.
///
/// The expected shape (produced by the program builder) is:
/// * the header ends in `br (counter < bound) ? body : exit`, and
/// * some latch block contains `counter = counter + step` with constant
///   step, and
/// * `counter` is written nowhere else in the loop, and
/// * `bound` is a register not written in the loop, or an immediate.
pub fn recognize_counted_loop(graph: &Graph, lp: &NaturalLoop) -> Option<CountedLoop> {
    let header = graph.block(lp.header);
    let (cond_reg, _then, _else) = match &header.term {
        Terminator::Branch {
            cond: Operand::Reg(r),
            then_,
            else_,
        } => (*r, *then_, *else_),
        _ => return None,
    };
    // Find the compare producing the condition in the header.
    let cmp = header.insts.iter().rev().find_map(|inst| match inst {
        Inst::Bin {
            dst,
            op: BinOp::CmpLt | BinOp::CmpLe | BinOp::CmpNe | BinOp::CmpGt | BinOp::CmpGe,
            lhs: Operand::Reg(counter),
            rhs,
        } if *dst == cond_reg => Some((*counter, *rhs)),
        _ => None,
    })?;
    let (counter, bound) = cmp;
    // Find the increment in a latch.
    let mut step: Option<i64> = None;
    for &latch in &lp.latches {
        for inst in &graph.block(latch).insts {
            if let Inst::Bin {
                dst,
                op: BinOp::Add,
                lhs: Operand::Reg(r),
                rhs: Operand::Imm(imm),
            } = inst
            {
                if *dst == counter && *r == counter {
                    step = Some(imm.as_int());
                }
            }
        }
    }
    let step = step?;
    // Counter must not be written anywhere else in the loop.
    let mut writes = 0;
    for &b in &lp.blocks {
        for inst in &graph.block(b).insts {
            if inst.def() == Some(counter) {
                writes += 1;
            }
        }
    }
    if writes != 1 {
        return None;
    }
    // Bound must be loop-invariant.
    if let Operand::Reg(br) = bound {
        for &b in &lp.blocks {
            for inst in &graph.block(b).insts {
                if inst.def() == Some(br) {
                    return None;
                }
            }
        }
    }
    // Init: defined in the (unique) preheader path; reported symbolically
    // as "register value at entry", which the runtime reads when the loop
    // is entered.
    Some(CountedLoop {
        counter,
        init: Operand::Reg(counter),
        step,
        bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::program::{Block, Graph};
    use crate::types::Value;

    /// Build a diamond: 0 -> {1,2} -> 3.
    fn diamond() -> Graph {
        Graph {
            blocks: vec![
                Block {
                    label: None,
                    insts: vec![],
                    term: Terminator::Branch {
                        cond: Operand::Imm(Value::Int(1)),
                        then_: BlockId(1),
                        else_: BlockId(2),
                    },
                },
                Block::jump_to(BlockId(3)),
                Block::jump_to(BlockId(3)),
                Block {
                    label: None,
                    insts: vec![],
                    term: Terminator::Return,
                },
            ],
            entry: BlockId(0),
        }
    }

    #[test]
    fn rpo_starts_at_entry() {
        let g = diamond();
        let rpo = reverse_postorder(&g, g.entry);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
    }

    #[test]
    fn diamond_dominators() {
        let g = diamond();
        let dom = Dominators::compute(&g, g.entry);
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(
            dom.nearest_common_dominator(&[BlockId(1), BlockId(2)]),
            BlockId(0)
        );
    }

    #[test]
    fn diamond_postdominators() {
        let g = diamond();
        let pdom = PostDominators::compute(&g);
        assert!(pdom.postdominates(BlockId(3), BlockId(0)));
        assert!(pdom.postdominates(BlockId(3), BlockId(1)));
        assert!(!pdom.postdominates(BlockId(1), BlockId(0)));
        assert_eq!(
            pdom.nearest_common_postdominator(&[BlockId(1), BlockId(2)]),
            Some(BlockId(3))
        );
        assert_eq!(pdom.ipdom(BlockId(0)), Some(BlockId(3)));
    }

    #[test]
    fn simple_loop_discovered() {
        // Build with the builder: for i in 0..10 { }
        let mut b = ProgramBuilder::new("loop_test");
        b.counted_loop(0, 10, 1, |_b, _i| {});
        let p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        assert_eq!(forest.loops.len(), 1);
        let lp = &forest.loops[0].lp;
        assert!(!lp.latches.is_empty());
        assert!(lp.blocks.len() >= 2);
        assert_eq!(forest.roots(), vec![0]);
    }

    #[test]
    fn nested_loops_form_forest() {
        let mut b = ProgramBuilder::new("nest");
        b.counted_loop(0, 4, 1, |b, _i| {
            b.counted_loop(0, 5, 1, |_b, _j| {});
        });
        let p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        assert_eq!(forest.loops.len(), 2);
        let depths: Vec<usize> = forest.loops.iter().map(|n| n.depth).collect();
        assert!(depths.contains(&0) && depths.contains(&1));
        let inner = forest.loops.iter().position(|n| n.depth == 1).unwrap();
        let outer = forest.loops.iter().position(|n| n.depth == 0).unwrap();
        assert_eq!(forest.loops[inner].parent, Some(outer));
        assert_eq!(forest.loops[outer].children, vec![inner]);
    }

    #[test]
    fn counted_loop_recognized() {
        let mut b = ProgramBuilder::new("counted");
        b.counted_loop(3, 20, 2, |_b, _i| {});
        let p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = &forest.loops[0].lp;
        let counted = recognize_counted_loop(&p.graph, lp).expect("canonical form");
        assert_eq!(counted.step, 2);
    }

    #[test]
    fn loop_with_extra_counter_write_rejected() {
        use crate::inst::BinOp;
        let mut b = ProgramBuilder::new("bad");
        b.counted_loop(0, 10, 1, |b, i| {
            // Write the counter inside the body: no longer canonical.
            b.bin(i, BinOp::Add, i, 0i64);
        });
        let p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = &forest.loops[0].lp;
        assert!(recognize_counted_loop(&p.graph, lp).is_none());
    }

    #[test]
    fn innermost_containing_picks_deepest() {
        let mut b = ProgramBuilder::new("nest2");
        let mut inner_header = None;
        b.counted_loop(0, 4, 1, |b, _i| {
            let h = b.counted_loop(0, 5, 1, |_b, _j| {});
            inner_header = Some(h);
        });
        let p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let inner_idx = forest.innermost_containing(inner_header.unwrap()).unwrap();
        assert_eq!(forest.loops[inner_idx].depth, 1);
    }
}
