//! Register liveness, whole-graph and loop-local.
//!
//! Loop-local liveness (propagating only along edges inside the loop,
//! including the back edge) identifies registers that are *live into the
//! next iteration* — the loop-carried register dependences. Whole-graph
//! liveness identifies values consumed after the loop (live-out), which
//! the predictable-variable analysis classifies separately (paper §2.2,
//! categories iii/iv).

use helix_ir::cfg::NaturalLoop;
use helix_ir::{Graph, Reg};
use std::collections::BTreeSet;

/// Per-block live-in/live-out register sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Live registers at block entry.
    pub live_in: Vec<BTreeSet<Reg>>,
    /// Live registers at block exit.
    pub live_out: Vec<BTreeSet<Reg>>,
}

/// Per-block defs and upward-exposed uses.
fn local_sets(graph: &Graph) -> (Vec<BTreeSet<Reg>>, Vec<BTreeSet<Reg>>) {
    let n = graph.len();
    let mut defs = vec![BTreeSet::new(); n];
    let mut ueuses = vec![BTreeSet::new(); n];
    for (id, block) in graph.iter() {
        let i = id.index();
        for inst in &block.insts {
            for u in inst.uses() {
                if !defs[i].contains(&u) {
                    ueuses[i].insert(u);
                }
            }
            if let Some(d) = inst.def() {
                defs[i].insert(d);
            }
        }
        if let Some(u) = block.term.uses() {
            if !defs[i].contains(&u) {
                ueuses[i].insert(u);
            }
        }
    }
    (defs, ueuses)
}

impl Liveness {
    /// Whole-graph backward liveness.
    pub fn compute(graph: &Graph) -> Liveness {
        Self::compute_filtered(graph, |_, _| true)
    }

    /// Liveness restricted to edges satisfying `edge_ok(from, to)`.
    fn compute_filtered(
        graph: &Graph,
        edge_ok: impl Fn(helix_ir::BlockId, helix_ir::BlockId) -> bool,
    ) -> Liveness {
        let n = graph.len();
        let (defs, ueuses) = local_sets(graph);
        let mut live_in = vec![BTreeSet::new(); n];
        let mut live_out = vec![BTreeSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for (id, block) in graph.iter() {
                let i = id.index();
                let mut out = BTreeSet::new();
                for succ in block.term.successors() {
                    if edge_ok(id, succ) {
                        out.extend(live_in[succ.index()].iter().copied());
                    }
                }
                let mut inp = ueuses[i].clone();
                for r in &out {
                    if !defs[i].contains(r) {
                        inp.insert(*r);
                    }
                }
                if out != live_out[i] || inp != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inp;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Liveness propagated only within a loop (back edge included, exit
    /// edges excluded). `live_in[header]` is then exactly the set of
    /// registers whose value flows from one iteration into the next.
    pub fn loop_local(graph: &Graph, lp: &NaturalLoop) -> Liveness {
        Self::compute_filtered(graph, |from, to| lp.contains(from) && lp.contains(to))
    }
}

/// Registers defined anywhere inside the loop.
pub fn defined_in_loop(graph: &Graph, lp: &NaturalLoop) -> BTreeSet<Reg> {
    let mut out = BTreeSet::new();
    for &b in &lp.blocks {
        for inst in &graph.block(b).insts {
            if let Some(d) = inst.def() {
                out.insert(d);
            }
        }
    }
    out
}

/// Registers defined in the loop whose values may be consumed after the
/// loop exits (live on some exit edge).
pub fn live_out_of_loop(graph: &Graph, lp: &NaturalLoop) -> BTreeSet<Reg> {
    let whole = Liveness::compute(graph);
    let defined = defined_in_loop(graph, lp);
    let mut out = BTreeSet::new();
    for &exit in &lp.exits {
        for r in &whole.live_in[exit.index()] {
            if defined.contains(r) {
                out.insert(*r);
            }
        }
    }
    out
}

/// Loop-carried registers: live into the next iteration *and* defined in
/// the loop.
pub fn loop_carried_regs(graph: &Graph, lp: &NaturalLoop) -> BTreeSet<Reg> {
    let local = Liveness::loop_local(graph, lp);
    let defined = defined_in_loop(graph, lp);
    local.live_in[lp.header.index()]
        .iter()
        .copied()
        .filter(|r| defined.contains(r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::cfg::LoopForest;
    use helix_ir::{AddrExpr, BinOp, Program, ProgramBuilder, Ty};

    fn one_loop(p: &Program) -> NaturalLoop {
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        assert_eq!(forest.loops.len(), 1);
        forest.loops[0].lp.clone()
    }

    #[test]
    fn accumulator_is_loop_carried() {
        let mut b = ProgramBuilder::new("acc");
        let acc = b.reg();
        b.const_i(acc, 0);
        b.counted_loop(0, 10, 1, |b, i| {
            b.bin(acc, BinOp::Add, acc, i);
        });
        let p = b.finish();
        let lp = one_loop(&p);
        let carried = loop_carried_regs(&p.graph, &lp);
        assert!(carried.contains(&acc));
    }

    #[test]
    fn counter_is_loop_carried() {
        let mut b = ProgramBuilder::new("cnt");
        let mut counter = None;
        b.counted_loop(0, 10, 1, |_b, i| {
            counter = Some(i);
        });
        let p = b.finish();
        let lp = one_loop(&p);
        let carried = loop_carried_regs(&p.graph, &lp);
        assert!(carried.contains(&counter.unwrap()));
    }

    #[test]
    fn freshly_set_register_is_not_carried() {
        let mut b = ProgramBuilder::new("fresh");
        let tmp = b.reg();
        b.const_i(tmp, 0);
        b.counted_loop(0, 10, 1, |b, i| {
            // tmp is set before use every iteration.
            b.copy(tmp, i);
            b.bin(tmp, BinOp::Add, tmp, 1i64);
        });
        let p = b.finish();
        let lp = one_loop(&p);
        let carried = loop_carried_regs(&p.graph, &lp);
        assert!(!carried.contains(&tmp));
    }

    #[test]
    fn live_out_detected() {
        let mut b = ProgramBuilder::new("lo");
        let r = b.region("out", 64, Ty::I64);
        let tmp = b.reg();
        b.const_i(tmp, 0);
        b.counted_loop(0, 10, 1, |b, i| {
            b.copy(tmp, i); // set every iteration, used after loop
        });
        b.store(tmp, AddrExpr::region(r, 0), Ty::I64);
        let p = b.finish();
        let lp = one_loop(&p);
        assert!(live_out_of_loop(&p.graph, &lp).contains(&tmp));
        // ... but not loop-carried.
        assert!(!loop_carried_regs(&p.graph, &lp).contains(&tmp));
    }

    #[test]
    fn dead_temp_is_neither() {
        let mut b = ProgramBuilder::new("dead");
        let tmp = b.reg();
        b.const_i(tmp, 0);
        b.counted_loop(0, 10, 1, |b, i| {
            b.copy(tmp, i);
        });
        let p = b.finish();
        let lp = one_loop(&p);
        assert!(!loop_carried_regs(&p.graph, &lp).contains(&tmp));
        assert!(live_out_of_loop(&p.graph, &lp).is_empty());
    }

    #[test]
    fn conditional_use_before_def_is_carried() {
        let mut b = ProgramBuilder::new("cond");
        let [x, c] = b.regs();
        b.const_i(x, 0);
        b.counted_loop(0, 10, 1, |b, i| {
            b.bin(c, BinOp::And, i, 1i64);
            b.if_then(c, |b| {
                b.bin(x, BinOp::Add, x, 1i64); // reads previous iteration's x
            });
        });
        let p = b.finish();
        let lp = one_loop(&p);
        assert!(loop_carried_regs(&p.graph, &lp).contains(&x));
    }
}
