//! Experiment runners: each function reproduces one measurement setup of
//! the paper's evaluation (§6), returning structured results the figure
//! harness renders.

use helix_hcc::{compile, CompiledProgram, HccConfig};
use helix_ring_cache::{ArrayConfig, RingConfig};
use helix_sim::{
    simulate, simulate_sequential, Bucket, CoreModel, DecoupleConfig, MachineConfig, RunReport,
    SyncModel,
};
use helix_workloads::Workload;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Default cycle budget for experiment simulations.
pub const FUEL: u64 = 1 << 27;

/// Error from an experiment run.
///
/// Since the API redesign this is an alias for the structured
/// [`HelixError`](crate::error::HelixError) (kind + context), so
/// `format!(...).into()` construction sites and `?` over
/// compile/simulate errors keep working while consumers gain a
/// classified [`kind`](crate::error::HelixError::kind) with a stable
/// machine-readable code.
pub type ExpError = crate::error::HelixError;

/// Compile `w` for each compiler generation at `cores` (one compile per
/// worker thread; the compilations are independent).
pub fn compile_all(w: &Workload, cores: u32) -> Result<[CompiledProgram; 3], ExpError> {
    let configs = [
        HccConfig::v1(cores),
        HccConfig::v2(cores),
        HccConfig::v3(cores),
    ];
    let mut compiled: Vec<CompiledProgram> = configs
        .par_iter()
        .map(|cfg| compile(&w.program, cfg))
        .collect::<Result<Vec<_>, _>>()?;
    let v3 = compiled.pop().expect("three compiles");
    let v2 = compiled.pop().expect("three compiles");
    let v1 = compiled.pop().expect("three compiles");
    Ok([v1, v2, v3])
}

/// Sequential baseline cycles of the *original* program on the given
/// core model.
pub fn baseline_cycles(w: &Workload, cfg: &MachineConfig) -> Result<u64, ExpError> {
    baseline_cycles_with_fuel(w, cfg, FUEL)
}

/// [`baseline_cycles`] under an explicit cycle budget.
pub fn baseline_cycles_with_fuel(
    w: &Workload,
    cfg: &MachineConfig,
    fuel: u64,
) -> Result<u64, ExpError> {
    Ok(simulate_sequential(&w.program, cfg, fuel)?.cycles)
}

/// Assert a parallel run upheld all compiler guarantees.
pub fn check(report: &RunReport, what: &str) -> Result<(), ExpError> {
    use crate::error::ErrorKind;
    if !report.race_violations.is_empty() {
        return Err(ExpError::new(
            ErrorKind::Sim,
            format!("{what}: race violations: {:?}", report.race_violations),
        ));
    }
    if !report.protocol_errors.is_empty() {
        return Err(ExpError::new(
            ErrorKind::Sim,
            format!("{what}: protocol errors: {:?}", report.protocol_errors),
        ));
    }
    Ok(())
}

/// One benchmark's speedups under the three compiler generations
/// (Fig. 1 uses v1/v2, Fig. 7 uses v2/HELIX-RC).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompilerGenerations {
    /// Benchmark name.
    pub name: String,
    /// HCCv1 on the conventional machine.
    pub v1: f64,
    /// HCCv2 on the conventional machine.
    pub v2: f64,
    /// HCCv3 + ring cache (HELIX-RC).
    pub helix_rc: f64,
    /// Published HELIX-RC speedup, for reference.
    pub paper_helix: f64,
    /// Sequential baseline cycles (the denominator of every speedup).
    pub seq_cycles: u64,
    /// Cycles of the HELIX-RC run.
    pub helix_cycles: u64,
}

/// Run the headline comparison for one workload at `cores`. The
/// sequential baseline and the three generation runs are independent
/// simulations and execute in parallel.
pub fn compiler_generations(w: &Workload, cores: usize) -> Result<CompilerGenerations, ExpError> {
    compiler_generations_with_fuel(w, cores, FUEL)
}

/// [`compiler_generations`] under an explicit cycle budget.
pub fn compiler_generations_with_fuel(
    w: &Workload,
    cores: usize,
    fuel: u64,
) -> Result<CompilerGenerations, ExpError> {
    let [v1, v2, v3] = compile_all(w, cores as u32)?;
    let conventional = MachineConfig::conventional(cores);
    let helix = MachineConfig::helix_rc(cores);

    let jobs: [(Option<&CompiledProgram>, &MachineConfig); 4] = [
        (None, &conventional), // sequential baseline
        (Some(&v1), &conventional),
        (Some(&v2), &conventional),
        (Some(&v3), &helix),
    ];
    let reports: Vec<RunReport> = jobs
        .par_iter()
        .map(|(compiled, cfg)| -> Result<RunReport, ExpError> {
            let rep = match compiled {
                None => simulate_sequential(&w.program, cfg, fuel)?,
                Some(c) => {
                    let rep = simulate(c, cfg, fuel)?;
                    check(&rep, &w.name)?;
                    rep
                }
            };
            Ok(rep)
        })
        .collect::<Result<Vec<_>, _>>()?;

    let seq = reports[0].cycles;
    Ok(CompilerGenerations {
        name: w.name.to_string(),
        v1: seq as f64 / reports[1].cycles.max(1) as f64,
        v2: seq as f64 / reports[2].cycles.max(1) as f64,
        helix_rc: seq as f64 / reports[3].cycles.max(1) as f64,
        paper_helix: w.paper.helix_speedup,
        seq_cycles: seq,
        helix_cycles: reports[3].cycles,
    })
}

/// The Fig. 8 decoupling lattice, in the paper's bar order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatticePoint {
    /// HCCv2 on conventional hardware (nothing decoupled).
    Hccv2,
    /// Register-carried traffic decoupled only.
    Reg,
    /// Registers + synchronization decoupled.
    RegSynch,
    /// Registers + memory decoupled (synchronization still coupled).
    RegMem,
    /// Everything decoupled (HELIX-RC).
    All,
}

impl LatticePoint {
    /// All points in the paper's order.
    pub const ALL: [LatticePoint; 5] = [
        LatticePoint::Hccv2,
        LatticePoint::Reg,
        LatticePoint::RegSynch,
        LatticePoint::RegMem,
        LatticePoint::All,
    ];

    /// Bar label from Fig. 8.
    pub fn label(self) -> &'static str {
        match self {
            LatticePoint::Hccv2 => "HCCv2",
            LatticePoint::Reg => "decoupled reg. communication",
            LatticePoint::RegSynch => "decoupled reg. comm. and synch.",
            LatticePoint::RegMem => "decoupled reg. and memory comm.",
            LatticePoint::All => "HELIX-RC (decoupled all communication)",
        }
    }

    /// Machine configuration for this point.
    pub fn machine(self, cores: usize) -> MachineConfig {
        let mut cfg = MachineConfig::conventional(cores);
        let decouple = match self {
            LatticePoint::Hccv2 => DecoupleConfig::none(),
            LatticePoint::Reg => DecoupleConfig {
                register: true,
                synch: false,
                memory: false,
            },
            LatticePoint::RegSynch => DecoupleConfig {
                register: true,
                synch: true,
                memory: false,
            },
            LatticePoint::RegMem => DecoupleConfig {
                register: true,
                synch: false,
                memory: true,
            },
            LatticePoint::All => DecoupleConfig::all(),
        };
        if decouple.any() {
            cfg.ring = Some(RingConfig::paper_default(cores));
        }
        if decouple.synch {
            cfg.sync = SyncModel::AllPredecessors;
        }
        cfg.decouple = decouple;
        cfg
    }

    /// Compiler used at this point (HCCv2 for the baseline bar, HCCv3
    /// everywhere else).
    pub fn compiler(self, cores: u32) -> HccConfig {
        match self {
            LatticePoint::Hccv2 => HccConfig::v2(cores),
            _ => HccConfig::v3(cores),
        }
    }
}

/// Speedups across the decoupling lattice for one workload (Fig. 8).
/// The five lattice points are independent (compile + simulate) jobs and
/// run in parallel with the sequential baseline.
pub fn decoupling_lattice(
    w: &Workload,
    cores: usize,
) -> Result<Vec<(LatticePoint, f64)>, ExpError> {
    decoupling_lattice_with_fuel(w, cores, FUEL)
}

/// [`decoupling_lattice`] under an explicit cycle budget.
pub fn decoupling_lattice_with_fuel(
    w: &Workload,
    cores: usize,
    fuel: u64,
) -> Result<Vec<(LatticePoint, f64)>, ExpError> {
    let mut jobs: Vec<Option<LatticePoint>> = vec![None]; // baseline
    jobs.extend(LatticePoint::ALL.map(Some));
    let cycles: Vec<u64> = jobs
        .par_iter()
        .map(|job| -> Result<u64, ExpError> {
            match job {
                None => {
                    Ok(
                        simulate_sequential(&w.program, &MachineConfig::conventional(cores), fuel)?
                            .cycles,
                    )
                }
                Some(point) => {
                    let compiled = compile(&w.program, &point.compiler(cores as u32))?;
                    let report = simulate(&compiled, &point.machine(cores), fuel)?;
                    check(&report, point.label())?;
                    Ok(report.cycles)
                }
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let seq = cycles[0];
    Ok(LatticePoint::ALL
        .into_iter()
        .zip(&cycles[1..])
        .map(|(point, &c)| (point, seq as f64 / c.max(1) as f64))
        .collect())
}

/// Fig. 9: HCCv3-selected code on conventional hardware vs. the ring
/// cache, as % of sequential execution time with a
/// communication/computation split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoupledVsRing {
    /// Benchmark name.
    pub name: String,
    /// Conventional run time as % of sequential (C bar; >100 = slowdown).
    pub conventional_pct: f64,
    /// Ring-cache run time as % of sequential (R bar).
    pub ring_pct: f64,
    /// Fraction of the conventional run's core-cycles spent on
    /// communication (incl. waiting).
    pub conventional_comm_frac: f64,
    /// Same for the ring run.
    pub ring_comm_frac: f64,
}

/// Communication fraction of a report: communication + dependence
/// waiting + wait/signal cycles over all busy cycles.
fn comm_frac(r: &RunReport) -> f64 {
    let comm = r.attribution.total(Bucket::Communication)
        + r.attribution.total(Bucket::DependenceWaiting)
        + r.attribution.total(Bucket::WaitSignal);
    let busy: u64 = [
        Bucket::Computation,
        Bucket::AdditionalInsts,
        Bucket::WaitSignal,
        Bucket::Memory,
        Bucket::Communication,
        Bucket::DependenceWaiting,
    ]
    .iter()
    .map(|b| r.attribution.total(*b))
    .sum();
    comm as f64 / busy.max(1) as f64
}

/// Run the Fig. 9 comparison.
pub fn coupled_vs_ring(w: &Workload, cores: usize) -> Result<CoupledVsRing, ExpError> {
    coupled_vs_ring_with_fuel(w, cores, FUEL)
}

/// [`coupled_vs_ring`] under an explicit cycle budget.
pub fn coupled_vs_ring_with_fuel(
    w: &Workload,
    cores: usize,
    fuel: u64,
) -> Result<CoupledVsRing, ExpError> {
    // HCCv3 selects loops assuming decoupling exists (ring-class sync
    // cost), then the code runs on both machines.
    let compiled = compile(&w.program, &HccConfig::v3(cores as u32))?;
    let seq = baseline_cycles_with_fuel(w, &MachineConfig::conventional(cores), fuel)?;
    let conv = simulate(&compiled, &MachineConfig::conventional(cores), fuel)?;
    check(&conv, "conventional")?;
    let ring = simulate(&compiled, &MachineConfig::helix_rc(cores), fuel)?;
    check(&ring, "ring")?;
    Ok(CoupledVsRing {
        name: w.name.to_string(),
        conventional_pct: 100.0 * conv.cycles as f64 / seq.max(1) as f64,
        ring_pct: 100.0 * ring.cycles as f64 / seq.max(1) as f64,
        conventional_comm_frac: comm_frac(&conv),
        ring_comm_frac: comm_frac(&ring),
    })
}

/// Fig. 10: speedups per core model, plus the sequential-time ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreTypeRow {
    /// Benchmark name.
    pub name: String,
    /// HELIX-RC speedup on 2-way in-order cores.
    pub io2: f64,
    /// On 2-way out-of-order cores.
    pub ooo2: f64,
    /// On 4-way out-of-order cores.
    pub ooo4: f64,
    /// Sequential time on the 2-way in-order core / sequential time on
    /// the 4-way OoO core (the paper's lower panel, inverted: >1 means
    /// the OoO core is faster).
    pub seq_io_over_ooo4: f64,
}

/// Run the core-type sensitivity for one workload.
pub fn core_type_sweep(w: &Workload, cores: usize) -> Result<CoreTypeRow, ExpError> {
    let compiled = compile(&w.program, &HccConfig::v3(cores as u32))?;
    let mut row = CoreTypeRow {
        name: w.name.to_string(),
        io2: 0.0,
        ooo2: 0.0,
        ooo4: 0.0,
        seq_io_over_ooo4: 0.0,
    };
    let mut seq_io = 0;
    let mut seq_ooo4 = 0;
    for (model, slot) in [
        (CoreModel::InOrder { width: 2 }, 0usize),
        (CoreModel::OutOfOrder { width: 2, rob: 48 }, 1),
        (CoreModel::OutOfOrder { width: 4, rob: 96 }, 2),
    ] {
        let mut cfg = MachineConfig::helix_rc(cores);
        cfg.core = model;
        let mut seq_cfg = MachineConfig::conventional(cores);
        seq_cfg.core = model;
        let seq = simulate_sequential(&w.program, &seq_cfg, FUEL)?.cycles;
        let par = simulate(&compiled, &cfg, FUEL)?;
        check(&par, "core sweep")?;
        let speedup = seq as f64 / par.cycles.max(1) as f64;
        match slot {
            0 => {
                row.io2 = speedup;
                seq_io = seq;
            }
            1 => row.ooo2 = speedup,
            _ => {
                row.ooo4 = speedup;
                seq_ooo4 = seq;
            }
        }
    }
    row.seq_io_over_ooo4 = seq_io as f64 / seq_ooo4.max(1) as f64;
    Ok(row)
}

/// Generic ring-parameter sweep point: label plus speedup.
pub type SweepPoint = (String, f64);

/// Fig. 11a: core-count scaling. Each core count is an independent
/// (compile + baseline + simulate) job; counts run in parallel.
pub fn sweep_core_count(w: &Workload, counts: &[usize]) -> Result<Vec<SweepPoint>, ExpError> {
    sweep_core_count_with_fuel(w, counts, FUEL)
}

/// [`sweep_core_count`] under an explicit cycle budget.
pub fn sweep_core_count_with_fuel(
    w: &Workload,
    counts: &[usize],
    fuel: u64,
) -> Result<Vec<SweepPoint>, ExpError> {
    counts
        .par_iter()
        .map(|&cores| -> Result<SweepPoint, ExpError> {
            let compiled = compile(&w.program, &HccConfig::v3(cores as u32))?;
            let seq = baseline_cycles_with_fuel(w, &MachineConfig::conventional(cores), fuel)?;
            let rep = simulate(&compiled, &MachineConfig::helix_rc(cores), fuel)?;
            check(&rep, "core count")?;
            Ok((
                format!("{cores} cores"),
                seq as f64 / rep.cycles.max(1) as f64,
            ))
        })
        .collect::<Result<Vec<_>, _>>()
}

/// Sweep a ring-cache parameter; `set` mutates the default ring config.
/// The compiled program and baseline are shared; the sweep points run in
/// parallel.
pub fn sweep_ring<F: Fn(&mut RingConfig) + Sync>(
    w: &Workload,
    cores: usize,
    labels_and_sets: &[(String, F)],
) -> Result<Vec<SweepPoint>, ExpError> {
    sweep_ring_with_fuel(w, cores, labels_and_sets, FUEL)
}

/// [`sweep_ring`] under an explicit cycle budget.
pub fn sweep_ring_with_fuel<F: Fn(&mut RingConfig) + Sync>(
    w: &Workload,
    cores: usize,
    labels_and_sets: &[(String, F)],
    fuel: u64,
) -> Result<Vec<SweepPoint>, ExpError> {
    let compiled = compile(&w.program, &HccConfig::v3(cores as u32))?;
    let seq = baseline_cycles_with_fuel(w, &MachineConfig::conventional(cores), fuel)?;
    labels_and_sets
        .par_iter()
        .map(|(label, set)| -> Result<SweepPoint, ExpError> {
            let mut cfg = MachineConfig::helix_rc(cores);
            let ring = cfg.ring.as_mut().expect("helix config has a ring");
            set(ring);
            let rep = simulate(&compiled, &cfg, fuel)?;
            check(&rep, label)?;
            Ok((label.clone(), seq as f64 / rep.cycles.max(1) as f64))
        })
        .collect::<Result<Vec<_>, _>>()
}

/// Fig. 11b link-latency settings.
pub fn link_latency_settings() -> Vec<(String, impl Fn(&mut RingConfig))> {
    [1u32, 4, 8, 16, 32]
        .into_iter()
        .map(|lat| {
            (
                format!("{lat} cycle{}", if lat == 1 { "" } else { "s" }),
                move |r: &mut RingConfig| r.hop_latency = lat,
            )
        })
        .collect()
}

/// Fig. 11c signal-bandwidth settings.
pub fn signal_bandwidth_settings() -> Vec<(String, impl Fn(&mut RingConfig))> {
    [None, Some(4u32), Some(2), Some(1)]
        .into_iter()
        .map(|bw| {
            (
                match bw {
                    None => "Unbounded".to_string(),
                    Some(k) => format!("{k} Signal{}", if k == 1 { "" } else { "s" }),
                },
                move |r: &mut RingConfig| r.signal_bandwidth = bw,
            )
        })
        .collect()
}

/// Fig. 11d node-memory settings.
pub fn node_memory_settings() -> Vec<(String, impl Fn(&mut RingConfig))> {
    [None, Some(32 * 1024u64), Some(1024), Some(256)]
        .into_iter()
        .map(|cap| {
            (
                match cap {
                    None => "Unbounded".to_string(),
                    Some(c) if c >= 1024 => format!("{} KB", c / 1024),
                    Some(c) => format!("{c} B"),
                },
                move |r: &mut RingConfig| {
                    r.array = ArrayConfig {
                        capacity: cap,
                        ..ArrayConfig::paper_default()
                    }
                },
            )
        })
        .collect()
}

/// Fig. 12 row: overhead fractions and achieved speedup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Benchmark name.
    pub name: String,
    /// Measured overhead fractions (Fig. 12 column order).
    pub measured: [f64; 7],
    /// Published fractions.
    pub paper: [f64; 7],
    /// Measured HELIX-RC speedup.
    pub speedup: f64,
    /// Published speedup.
    pub paper_speedup: f64,
}

/// Run the overhead taxonomy for one workload.
pub fn overhead_breakdown(w: &Workload, cores: usize) -> Result<OverheadRow, ExpError> {
    overhead_breakdown_with_fuel(w, cores, FUEL)
}

/// [`overhead_breakdown`] under an explicit cycle budget.
pub fn overhead_breakdown_with_fuel(
    w: &Workload,
    cores: usize,
    fuel: u64,
) -> Result<OverheadRow, ExpError> {
    let compiled = compile(&w.program, &HccConfig::v3(cores as u32))?;
    let seq = baseline_cycles_with_fuel(w, &MachineConfig::conventional(cores), fuel)?;
    let rep = simulate(&compiled, &MachineConfig::helix_rc(cores), fuel)?;
    check(&rep, &w.name)?;
    Ok(OverheadRow {
        name: w.name.to_string(),
        measured: rep.attribution.overhead_fractions(),
        paper: w.paper.overheads,
        speedup: seq as f64 / rep.cycles.max(1) as f64,
        paper_speedup: w.paper.helix_speedup,
    })
}

/// Fig. 4a: per-iteration cycle counts of the HELIX-selected loops on a
/// single in-order core.
pub fn iteration_lengths(w: &Workload) -> Result<Vec<u32>, ExpError> {
    // Select loops as HELIX-RC would (16-core profile), then execute the
    // parallel plan on a single core to time individual iterations.
    let compiled = compile(&w.program, &HccConfig::v3(16))?;
    let cfg = MachineConfig::helix_rc(1);
    let rep = simulate(&compiled, &cfg, FUEL)?;
    Ok(rep.iteration_lengths)
}

/// Fig. 4b/4c: producer→first-consumer distance and consumers-per-value
/// distributions from the 16-core ring run.
pub fn sharing_profile(w: &Workload, cores: usize) -> Result<(Vec<f64>, Vec<f64>), ExpError> {
    let compiled = compile(&w.program, &HccConfig::v3(cores as u32))?;
    let rep = simulate(&compiled, &MachineConfig::helix_rc(cores), FUEL)?;
    check(&rep, &w.name)?;
    let stats = rep.ring_stats.expect("ring stats present");
    Ok((stats.distance_distribution(), stats.consumer_distribution()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_workloads::{by_name, Scale};

    #[test]
    fn lattice_points_have_distinct_machines() {
        for p in LatticePoint::ALL {
            let m = p.machine(8);
            m.assert_valid();
        }
        assert!(!LatticePoint::Hccv2.machine(8).decouple.any());
        assert!(LatticePoint::All.machine(8).decouple.any());
        assert_eq!(
            LatticePoint::RegSynch.machine(8).sync,
            SyncModel::AllPredecessors
        );
        assert_eq!(
            LatticePoint::RegMem.machine(8).sync,
            SyncModel::ChainedPredecessor
        );
    }

    #[test]
    fn headline_runs_for_one_workload() {
        let w = by_name("175.vpr", Scale::Test).unwrap();
        let row = compiler_generations(&w, 8).unwrap();
        assert!(row.helix_rc > 1.0, "HELIX-RC must speed up: {row:?}");
        assert!(
            row.helix_rc > row.v2,
            "decoupling must beat compiler-only: {row:?}"
        );
    }

    #[test]
    fn settings_lists_cover_paper_axes() {
        assert_eq!(link_latency_settings().len(), 5);
        assert_eq!(signal_bandwidth_settings().len(), 4);
        assert_eq!(node_memory_settings().len(), 4);
    }
}
