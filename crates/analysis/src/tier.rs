//! The five accuracy tiers of the data-dependence analysis (paper §2.2,
//! Fig. 2).
//!
//! The paper starts from VLLPA (practical low-level pointer analysis) and
//! layers four extensions on top; each tier here enables everything below
//! it, so accuracy is monotone in the tier.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Alias-analysis precision tier.
///
/// Ordered: later tiers subsume earlier ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AliasTier {
    /// Baseline VLLPA-style analysis: flow-insensitive points-to,
    /// field-insensitive abstract store, allocation sites collapsed,
    /// library calls treated as clobbering everything.
    Vllpa,
    /// Adds flow sensitivity: register points-to sets are tracked per
    /// program point, so advancing a pointer or overwriting it does not
    /// pollute earlier uses (extension *i*).
    FlowSensitive,
    /// Adds path-based naming: the abstract store becomes field-sensitive
    /// and allocation sites are distinguished, naming runtime locations by
    /// how they are reached from program variables (extension *ii*).
    PathBased,
    /// Adds the data-type filter: accesses of incompatible scalar types
    /// cannot alias in a type-safe program (extension *iii*).
    DataType,
    /// Adds library-call semantics: intrinsics get precise read/write
    /// summaries (`memcpy` touches only its ranges, pure math calls touch
    /// nothing, `alloc` returns fresh storage) instead of clobbering the
    /// world (extension *iv*).
    LibCalls,
}

impl AliasTier {
    /// All tiers, in increasing precision order (the Fig. 2 sweep).
    pub const ALL: [AliasTier; 5] = [
        AliasTier::Vllpa,
        AliasTier::FlowSensitive,
        AliasTier::PathBased,
        AliasTier::DataType,
        AliasTier::LibCalls,
    ];

    /// Whether register points-to is flow-sensitive.
    pub fn flow_sensitive(self) -> bool {
        self >= AliasTier::FlowSensitive
    }

    /// Whether the abstract store distinguishes fields and allocation
    /// sites.
    pub fn path_based(self) -> bool {
        self >= AliasTier::PathBased
    }

    /// Whether incompatible scalar types are assumed not to alias.
    pub fn type_filter(self) -> bool {
        self >= AliasTier::DataType
    }

    /// Whether library calls use precise effect summaries.
    pub fn lib_call_semantics(self) -> bool {
        self >= AliasTier::LibCalls
    }

    /// Short label used in reports (matches Fig. 2's x-axis).
    pub fn label(self) -> &'static str {
        match self {
            AliasTier::Vllpa => "VLLPA",
            AliasTier::FlowSensitive => "+flow sensitive",
            AliasTier::PathBased => "+path based",
            AliasTier::DataType => "+data type",
            AliasTier::LibCalls => "+lib calls",
        }
    }
}

impl fmt::Display for AliasTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered() {
        assert!(AliasTier::Vllpa < AliasTier::FlowSensitive);
        assert!(AliasTier::FlowSensitive < AliasTier::PathBased);
        assert!(AliasTier::PathBased < AliasTier::DataType);
        assert!(AliasTier::DataType < AliasTier::LibCalls);
    }

    #[test]
    fn capabilities_are_monotone() {
        let mut prev = (false, false, false, false);
        for t in AliasTier::ALL {
            let cur = (
                t.flow_sensitive(),
                t.path_based(),
                t.type_filter(),
                t.lib_call_semantics(),
            );
            assert!(prev.0 <= cur.0 && prev.1 <= cur.1 && prev.2 <= cur.2 && prev.3 <= cur.3);
            prev = cur;
        }
        assert_eq!(prev, (true, true, true, true));
    }

    #[test]
    fn labels_match_paper_axis() {
        assert_eq!(AliasTier::Vllpa.to_string(), "VLLPA");
        assert_eq!(AliasTier::LibCalls.to_string(), "+lib calls");
    }
}
