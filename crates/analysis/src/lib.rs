//! # helix-analysis
//!
//! The compiler analyses of the HELIX-RC reproduction (paper §2.2):
//!
//! * [`pts`] — points-to analysis with the five-tier precision ladder of
//!   Fig. 2 (VLLPA baseline, +flow-sensitive, +path-based, +data-type,
//!   +library-call semantics);
//! * [`deps`] — loop-carried dependence analysis (memory + registers),
//!   with the affine induction refinement added in HCCv2;
//! * [`predictable`] — the predictable-variable classification that lets
//!   cores re-compute shared scalars instead of communicating them
//!   (Fig. 3);
//! * [`ground_truth`] — dynamic dependence profiling, the ground truth
//!   the accuracy experiment measures against;
//! * [`accuracy`] — the Fig. 2 accuracy sweep itself;
//! * [`liveness`], [`affine`] — supporting dataflow analyses.
//!
//! # Examples
//!
//! ```
//! use helix_analysis::{analyze_loop, DepConfig, PointsTo};
//! use helix_ir::cfg::LoopForest;
//! use helix_ir::{AddrExpr, BinOp, ProgramBuilder, Ty};
//!
//! let mut b = ProgramBuilder::new("example");
//! let cell = b.region("cell", 64, Ty::I64);
//! b.counted_loop(0, 100, 1, |b, i| {
//!     let x = b.reg();
//!     b.load(x, AddrExpr::region(cell, 0), Ty::I64);
//!     b.bin(x, BinOp::Add, x, i);
//!     b.store(x, AddrExpr::region(cell, 0), Ty::I64);
//! });
//! let program = b.finish();
//!
//! let forest = LoopForest::compute(&program.graph, program.graph.entry);
//! let config = DepConfig::full();
//! let pts = PointsTo::analyze(&program, config.tier);
//! let deps = analyze_loop(&program, &forest.loops[0].lp, config, &pts);
//! assert!(!deps.mem_deps.is_empty()); // the accumulator cell is shared
//! ```

#![warn(missing_docs)]

pub mod accuracy;
pub mod affine;
pub mod deps;
pub mod ground_truth;
pub mod liveness;
pub mod predictable;
pub mod pts;
pub mod tier;

pub use accuracy::{compare, tier_sweep, LoopAccuracy, TierSweep};
pub use deps::{analyze_loop, AccessInfo, DepConfig, DepKind, LoopDeps, MemDep};
pub use ground_truth::{observe_loop_deps, DynamicLoopDeps};
pub use predictable::{
    classify_registers, communication_demand, CommunicationDemand, PredictableKind, RegClass,
};
pub use pts::{AbsLoc, FieldKey, LocSet, ObjKey, PointsTo, PtSet};
pub use tier::AliasTier;
