//! Branch prediction: per-branch two-bit saturating counters.

use helix_ir::BlockId;
use std::collections::BTreeMap;

/// A table of two-bit saturating counters keyed by branch block.
#[derive(Debug, Clone, Default)]
pub struct Predictor {
    table: BTreeMap<BlockId, u8>,
    /// Predictions made.
    pub predictions: u64,
    /// Of which incorrect.
    pub mispredictions: u64,
}

impl Predictor {
    /// A fresh predictor (weakly taken everywhere).
    pub fn new() -> Predictor {
        Predictor::default()
    }

    /// Predict the branch in `block`: `true` = taken.
    pub fn predict(&self, block: BlockId) -> bool {
        *self.table.get(&block).unwrap_or(&2) >= 2
    }

    /// Record the outcome; returns whether the prediction was correct.
    pub fn update(&mut self, block: BlockId, taken: bool) -> bool {
        let ctr = self.table.entry(block).or_insert(2);
        let predicted = *ctr >= 2;
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.predictions += 1;
        if predicted != taken {
            self.mispredictions += 1;
        }
        predicted == taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Predictor::new();
        let b = BlockId(5);
        for _ in 0..4 {
            p.update(b, false);
        }
        assert!(!p.predict(b));
        // One taken flip does not change the prediction (hysteresis).
        p.update(b, true);
        assert!(!p.predict(b));
        p.update(b, true);
        assert!(p.predict(b));
    }

    #[test]
    fn loop_back_edges_predict_well() {
        let mut p = Predictor::new();
        let b = BlockId(1);
        let mut correct = 0;
        for i in 0..100 {
            let taken = i % 10 != 9; // 10-iteration loop pattern
            if p.predict(b) == taken {
                correct += 1;
            }
            p.update(b, taken);
        }
        assert!(correct >= 80, "got {correct}");
        assert!(p.mispredictions <= 20);
    }
}
