//! Abstract TLP model (paper §6.2, "Sequential segments").
//!
//! To quantify how segment splitting affects thread-level parallelism
//! independent of communication cost and pipeline effects, the paper uses
//! "a simple abstracted model of a multicore system that has no
//! communication cost and is able to execute one instruction at a time".
//! This module implements that model: iterations are distributed
//! round-robin, every instruction takes one time unit, communication is
//! free, and instances of each sequential segment must execute in
//! iteration order.

use serde::{Deserialize, Serialize};

/// Result of the abstract TLP estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TlpResult {
    /// Mean instructions in flight per time unit (the TLP number).
    pub tlp: f64,
    /// Abstract makespan in instruction-units.
    pub makespan: f64,
    /// Total instructions executed.
    pub total_insts: f64,
    /// Mean instructions per sequential segment.
    pub mean_segment_size: f64,
}

/// Estimate TLP for a loop with `insts_per_iter` instructions per
/// iteration, sequential segments of the given sizes, run for
/// `iterations` iterations on `cores` cores.
///
/// Parallel (non-segment) instructions are assumed evenly distributed
/// between segments.
pub fn estimate_tlp(
    insts_per_iter: f64,
    seg_sizes: &[f64],
    iterations: u64,
    cores: u32,
) -> TlpResult {
    let n = cores.max(1) as usize;
    let seg_total: f64 = seg_sizes.iter().sum();
    let seg_total = seg_total.min(insts_per_iter);
    let parallel = insts_per_iter - seg_total;
    let chunks = seg_sizes.len() + 1;
    let chunk = parallel / chunks as f64;

    let mut core_free = vec![0.0f64; n];
    let mut seg_done = vec![0.0f64; seg_sizes.len()];
    let mut makespan: f64 = 0.0;
    for k in 0..iterations {
        let c = (k % n as u64) as usize;
        let mut t = core_free[c];
        for (j, &s) in seg_sizes.iter().enumerate() {
            t += chunk;
            let start = t.max(seg_done[j]);
            let end = start + s;
            seg_done[j] = end;
            t = end;
        }
        t += chunk;
        core_free[c] = t;
        makespan = makespan.max(t);
    }
    let total = insts_per_iter * iterations as f64;
    TlpResult {
        tlp: if makespan > 0.0 {
            total / makespan
        } else {
            0.0
        },
        makespan,
        total_insts: total,
        mean_segment_size: if seg_sizes.is_empty() {
            0.0
        } else {
            seg_total / seg_sizes.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doall_reaches_full_tlp() {
        let r = estimate_tlp(100.0, &[], 1600, 16);
        assert!((r.tlp - 16.0).abs() < 0.2, "tlp {}", r.tlp);
    }

    #[test]
    fn fully_serial_loop_has_tlp_one() {
        // One segment covering the whole iteration.
        let r = estimate_tlp(50.0, &[50.0], 1600, 16);
        assert!((r.tlp - 1.0).abs() < 0.05, "tlp {}", r.tlp);
    }

    #[test]
    fn splitting_raises_tlp() {
        // One big segment of 32 insts out of 64...
        let merged = estimate_tlp(64.0, &[32.0], 1600, 16);
        // ...split into 8 segments of 4.
        let split = estimate_tlp(64.0, &[4.0; 8], 1600, 16);
        assert!(
            split.tlp > merged.tlp * 1.5,
            "split {} vs merged {}",
            split.tlp,
            merged.tlp
        );
        assert!(split.mean_segment_size < merged.mean_segment_size);
    }

    #[test]
    fn single_core_tlp_is_one() {
        let r = estimate_tlp(64.0, &[4.0; 4], 100, 1);
        assert!((r.tlp - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_iterations() {
        let r = estimate_tlp(64.0, &[4.0], 0, 16);
        assert_eq!(r.tlp, 0.0);
        assert_eq!(r.makespan, 0.0);
    }
}
