//! Ring-cache property tests: under arbitrary interleavings of stores,
//! signals, and loads, the ring must never deadlock, never lose a
//! message, and always deliver every signal to every node exactly once.

use helix_ir::SegmentId;
use helix_ring_cache::{ArrayConfig, RingCache, RingConfig};
use proptest::prelude::*;

/// One injected event.
#[derive(Debug, Clone, Copy)]
enum Event {
    Store { node: u8, slot: u8 },
    Signal { node: u8, seg: u8 },
    Tick(u8),
}

fn event_strategy(nodes: u8) -> impl Strategy<Value = Event> {
    prop_oneof![
        (0..nodes, any::<u8>()).prop_map(|(node, slot)| Event::Store { node, slot }),
        (0..nodes, 0..4u8).prop_map(|(node, seg)| Event::Signal { node, seg }),
        (1..8u8).prop_map(Event::Tick),
    ]
}

fn config(nodes: usize, tiny_buffers: bool, narrow_signals: bool) -> RingConfig {
    let mut cfg = RingConfig::paper_default(nodes);
    if tiny_buffers {
        cfg.link_buffers = 2; // the paper's minimum for forward progress
        cfg.array = ArrayConfig {
            capacity: Some(128), // 16 lines: constant evictions
            assoc: 2,
            line: 8,
        };
    }
    if narrow_signals {
        cfg.signal_bandwidth = Some(1);
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ring always drains: no deadlock under any injected sequence,
    /// even with minimum buffers, tiny arrays, and narrow signal links.
    #[test]
    fn ring_always_drains(
        events in prop::collection::vec(event_strategy(8), 1..120),
        tiny in any::<bool>(),
        narrow in any::<bool>(),
    ) {
        let mut ring = RingCache::new(config(8, tiny, narrow));
        let mut expected_signals: Vec<(u8, u8)> = Vec::new();
        for e in &events {
            match *e {
                Event::Store { node, slot } => {
                    // Backpressure is allowed; retry after a tick.
                    if !ring.store(node as usize, 0x1000 + slot as u64 * 8) {
                        ring.tick();
                        let _ = ring.store(node as usize, 0x1000 + slot as u64 * 8);
                    }
                }
                Event::Signal { node, seg } => {
                    if ring.signal(node as usize, SegmentId(seg as u32)) {
                        expected_signals.push((node, seg));
                    }
                }
                Event::Tick(n) => {
                    for _ in 0..n {
                        ring.tick();
                    }
                }
            }
        }
        // Drain within a generous bound.
        let mut guard = 0;
        while !ring.quiescent() {
            ring.tick();
            guard += 1;
            prop_assert!(guard < 100_000, "ring failed to drain: deadlock");
        }
        // Every accepted signal was delivered to every node exactly once.
        let mut expected_count = std::collections::BTreeMap::new();
        for (node, seg) in &expected_signals {
            *expected_count.entry((*node, *seg)).or_insert(0u64) += 1;
        }
        for ((src, seg), count) in expected_count {
            for observer in 0..8usize {
                prop_assert_eq!(
                    ring.signal_count(observer, SegmentId(seg as u32), src as usize),
                    count,
                    "node {} saw wrong count for seg {} from {}",
                    observer, seg, src
                );
            }
        }
    }

    /// Loads issued after the ring drains always complete (hit locally or
    /// get serviced by the owner) within a bounded number of cycles.
    #[test]
    fn loads_always_complete(
        stores in prop::collection::vec((0..8u8, any::<u8>()), 1..40),
        loader in 0..8u8,
    ) {
        let mut ring = RingCache::new(config(8, true, false));
        for (node, slot) in &stores {
            while !ring.store(*node as usize, 0x2000 + *slot as u64 * 8) {
                ring.tick();
            }
        }
        let mut guard = 0;
        while !ring.quiescent() {
            ring.tick();
            guard += 1;
            prop_assert!(guard < 100_000);
        }
        // Load a stored address and a cold one.
        for addr in [0x2000 + stores[0].1 as u64 * 8, 0x9000u64] {
            match ring.load(loader as usize, addr) {
                helix_ring_cache::LoadIssue::Hit { ready_at } => {
                    prop_assert!(ready_at >= ring.now());
                }
                helix_ring_cache::LoadIssue::Pending { ticket } => {
                    let mut waited = 0;
                    while ring.load_ready(ticket).is_none() {
                        ring.tick();
                        waited += 1;
                        prop_assert!(waited < 10_000, "miss service stalled");
                    }
                }
            }
        }
    }

    /// The flush cost is bounded and the ring is empty afterwards.
    #[test]
    fn flush_terminates_and_clears(
        events in prop::collection::vec(event_strategy(4), 1..80),
    ) {
        let mut ring = RingCache::new(config(4, true, true));
        for e in &events {
            match *e {
                Event::Store { node, slot } => {
                    let _ = ring.store(node as usize % 4, 0x3000 + slot as u64 * 8);
                }
                Event::Signal { node, seg } => {
                    let _ = ring.signal(node as usize % 4, SegmentId(seg as u32));
                }
                Event::Tick(n) => {
                    for _ in 0..n {
                        ring.tick();
                    }
                }
            }
        }
        let cost = ring.flush();
        prop_assert!(cost < 100_000);
        prop_assert!(ring.quiescent());
        // Signal state cleared.
        for node in 0..4 {
            for seg in 0..4 {
                for src in 0..4 {
                    prop_assert_eq!(ring.signal_count(node, SegmentId(seg), src), 0);
                }
            }
        }
    }
}
