//! Iteration-shape distributions for workload generation.
//!
//! The paper characterizes irregular programs by the *distribution* of
//! their loop iteration lengths (Fig. 4a) rather than by any single
//! instance, so the declarative scenario subsystem parameterizes
//! generated loops the same way: a [`Distribution`] describes how much
//! work each iteration performs, and
//! [`ProgramBuilder::init_region_from_dist`](crate::ProgramBuilder::init_region_from_dist)
//! bakes one concrete, seed-deterministic sample of it into a program as
//! a per-iteration work table.
//!
//! Sampling is pure integer arithmetic over [`SplitMix64`], so the same
//! `(distribution, seed)` pair produces bit-identical programs on every
//! platform.

use crate::rng::SplitMix64;

/// A distribution over per-iteration work amounts (in abstract work
/// units; the generator decides what one unit costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Every iteration performs exactly `value` units.
    Fixed {
        /// The constant amount.
        value: i64,
    },
    /// Uniform over `lo..=hi`.
    Uniform {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Mostly `short` iterations with a `long` burst roughly every
    /// `period` iterations — the "bursty" shape of irregular workloads
    /// whose rare slow paths dominate (e.g. 177.mesa's texture spans).
    Bursty {
        /// Work units of the common case.
        short: i64,
        /// Work units of the burst.
        long: i64,
        /// Expected iterations between bursts (>= 1).
        period: i64,
    },
    /// Geometric with expected value ~`mean`, capped at `cap` — the
    /// long-tailed shape of Fig. 4a's iteration-length CDF.
    Geometric {
        /// Expected value of the uncapped distribution (>= 1).
        mean: i64,
        /// Inclusive upper bound on samples.
        cap: i64,
    },
    /// Zipf-like (exponent ≈ 1) heavy tail over `1..=max`: most samples
    /// are tiny, rare ones approach `max`. Sampled as a discrete
    /// log-uniform — a uniformly random octave `[2^k, 2^(k+1))`, then
    /// uniform within it, redrawing values above `max` so a partial top
    /// octave is weighted by its width instead of concentrating its
    /// probability on a few values. Matches the 1/x density octave by
    /// octave using only integer arithmetic (no libm, bit-exact across
    /// platforms).
    Zipf {
        /// Inclusive upper bound on samples (>= 1).
        max: i64,
    },
    /// Phase-change workload: iterations run in contiguous regimes that
    /// alternate between `low` and `high` work every `period` samples —
    /// the SimPoint-style phase behavior of real programs, as opposed to
    /// [`Distribution::Bursty`]'s isolated spikes. The regime is a
    /// function of the *sample index*, so this variant is only
    /// meaningful through [`Distribution::sample_at`].
    PhaseChange {
        /// Work units inside a low phase.
        low: i64,
        /// Work units inside a high phase.
        high: i64,
        /// Samples per phase before the regime flips (>= 1).
        period: i64,
    },
    /// Open-loop server load: each slot is a fixed time window that
    /// receives an approximately-Poisson number of requests with
    /// expected value `mean`, each costing `service` units. Arrivals
    /// don't wait for the server (the defining property of open-loop
    /// load generators), so per-slot work has unbounded-looking spikes
    /// whenever several requests land in one window. Sampled as
    /// Binomial(8·mean, 1/8) — pure integer arithmetic, bit-exact
    /// across platforms. An empty slot costs 1 unit (the poll).
    OpenLoop {
        /// Expected requests per slot (>= 1).
        mean: i64,
        /// Work units per request (>= 1).
        service: i64,
    },
    /// Closed-loop server load: a fixed population of `users` clients
    /// each cycle think -> request -> think, so at most `users`
    /// requests are ever outstanding and load self-limits (the classic
    /// closed-loop contrast to [`Distribution::OpenLoop`]). Each slot,
    /// every user independently finishes thinking with probability
    /// 1/`think` and issues one request costing `service` units; an
    /// idle slot costs 1 unit.
    ClosedLoop {
        /// Client population size (>= 1).
        users: i64,
        /// Expected slots a client spends thinking between requests.
        think: i64,
        /// Work units per request (>= 1).
        service: i64,
    },
    /// Heavy-tailed request latency over a zipf-popular object space:
    /// most slots hit hot (cached) objects and cost `base`, but roughly
    /// one slot in `period` misses to a cold object whose extra cost is
    /// [`Distribution::Zipf`]-distributed over `1..=max` — the p99 tail
    /// regime of server traffic, where rare cold misses dominate the
    /// latency distribution.
    TailBurst {
        /// Work units of a hot-object hit.
        base: i64,
        /// Inclusive upper bound on the zipf-distributed miss cost.
        max: i64,
        /// Expected slots between cold misses (>= 1).
        period: i64,
    },
}

/// One draw from the discrete log-uniform zipf sampler shared by
/// [`Distribution::Zipf`] and [`Distribution::TailBurst`]: a uniformly
/// random octave `[2^k, 2^(k+1))`, then uniform within it, redrawing
/// values above `max` so a partial top octave is weighted by its width.
/// Retries are capped so sampling always terminates; the odds of
/// exhausting them are < 2^-64.
fn zipf_draw(max: u64, rng: &mut SplitMix64) -> i64 {
    let octaves = 64 - max.leading_zeros() as u64;
    let mut v = 1;
    for _ in 0..64 {
        let lo = 1u64 << rng.next_below(octaves);
        v = lo + rng.next_below(lo);
        if v <= max {
            break;
        }
        v = 1;
    }
    v as i64
}

/// Mean of [`zipf_draw`] over `1..=max`: each octave is weighted by its
/// (possibly partial) width, and within an octave the mean is the
/// midpoint.
fn zipf_mean(max: u64) -> f64 {
    let octaves = 64 - max.leading_zeros();
    let mut sum = 0.0;
    let mut weight = 0.0;
    for k in 0..octaves {
        let lo = 1u64 << k;
        let width = (lo.min(max + 1 - lo)) as f64;
        let w = width / lo as f64;
        sum += w * (lo as f64 + (width - 1.0) / 2.0);
        weight += w;
    }
    sum / weight
}

impl Distribution {
    /// Draw one sample. Index-free distributions ignore `index`;
    /// [`Distribution::PhaseChange`] uses it to decide which regime the
    /// sample falls in. This is the primitive
    /// [`ProgramBuilder::init_region_from_dist`](crate::ProgramBuilder::init_region_from_dist)
    /// bakes work tables with: slot `i` of the table is `sample_at(i)`.
    pub fn sample_at(&self, index: i64, rng: &mut SplitMix64) -> i64 {
        if let Distribution::PhaseChange { low, high, period } = *self {
            let phase = index.max(0) / period.max(1);
            return if phase % 2 == 0 { low } else { high }.max(1);
        }
        self.sample(rng)
    }

    /// Draw one index-free sample (`sample_at` with index 0). All arms
    /// clamp their result to be >= 1 so a generated loop body never
    /// degenerates to zero work.
    pub fn sample(&self, rng: &mut SplitMix64) -> i64 {
        let v = match *self {
            Distribution::Fixed { value } => value,
            Distribution::Uniform { lo, hi } => {
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                lo + rng.next_below((hi - lo + 1) as u64) as i64
            }
            Distribution::Bursty {
                short,
                long,
                period,
            } => {
                if rng.next_below(period.max(1) as u64) == 0 {
                    long
                } else {
                    short
                }
            }
            Distribution::Geometric { mean, cap } => {
                // Count failures of a p = 1/mean trial: integer-only, so
                // bit-exact across platforms (no libm).
                let mean = mean.max(1) as u64;
                let mut k = 1i64;
                while k < cap && rng.next_below(mean) != 0 {
                    k += 1;
                }
                k
            }
            Distribution::Zipf { max } => {
                // floor(log2(max)) + 1 octaves; each full octave is
                // equally likely, so density falls off ~1/x across
                // octave boundaries. Without the partial-top-octave
                // rejection inside `zipf_draw`, Zipf{max: 256} would
                // hand the single value 256 a whole octave's
                // probability mass.
                zipf_draw(max.max(1) as u64, rng)
            }
            Distribution::PhaseChange { low, .. } => low,
            Distribution::OpenLoop { mean, service } => {
                // Binomial(8*mean, 1/8) ~ Poisson(mean); validation
                // bounds `mean` so the trial loop stays cheap.
                let trials = 8 * mean.max(1) as u64;
                let mut arrivals = 0i64;
                for _ in 0..trials {
                    if rng.next_below(8) == 0 {
                        arrivals += 1;
                    }
                }
                1 + arrivals * service.max(1)
            }
            Distribution::ClosedLoop {
                users,
                think,
                service,
            } => {
                // Each of the `users` clients finishes its think time
                // this slot with probability 1/think.
                let think = think.max(1) as u64;
                let mut requests = 0i64;
                for _ in 0..users.max(1) {
                    if rng.next_below(think) == 0 {
                        requests += 1;
                    }
                }
                1 + requests * service.max(1)
            }
            Distribution::TailBurst { base, max, period } => {
                if rng.next_below(period.max(1) as u64) == 0 {
                    base + zipf_draw(max.max(1) as u64, rng)
                } else {
                    base
                }
            }
        };
        v.max(1)
    }

    /// Expected value (approximate for `Geometric`, which is capped).
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Fixed { value } => value as f64,
            Distribution::Uniform { lo, hi } => (lo.min(hi) + lo.max(hi)) as f64 / 2.0,
            Distribution::Bursty {
                short,
                long,
                period,
            } => {
                let p = 1.0 / period.max(1) as f64;
                p * long as f64 + (1.0 - p) * short as f64
            }
            Distribution::Geometric { mean, cap } => (mean as f64).min(cap as f64),
            Distribution::Zipf { max } => zipf_mean(max.max(1) as u64),
            Distribution::PhaseChange { low, high, .. } => (low + high) as f64 / 2.0,
            Distribution::OpenLoop { mean, service } => {
                1.0 + mean.max(1) as f64 * service.max(1) as f64
            }
            Distribution::ClosedLoop {
                users,
                think,
                service,
            } => 1.0 + users.max(1) as f64 * service.max(1) as f64 / think.max(1) as f64,
            Distribution::TailBurst { base, max, period } => {
                base as f64 + zipf_mean(max.max(1) as u64) / period.max(1) as f64
            }
        }
    }

    /// The stable TOML `kind` string for this variant — the same token
    /// `ScenarioSpec` serialization uses, so tooling (e.g. `helix
    /// list`) can name a distribution without reimplementing the match.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Distribution::Fixed { .. } => "fixed",
            Distribution::Uniform { .. } => "uniform",
            Distribution::Bursty { .. } => "bursty",
            Distribution::Geometric { .. } => "geometric",
            Distribution::Zipf { .. } => "zipf",
            Distribution::PhaseChange { .. } => "phase_change",
            Distribution::OpenLoop { .. } => "open_loop",
            Distribution::ClosedLoop { .. } => "closed_loop",
            Distribution::TailBurst { .. } => "tail_burst",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(d: Distribution, n: usize) -> Vec<i64> {
        let mut rng = SplitMix64::new(99);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn fixed_is_constant() {
        assert!(samples(Distribution::Fixed { value: 7 }, 100)
            .iter()
            .all(|&v| v == 7));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        for v in samples(Distribution::Uniform { lo: 3, hi: 9 }, 1000) {
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn bursty_mixes_short_and_long() {
        let vs = samples(
            Distribution::Bursty {
                short: 2,
                long: 50,
                period: 8,
            },
            1000,
        );
        let longs = vs.iter().filter(|&&v| v == 50).count();
        assert!(vs.iter().all(|&v| v == 2 || v == 50));
        // Expected 125 bursts; allow wide slack.
        assert!((40..=300).contains(&longs), "{longs} bursts");
    }

    #[test]
    fn geometric_respects_cap_and_floor() {
        let vs = samples(Distribution::Geometric { mean: 6, cap: 40 }, 2000);
        assert!(vs.iter().all(|&v| (1..=40).contains(&v)));
        let avg = vs.iter().sum::<i64>() as f64 / vs.len() as f64;
        assert!((2.0..=12.0).contains(&avg), "mean drifted: {avg}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = Distribution::Geometric { mean: 5, cap: 99 };
        assert_eq!(samples(d, 500), samples(d, 500));
    }

    #[test]
    fn zipf_is_bounded_and_heavy_tailed() {
        let vs = samples(Distribution::Zipf { max: 256 }, 4000);
        assert!(vs.iter().all(|&v| (1..=256).contains(&v)));
        // Every full octave is equally likely (~1/8 of samples each
        // after the partial-octave rejection), so roughly 1/8 of the
        // samples are exactly 1 and small values dominate large ones.
        let ones = vs.iter().filter(|&&v| v == 1).count();
        let small = vs.iter().filter(|&&v| v <= 16).count();
        let large = vs.iter().filter(|&&v| v > 128).count();
        assert!((200..=900).contains(&ones), "{ones} ones");
        assert!(small > large, "small {small} <= large {large}");
        assert!(large > 0, "tail never sampled");
        // The partial top octave (just {256} at max = 2^8) must be
        // weighted by its width, not handed a full octave's mass.
        let maxed = vs.iter().filter(|&&v| v == 256).count();
        assert!(maxed < 40, "P(max) inflated: {maxed}/4000");
    }

    #[test]
    fn phase_change_alternates_by_index() {
        let d = Distribution::PhaseChange {
            low: 3,
            high: 50,
            period: 4,
        };
        let mut rng = SplitMix64::new(1);
        let vs: Vec<i64> = (0..16).map(|i| d.sample_at(i, &mut rng)).collect();
        assert_eq!(&vs[0..4], &[3, 3, 3, 3]);
        assert_eq!(&vs[4..8], &[50, 50, 50, 50]);
        assert_eq!(&vs[8..12], &[3, 3, 3, 3]);
        assert_eq!(&vs[12..16], &[50, 50, 50, 50]);
    }

    #[test]
    fn sample_at_matches_sample_for_index_free_dists() {
        for d in [
            Distribution::Fixed { value: 5 },
            Distribution::Uniform { lo: 1, hi: 9 },
            Distribution::Zipf { max: 64 },
        ] {
            let mut a = SplitMix64::new(7);
            let mut b = SplitMix64::new(7);
            for i in 0..100 {
                assert_eq!(d.sample_at(i, &mut a), d.sample(&mut b), "{d:?} at {i}");
            }
        }
    }

    #[test]
    fn open_loop_spikes_like_arrivals() {
        let d = Distribution::OpenLoop {
            mean: 2,
            service: 10,
        };
        let vs = samples(d, 2000);
        // Work is 1 + 10k for the per-slot arrival count k.
        assert!(vs.iter().all(|&v| v >= 1 && (v - 1) % 10 == 0));
        let empty = vs.iter().filter(|&&v| v == 1).count();
        let busy = vs.iter().filter(|&&v| v > 21).count();
        // P(k=0) = (7/8)^16 ~ 0.118; spikes (k >= 3) ~ 0.32.
        assert!((100..=400).contains(&empty), "{empty} empty slots");
        assert!(busy > 200, "only {busy} multi-arrival slots");
        let avg = vs.iter().sum::<i64>() as f64 / vs.len() as f64;
        assert!((15.0..=27.0).contains(&avg), "mean drifted: {avg}");
    }

    #[test]
    fn closed_loop_is_population_bounded() {
        let d = Distribution::ClosedLoop {
            users: 8,
            think: 4,
            service: 5,
        };
        let vs = samples(d, 2000);
        // At most `users` requests per slot: 1 + 8*5 = 41.
        assert!(vs.iter().all(|&v| (1..=41).contains(&v)));
        let avg = vs.iter().sum::<i64>() as f64 / vs.len() as f64;
        // Expected 1 + 8*5/4 = 11.
        assert!((8.0..=14.0).contains(&avg), "mean drifted: {avg}");
    }

    #[test]
    fn tail_burst_is_mostly_base_with_zipf_tail() {
        let d = Distribution::TailBurst {
            base: 3,
            max: 256,
            period: 8,
        };
        let vs = samples(d, 4000);
        let hits = vs.iter().filter(|&&v| v == 3).count();
        let misses = vs.iter().filter(|&&v| v > 3).count();
        assert!(vs.iter().all(|&v| (3..=259).contains(&v)));
        // ~1/8 of slots miss; the rest are hot-object hits.
        assert!((250..=800).contains(&misses), "{misses} misses");
        assert!(hits > misses * 4, "tail fired too often");
        assert!(vs.iter().any(|&v| v > 128), "deep tail never sampled");
    }

    #[test]
    fn server_traffic_sampling_is_deterministic() {
        for d in [
            Distribution::OpenLoop {
                mean: 3,
                service: 7,
            },
            Distribution::ClosedLoop {
                users: 16,
                think: 8,
                service: 3,
            },
            Distribution::TailBurst {
                base: 2,
                max: 64,
                period: 16,
            },
        ] {
            assert_eq!(samples(d, 500), samples(d, 500), "{d:?}");
        }
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(Distribution::Fixed { value: 1 }.kind_name(), "fixed");
        assert_eq!(
            Distribution::OpenLoop {
                mean: 1,
                service: 1
            }
            .kind_name(),
            "open_loop"
        );
        assert_eq!(
            Distribution::ClosedLoop {
                users: 1,
                think: 1,
                service: 1
            }
            .kind_name(),
            "closed_loop"
        );
        assert_eq!(
            Distribution::TailBurst {
                base: 1,
                max: 1,
                period: 1
            }
            .kind_name(),
            "tail_burst"
        );
    }

    #[test]
    fn means_are_sensible() {
        assert_eq!(Distribution::Fixed { value: 4 }.mean(), 4.0);
        assert_eq!(Distribution::Uniform { lo: 2, hi: 6 }.mean(), 4.0);
        let b = Distribution::Bursty {
            short: 2,
            long: 18,
            period: 4,
        };
        assert_eq!(b.mean(), 6.0);
        let p = Distribution::PhaseChange {
            low: 2,
            high: 10,
            period: 8,
        };
        assert_eq!(p.mean(), 6.0);
        let z = Distribution::Zipf { max: 256 }.mean();
        assert!((1.0..=128.0).contains(&z), "zipf mean {z}");
    }
}
