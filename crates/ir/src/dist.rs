//! Iteration-shape distributions for workload generation.
//!
//! The paper characterizes irregular programs by the *distribution* of
//! their loop iteration lengths (Fig. 4a) rather than by any single
//! instance, so the declarative scenario subsystem parameterizes
//! generated loops the same way: a [`Distribution`] describes how much
//! work each iteration performs, and
//! [`ProgramBuilder::init_region_from_dist`](crate::ProgramBuilder::init_region_from_dist)
//! bakes one concrete, seed-deterministic sample of it into a program as
//! a per-iteration work table.
//!
//! Sampling is pure integer arithmetic over [`SplitMix64`], so the same
//! `(distribution, seed)` pair produces bit-identical programs on every
//! platform.

use crate::rng::SplitMix64;

/// A distribution over per-iteration work amounts (in abstract work
/// units; the generator decides what one unit costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Every iteration performs exactly `value` units.
    Fixed {
        /// The constant amount.
        value: i64,
    },
    /// Uniform over `lo..=hi`.
    Uniform {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Mostly `short` iterations with a `long` burst roughly every
    /// `period` iterations — the "bursty" shape of irregular workloads
    /// whose rare slow paths dominate (e.g. 177.mesa's texture spans).
    Bursty {
        /// Work units of the common case.
        short: i64,
        /// Work units of the burst.
        long: i64,
        /// Expected iterations between bursts (>= 1).
        period: i64,
    },
    /// Geometric with expected value ~`mean`, capped at `cap` — the
    /// long-tailed shape of Fig. 4a's iteration-length CDF.
    Geometric {
        /// Expected value of the uncapped distribution (>= 1).
        mean: i64,
        /// Inclusive upper bound on samples.
        cap: i64,
    },
    /// Zipf-like (exponent ≈ 1) heavy tail over `1..=max`: most samples
    /// are tiny, rare ones approach `max`. Sampled as a discrete
    /// log-uniform — a uniformly random octave `[2^k, 2^(k+1))`, then
    /// uniform within it, redrawing values above `max` so a partial top
    /// octave is weighted by its width instead of concentrating its
    /// probability on a few values. Matches the 1/x density octave by
    /// octave using only integer arithmetic (no libm, bit-exact across
    /// platforms).
    Zipf {
        /// Inclusive upper bound on samples (>= 1).
        max: i64,
    },
    /// Phase-change workload: iterations run in contiguous regimes that
    /// alternate between `low` and `high` work every `period` samples —
    /// the SimPoint-style phase behavior of real programs, as opposed to
    /// [`Distribution::Bursty`]'s isolated spikes. The regime is a
    /// function of the *sample index*, so this variant is only
    /// meaningful through [`Distribution::sample_at`].
    PhaseChange {
        /// Work units inside a low phase.
        low: i64,
        /// Work units inside a high phase.
        high: i64,
        /// Samples per phase before the regime flips (>= 1).
        period: i64,
    },
}

impl Distribution {
    /// Draw one sample. Index-free distributions ignore `index`;
    /// [`Distribution::PhaseChange`] uses it to decide which regime the
    /// sample falls in. This is the primitive
    /// [`ProgramBuilder::init_region_from_dist`](crate::ProgramBuilder::init_region_from_dist)
    /// bakes work tables with: slot `i` of the table is `sample_at(i)`.
    pub fn sample_at(&self, index: i64, rng: &mut SplitMix64) -> i64 {
        if let Distribution::PhaseChange { low, high, period } = *self {
            let phase = index.max(0) / period.max(1);
            return if phase % 2 == 0 { low } else { high }.max(1);
        }
        self.sample(rng)
    }

    /// Draw one index-free sample (`sample_at` with index 0). All arms
    /// clamp their result to be >= 1 so a generated loop body never
    /// degenerates to zero work.
    pub fn sample(&self, rng: &mut SplitMix64) -> i64 {
        let v = match *self {
            Distribution::Fixed { value } => value,
            Distribution::Uniform { lo, hi } => {
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                lo + rng.next_below((hi - lo + 1) as u64) as i64
            }
            Distribution::Bursty {
                short,
                long,
                period,
            } => {
                if rng.next_below(period.max(1) as u64) == 0 {
                    long
                } else {
                    short
                }
            }
            Distribution::Geometric { mean, cap } => {
                // Count failures of a p = 1/mean trial: integer-only, so
                // bit-exact across platforms (no libm).
                let mean = mean.max(1) as u64;
                let mut k = 1i64;
                while k < cap && rng.next_below(mean) != 0 {
                    k += 1;
                }
                k
            }
            Distribution::Zipf { max } => {
                let max = max.max(1) as u64;
                // floor(log2(max)) + 1 octaves; each full octave is
                // equally likely, so density falls off ~1/x across
                // octave boundaries. Draws past `max` (possible only in
                // the top, partial octave) are rejected and redrawn,
                // which scales that octave's probability by its width —
                // without this, Zipf{max: 256} would hand the single
                // value 256 a whole octave's probability mass. Retries
                // are capped so sampling always terminates; the odds of
                // exhausting them are < 2^-64.
                let octaves = 64 - max.leading_zeros() as u64;
                let mut v = 1;
                for _ in 0..64 {
                    let lo = 1u64 << rng.next_below(octaves);
                    v = lo + rng.next_below(lo);
                    if v <= max {
                        break;
                    }
                    v = 1;
                }
                v as i64
            }
            Distribution::PhaseChange { low, .. } => low,
        };
        v.max(1)
    }

    /// Expected value (approximate for `Geometric`, which is capped).
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Fixed { value } => value as f64,
            Distribution::Uniform { lo, hi } => (lo.min(hi) + lo.max(hi)) as f64 / 2.0,
            Distribution::Bursty {
                short,
                long,
                period,
            } => {
                let p = 1.0 / period.max(1) as f64;
                p * long as f64 + (1.0 - p) * short as f64
            }
            Distribution::Geometric { mean, cap } => (mean as f64).min(cap as f64),
            Distribution::Zipf { max } => {
                // Mean of the discrete log-uniform sampler: each octave
                // is weighted by its (possibly partial) width, and
                // within an octave the mean is the midpoint.
                let max = max.max(1) as u64;
                let octaves = 64 - max.leading_zeros();
                let mut sum = 0.0;
                let mut weight = 0.0;
                for k in 0..octaves {
                    let lo = 1u64 << k;
                    let width = (lo.min(max + 1 - lo)) as f64;
                    let w = width / lo as f64;
                    sum += w * (lo as f64 + (width - 1.0) / 2.0);
                    weight += w;
                }
                sum / weight
            }
            Distribution::PhaseChange { low, high, .. } => (low + high) as f64 / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(d: Distribution, n: usize) -> Vec<i64> {
        let mut rng = SplitMix64::new(99);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn fixed_is_constant() {
        assert!(samples(Distribution::Fixed { value: 7 }, 100)
            .iter()
            .all(|&v| v == 7));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        for v in samples(Distribution::Uniform { lo: 3, hi: 9 }, 1000) {
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn bursty_mixes_short_and_long() {
        let vs = samples(
            Distribution::Bursty {
                short: 2,
                long: 50,
                period: 8,
            },
            1000,
        );
        let longs = vs.iter().filter(|&&v| v == 50).count();
        assert!(vs.iter().all(|&v| v == 2 || v == 50));
        // Expected 125 bursts; allow wide slack.
        assert!((40..=300).contains(&longs), "{longs} bursts");
    }

    #[test]
    fn geometric_respects_cap_and_floor() {
        let vs = samples(Distribution::Geometric { mean: 6, cap: 40 }, 2000);
        assert!(vs.iter().all(|&v| (1..=40).contains(&v)));
        let avg = vs.iter().sum::<i64>() as f64 / vs.len() as f64;
        assert!((2.0..=12.0).contains(&avg), "mean drifted: {avg}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = Distribution::Geometric { mean: 5, cap: 99 };
        assert_eq!(samples(d, 500), samples(d, 500));
    }

    #[test]
    fn zipf_is_bounded_and_heavy_tailed() {
        let vs = samples(Distribution::Zipf { max: 256 }, 4000);
        assert!(vs.iter().all(|&v| (1..=256).contains(&v)));
        // Every full octave is equally likely (~1/8 of samples each
        // after the partial-octave rejection), so roughly 1/8 of the
        // samples are exactly 1 and small values dominate large ones.
        let ones = vs.iter().filter(|&&v| v == 1).count();
        let small = vs.iter().filter(|&&v| v <= 16).count();
        let large = vs.iter().filter(|&&v| v > 128).count();
        assert!((200..=900).contains(&ones), "{ones} ones");
        assert!(small > large, "small {small} <= large {large}");
        assert!(large > 0, "tail never sampled");
        // The partial top octave (just {256} at max = 2^8) must be
        // weighted by its width, not handed a full octave's mass.
        let maxed = vs.iter().filter(|&&v| v == 256).count();
        assert!(maxed < 40, "P(max) inflated: {maxed}/4000");
    }

    #[test]
    fn phase_change_alternates_by_index() {
        let d = Distribution::PhaseChange {
            low: 3,
            high: 50,
            period: 4,
        };
        let mut rng = SplitMix64::new(1);
        let vs: Vec<i64> = (0..16).map(|i| d.sample_at(i, &mut rng)).collect();
        assert_eq!(&vs[0..4], &[3, 3, 3, 3]);
        assert_eq!(&vs[4..8], &[50, 50, 50, 50]);
        assert_eq!(&vs[8..12], &[3, 3, 3, 3]);
        assert_eq!(&vs[12..16], &[50, 50, 50, 50]);
    }

    #[test]
    fn sample_at_matches_sample_for_index_free_dists() {
        for d in [
            Distribution::Fixed { value: 5 },
            Distribution::Uniform { lo: 1, hi: 9 },
            Distribution::Zipf { max: 64 },
        ] {
            let mut a = SplitMix64::new(7);
            let mut b = SplitMix64::new(7);
            for i in 0..100 {
                assert_eq!(d.sample_at(i, &mut a), d.sample(&mut b), "{d:?} at {i}");
            }
        }
    }

    #[test]
    fn means_are_sensible() {
        assert_eq!(Distribution::Fixed { value: 4 }.mean(), 4.0);
        assert_eq!(Distribution::Uniform { lo: 2, hi: 6 }.mean(), 4.0);
        let b = Distribution::Bursty {
            short: 2,
            long: 18,
            period: 4,
        };
        assert_eq!(b.mean(), 6.0);
        let p = Distribution::PhaseChange {
            low: 2,
            high: 10,
            period: 8,
        };
        assert_eq!(p.mean(), 6.0);
        let z = Distribution::Zipf { max: 256 }.mean();
        assert!((1.0..=128.0).contains(&z), "zipf mean {z}");
    }
}
