//! Human-readable program listings.

use crate::program::Program;
use std::fmt;

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} ({} regs)", self.name, self.n_regs)?;
        for (i, r) in self.regions.iter().enumerate() {
            writeln!(f, "  region @{i} {} : {} x{}", r.name, r.elem, r.size)?;
        }
        for (id, block) in self.graph.iter() {
            let label = block.label.as_deref().unwrap_or("");
            let marker = if id == self.graph.entry {
                " (entry)"
            } else {
                ""
            };
            writeln!(f, "{id}: {label}{marker}")?;
            for inst in &block.insts {
                writeln!(f, "    {inst}")?;
            }
            writeln!(f, "    {}", block.term)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::inst::BinOp;

    #[test]
    fn listing_contains_blocks_and_insts() {
        let mut b = ProgramBuilder::new("show");
        let r = b.reg();
        b.const_i(r, 1);
        b.counted_loop(0, 3, 1, |b, _| {
            b.bin(r, BinOp::Add, r, 1i64);
        });
        let p = b.finish();
        let s = p.to_string();
        assert!(s.contains("program show"));
        assert!(s.contains("bb0"));
        assert!(s.contains("loop_header"));
        assert!(s.contains("Add"));
        assert!(s.contains("(entry)"));
    }
}
