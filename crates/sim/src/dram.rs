//! Bank/row-state DRAM timing model (the DRAMSim2 substitution).
//!
//! Each bank remembers its open row; an access to the open row pays the
//! row-hit latency, anything else pays precharge + activate (row miss).
//! This captures the first-order locality behaviour the evaluation is
//! sensitive to without modelling command scheduling.

/// DRAM timing state.
#[derive(Debug, Clone)]
pub struct Dram {
    banks: Vec<Option<u64>>,
    row_hit: u32,
    row_miss: u32,
    /// Per-bank next-free cycle (bank occupancy).
    busy_until: Vec<u64>,
    /// Accesses serviced.
    pub accesses: u64,
    /// Of which row hits.
    pub row_hits: u64,
}

/// Bytes per DRAM row (8 KB, typical).
const ROW_BYTES: u64 = 8192;
/// Bank occupancy per access.
const BANK_OCCUPANCY: u64 = 16;

impl Dram {
    /// A DRAM with `banks` banks and the given row-hit/miss latencies.
    pub fn new(banks: usize, row_hit: u32, row_miss: u32) -> Dram {
        Dram {
            banks: vec![None; banks.max(1)],
            row_hit,
            row_miss,
            busy_until: vec![0; banks.max(1)],
            accesses: 0,
            row_hits: 0,
        }
    }

    /// Completion cycle of an access to `addr` issued at `now`.
    pub fn access(&mut self, addr: u64, now: u64) -> u64 {
        self.accesses += 1;
        let row = addr / ROW_BYTES;
        let bank = (row as usize) % self.banks.len();
        let lat = if self.banks[bank] == Some(row) {
            self.row_hits += 1;
            self.row_hit
        } else {
            self.banks[bank] = Some(row);
            self.row_miss
        } as u64;
        let start = now.max(self.busy_until[bank]);
        self.busy_until[bank] = start + BANK_OCCUPANCY;
        start + lat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_cheaper_than_miss() {
        let mut d = Dram::new(4, 100, 200);
        let first = d.access(0, 0);
        assert_eq!(first, 200, "cold row misses");
        let second = d.access(64, 1000);
        assert_eq!(second, 1100, "open row hits");
        assert_eq!(d.row_hits, 1);
    }

    #[test]
    fn different_rows_conflict() {
        let mut d = Dram::new(1, 100, 200);
        d.access(0, 0);
        let t = d.access(ROW_BYTES, 0); // same bank, new row
        assert_eq!(t, 16 + 200, "bank busy then row miss");
    }

    #[test]
    fn banks_operate_independently() {
        let mut d = Dram::new(2, 100, 200);
        let a = d.access(0, 0); // bank 0
        let b = d.access(ROW_BYTES, 0); // bank 1
        assert_eq!(a, 200);
        assert_eq!(b, 200, "no conflict across banks");
    }
}
