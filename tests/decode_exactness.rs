//! The pre-decoded micro-op engine must be invisible: simulating with
//! `MachineConfig::engine` set to `Decoded` (the default) or `Tree` has
//! to produce bit-identical reports. These tests sweep every committed
//! scenario spec at Test scale through both engines on the three
//! machine shapes the benchmarks exercise (sequential, conventional,
//! HELIX-RC) and compare every observable: cycle counts, the final
//! memory digest, dynamic instruction counts, iteration bookkeeping,
//! and the full attribution table.

mod common;

use helix_rc::hcc::{compile, HccConfig};
use helix_rc::sim::{simulate, simulate_sequential, Bucket, EngineSel, MachineConfig, RunReport};
use helix_rc::workloads::{workload_from_spec, Scale, Workload};

const FUEL: u64 = 1 << 27;
const CORES: usize = 8;

fn committed_workloads() -> Vec<Workload> {
    common::committed_specs()
        .into_iter()
        .map(|(path, spec)| {
            workload_from_spec(&spec, Scale::Test)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
        })
        .collect()
}

fn assert_reports_identical(decoded: &RunReport, tree: &RunReport, what: &str) {
    assert_eq!(decoded.cycles, tree.cycles, "{what}: cycles diverge");
    assert_eq!(
        decoded.mem_digest, tree.mem_digest,
        "{what}: memory diverges"
    );
    assert_eq!(
        decoded.dyn_insts, tree.dyn_insts,
        "{what}: dynamic instructions diverge"
    );
    assert_eq!(
        decoded.iterations, tree.iterations,
        "{what}: iterations diverge"
    );
    assert_eq!(
        decoded.loop_invocations, tree.loop_invocations,
        "{what}: loop invocations diverge"
    );
    assert_eq!(
        decoded.protocol_errors, tree.protocol_errors,
        "{what}: protocol errors diverge"
    );
    assert_eq!(
        decoded.race_violations.len(),
        tree.race_violations.len(),
        "{what}: race violations diverge"
    );
    for b in Bucket::ALL {
        assert_eq!(
            decoded.attribution.total(b),
            tree.attribution.total(b),
            "{what}: attribution bucket {b:?} diverges"
        );
    }
    let (d, t) = (&decoded.mem_stats, &tree.mem_stats);
    assert_eq!(d.l1_hits, t.l1_hits, "{what}: L1 hits diverge");
    assert_eq!(d.l1_misses, t.l1_misses, "{what}: L1 misses diverge");
    assert_eq!(
        d.c2c_transfers, t.c2c_transfers,
        "{what}: C2C transfers diverge"
    );
}

/// The decoded engine is the configuration default; the tree
/// interpreter stays reachable as the cross-check.
#[test]
fn decoded_engine_is_the_default() {
    let cfg = MachineConfig::helix_rc(CORES);
    assert_eq!(cfg.engine, EngineSel::Decoded);
    assert_eq!(cfg.with_engine(EngineSel::Tree).engine, EngineSel::Tree);
}

/// Sequential execution: both engines, every committed scenario.
#[test]
fn engines_agree_sequential() {
    let cfg = MachineConfig::conventional(CORES);
    let tree_cfg = cfg.clone().with_engine(EngineSel::Tree);
    for w in committed_workloads() {
        let decoded = simulate_sequential(&w.program, &cfg, FUEL).expect(&w.name);
        let tree = simulate_sequential(&w.program, &tree_cfg, FUEL).expect(&w.name);
        assert_reports_identical(&decoded, &tree, &format!("{} (sequential)", w.name));
    }
}

/// HCCv3 code on the conventional machine: both engines, every
/// committed scenario.
#[test]
fn engines_agree_conventional() {
    let cfg = MachineConfig::conventional(CORES);
    let tree_cfg = cfg.clone().with_engine(EngineSel::Tree);
    for w in committed_workloads() {
        let compiled = compile(&w.program, &HccConfig::v3(CORES as u32)).expect(&w.name);
        let decoded = simulate(&compiled, &cfg, FUEL).expect(&w.name);
        let tree = simulate(&compiled, &tree_cfg, FUEL).expect(&w.name);
        assert_reports_identical(&decoded, &tree, &format!("{} (conventional)", w.name));
    }
}

/// HCCv3 code on the HELIX-RC machine (ring-decoupled communication):
/// both engines, every committed scenario.
#[test]
fn engines_agree_helix_rc() {
    let cfg = MachineConfig::helix_rc(CORES);
    let tree_cfg = cfg.clone().with_engine(EngineSel::Tree);
    for w in committed_workloads() {
        let compiled = compile(&w.program, &HccConfig::v3(CORES as u32)).expect(&w.name);
        let decoded = simulate(&compiled, &cfg, FUEL).expect(&w.name);
        let tree = simulate(&compiled, &tree_cfg, FUEL).expect(&w.name);
        assert_reports_identical(&decoded, &tree, &format!("{} (helix-rc)", w.name));
    }
}

/// The engines also agree with the naive (no event-skipping) cycle loop
/// crossed with both engines — four-way equality on a HELIX-RC machine.
#[test]
fn engines_agree_without_fast_forward() {
    let configs = [
        MachineConfig::helix_rc(CORES),
        MachineConfig::helix_rc(CORES).with_engine(EngineSel::Tree),
        MachineConfig::helix_rc(CORES).without_fast_forward(),
        MachineConfig::helix_rc(CORES)
            .with_engine(EngineSel::Tree)
            .without_fast_forward(),
    ];
    // One representative communication-heavy scenario keeps the 4-way
    // product affordable; the committed-scenario sweeps above cover
    // breadth.
    let ws = committed_workloads();
    let w = ws.first().expect("at least one scenario");
    let compiled = compile(&w.program, &HccConfig::v3(CORES as u32)).expect(&w.name);
    let reference = simulate(&compiled, &configs[0], FUEL).expect(&w.name);
    for cfg in &configs[1..] {
        let other = simulate(&compiled, cfg, FUEL).expect(&w.name);
        assert_reports_identical(&reference, &other, &format!("{} (4-way)", w.name));
    }
}

/// Out-of-order cores run the decoded engine's separate dispatch loop;
/// pin it against the tree engine too.
#[test]
fn engines_agree_out_of_order() {
    let mut cfg = MachineConfig::helix_rc(4);
    cfg.core = helix_rc::sim::CoreModel::OutOfOrder { width: 2, rob: 48 };
    let tree_cfg = cfg.clone().with_engine(EngineSel::Tree);
    for w in committed_workloads().into_iter().take(4) {
        let compiled = compile(&w.program, &HccConfig::v3(4)).expect(&w.name);
        let decoded = simulate(&compiled, &cfg, FUEL).expect(&w.name);
        let tree = simulate(&compiled, &tree_cfg, FUEL).expect(&w.name);
        assert_reports_identical(&decoded, &tree, &format!("{} (out-of-order)", w.name));
    }
}
