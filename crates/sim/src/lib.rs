//! # helix-sim
//!
//! Cycle-level executing multicore simulator for the HELIX-RC
//! reproduction (paper §6.1): the XIOSim/Zesto/DRAMSim2 substitution.
//!
//! The simulator *executes* IR programs (functional) while modelling
//! timing (cycle-level):
//!
//! * [`config`] — machine descriptions: 2-way in-order Atom-like cores or
//!   2-/4-way out-of-order Nehalem-like cores, the paper's cache
//!   hierarchy, coherence cache-to-cache latency, and the decoupling
//!   lattice of Fig. 8;
//! * [`memsys`] — private L1s, shared banked L2, [`dram`], and
//!   invalidation-based coherence;
//! * [`machine`] — the global cycle loop, DOACROSS iteration dispatch,
//!   wait/signal semantics under both policies, ring-cache integration,
//!   live-out resolution, and the loop barrier;
//! * [`attribution`] — the per-cycle overhead taxonomy of Fig. 12;
//! * [`race`] — a runtime race detector validating the compiler's
//!   guarantees on every parallel run.
//!
//! # Examples
//!
//! ```
//! use helix_ir::{AddrExpr, BinOp, ProgramBuilder, Ty};
//! use helix_sim::{simulate, simulate_sequential, MachineConfig};
//!
//! let mut b = ProgramBuilder::new("axpy");
//! let data = b.region("data", 1 << 16, Ty::I64);
//! b.counted_loop(0, 1000, 1, |b, i| {
//!     let x = b.reg();
//!     b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
//!     b.alu_chain(x, 8);
//!     b.store(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
//! });
//! let program = b.finish();
//!
//! let compiled = helix_hcc::compile(&program, &helix_hcc::HccConfig::v3(16))?;
//! let seq = simulate_sequential(&program, &MachineConfig::conventional(16), 1 << 26)?;
//! let par = simulate(&compiled, &MachineConfig::helix_rc(16), 1 << 26)?;
//! assert!(par.race_violations.is_empty());
//! assert!(par.speedup_vs(seq.cycles) > 4.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod attribution;
pub mod branch;
pub mod config;
pub mod core;
pub mod dram;
pub mod machine;
pub mod memsys;
pub mod race;
pub mod session;
pub mod sync;

pub use attribution::{Attribution, Bucket};
pub use config::{CacheConfig, CoreModel, DecoupleConfig, EngineSel, MachineConfig, SyncModel};
pub use machine::{simulate, simulate_sequential, Machine, MachineSpares, RunReport, SimError};
pub use memsys::{MemStats, MemSystem};
pub use race::RaceViolation;
pub use session::{LaneConfig, LaneResult, MachinePool, SimSession};
