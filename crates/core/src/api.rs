//! The unified request/response API every entry point routes through.
//!
//! One typed surface — [`Request`] in, [`Response`] out, via
//! [`execute`] — backs the `helix` CLI subcommands (`run`, `check`,
//! `campaign`, `diff`, `explore`), the resident service (`helix
//! serve`), and the submit client. The legacy free functions
//! ([`run_scenario`], [`run_campaign`](crate::campaign::run_campaign)
//! and friends) remain
//! as thin conveniences over the same machinery.
//!
//! [`execute`] never returns `Err`: every failure becomes
//! [`Response::Error`] carrying a structured
//! [`HelixError`], whose
//! [`ErrorKind::code`](crate::error::ErrorKind::code) is the stable
//! machine-readable error code of the wire protocol and whose
//! [`exit_code`](crate::error::ErrorKind::exit_code) preserves the
//! CLI's 0/1/2/3 contract (see [`Response::exit_code`]).
//!
//! # Wire format
//!
//! Requests and responses serialize to single-line JSON objects with a
//! `{"v": 1, "type": ...}` envelope ([`encode_request`] /
//! [`decode_request`] / [`encode_response`] / [`decode_response`]),
//! newline-delimited on the service socket. The vendored `serde` is
//! inert, so this module carries its own small JSON reader/writer; see
//! `docs/SERVICE.md` for the full schema.

use crate::campaign::{
    load_campaign, run_campaign_stats, CampaignReport, CampaignRunOptions, CampaignRunStats,
};
use crate::error::{ErrorKind, HelixError};
use crate::explore::{run_explore, ExploreOptions, ExploreReport};
use crate::report::{json_escape, SCHEMA_VERSION};
use crate::resilient::{fnv1a, FaultPlan, Journal, FNV_OFFSET};
use crate::scenario::{run_scenario, RunOverrides, ScenarioReport};
use helix_workloads::{campaign_from_inline, generate, Scale, ScenarioSpec};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Exit code for a campaign that completed but has failed cells.
pub const EXIT_CELL_FAILURES: u8 = 3;

/// One consolidated set of execution options, absorbing the historical
/// [`RunOverrides`] (scenario side) / [`CampaignRunOptions`] (campaign
/// side) split. Build with the `with_*` methods; unset fields defer to
/// the spec.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOptions {
    /// Problem scale. `None` keeps the campaign file's scale (or `Test`
    /// for bare scenarios).
    pub scale: Option<Scale>,
    /// Override the core count (scenarios only).
    pub cores: Option<usize>,
    /// Override the simulation cycle budget (scenarios only).
    pub fuel: Option<u64>,
    /// Override the campaign's `[resilience] max_retries`.
    pub max_retries: Option<i64>,
    /// Override the campaign's `[resilience] cycle_budget`.
    pub cycle_budget: Option<i64>,
    /// Override the campaign's `[resilience] wall_budget_ms`.
    pub wall_budget_ms: Option<i64>,
    /// Journal completed cells (and whole scenario reports) under this
    /// directory. Local execution only — never carried over the wire;
    /// the service supplies its own journal.
    pub journal: Option<PathBuf>,
    /// Answer journaled entries instead of re-running them. Requires
    /// `journal`.
    pub resume: bool,
    /// Seeded chaos faults. Local execution only.
    pub faults: Option<FaultPlan>,
    /// Lane width for batched campaign simulation. `None` (or `<= 1`)
    /// runs every grid cell standalone; `> 1` batches each scenario's
    /// cells over a shared decode, stepping up to this many simulations
    /// in lockstep. Purely an execution knob: reports are byte-identical
    /// either way. Carried over the wire as the v1 `lanes` field.
    pub lanes: Option<usize>,
    /// Attach the per-stall-cause cycle breakdown (Fig. 12 buckets) to
    /// every scenario run row. Diagnostic output only — deterministic,
    /// and absent unless requested. Carried over the wire as the v1
    /// `attribution` field.
    pub attribution: bool,
}

impl RunOptions {
    /// Options that run everything as specified, nothing overridden.
    pub fn new() -> RunOptions {
        RunOptions::default()
    }

    /// Set the problem scale.
    pub fn with_scale(mut self, scale: Scale) -> RunOptions {
        self.scale = Some(scale);
        self
    }

    /// Override the core count.
    pub fn with_cores(mut self, cores: usize) -> RunOptions {
        self.cores = Some(cores);
        self
    }

    /// Override the cycle budget.
    pub fn with_fuel(mut self, fuel: u64) -> RunOptions {
        self.fuel = Some(fuel);
        self
    }

    /// Override `[resilience] max_retries`.
    pub fn with_max_retries(mut self, retries: i64) -> RunOptions {
        self.max_retries = Some(retries);
        self
    }

    /// Override `[resilience] cycle_budget`.
    pub fn with_cycle_budget(mut self, budget: i64) -> RunOptions {
        self.cycle_budget = Some(budget);
        self
    }

    /// Override `[resilience] wall_budget_ms`.
    pub fn with_wall_budget_ms(mut self, ms: i64) -> RunOptions {
        self.wall_budget_ms = Some(ms);
        self
    }

    /// Journal completed work under `dir`.
    pub fn with_journal(mut self, dir: impl Into<PathBuf>) -> RunOptions {
        self.journal = Some(dir.into());
        self
    }

    /// Answer journaled entries instead of re-running.
    pub fn with_resume(mut self, resume: bool) -> RunOptions {
        self.resume = resume;
        self
    }

    /// Inject seeded chaos faults.
    pub fn with_faults(mut self, faults: FaultPlan) -> RunOptions {
        self.faults = Some(faults);
        self
    }

    /// Batch campaign cells `lanes` simulations at a time.
    pub fn with_lanes(mut self, lanes: usize) -> RunOptions {
        self.lanes = Some(lanes);
        self
    }

    /// Attach the per-stall-cause breakdown to scenario run rows.
    pub fn with_attribution(mut self, attribution: bool) -> RunOptions {
        self.attribution = attribution;
        self
    }

    /// The scenario-side view of these options.
    pub fn overrides(&self) -> RunOverrides {
        RunOverrides {
            cores: self.cores,
            fuel: self.fuel,
            attribution: self.attribution,
        }
    }

    /// The campaign-execution-side view of these options.
    pub fn campaign_options(&self) -> CampaignRunOptions {
        CampaignRunOptions {
            journal: self.journal.clone(),
            resume: self.resume,
            faults: self.faults.clone(),
            lanes: self.lanes.unwrap_or(1),
            engine: None,
            fast_forward: true,
        }
    }

    /// Effective scale for a bare scenario run.
    fn scenario_scale(&self) -> Scale {
        self.scale.unwrap_or(Scale::Test)
    }
}

/// Where a scenario spec comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecSource {
    /// A TOML file on the local filesystem.
    Path(PathBuf),
    /// Inline TOML text (the shape service submissions carry — the
    /// server never reads the client's filesystem).
    Inline(String),
}

impl SpecSource {
    fn load(&self) -> Result<ScenarioSpec, HelixError> {
        match self {
            SpecSource::Path(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| {
                    HelixError::io(format!("cannot read '{}': {e}", path.display()))
                })?;
                ScenarioSpec::from_toml(&text)
                    .map_err(|e| HelixError::from(e).with_file(path.display().to_string()))
            }
            SpecSource::Inline(text) => ScenarioSpec::from_toml(text).map_err(HelixError::from),
        }
    }

    fn inline_text(&self) -> Result<String, HelixError> {
        match self {
            SpecSource::Inline(text) => Ok(text.clone()),
            SpecSource::Path(path) => Err(HelixError::usage(format!(
                "path source '{}' cannot cross the wire: resolve to an inline payload first",
                path.display()
            ))),
        }
    }
}

/// Where a campaign (and its scenario set) comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignSource {
    /// A campaign TOML file; its scenario patterns resolve against the
    /// local filesystem.
    Path(PathBuf),
    /// Inline payloads: the campaign TOML plus the full TOML text of
    /// every scenario (patterns in the campaign are ignored).
    Inline {
        /// Campaign TOML text.
        campaign: String,
        /// One TOML document per scenario.
        scenarios: Vec<String>,
    },
}

/// A typed request against the unified API.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one scenario end-to-end (generate → compile → simulate).
    RunScenario {
        /// The scenario spec.
        source: SpecSource,
        /// Execution options.
        options: RunOptions,
    },
    /// Run a cross-scenario campaign sweep.
    RunCampaign {
        /// The campaign and its scenarios.
        source: CampaignSource,
        /// Execution options.
        options: RunOptions,
    },
    /// Parse, validate, and generate a scenario without simulating.
    Check {
        /// The scenario spec.
        source: SpecSource,
        /// Problem scale to generate at.
        scale: Scale,
    },
    /// Compare two report documents (schema version first, then bytes).
    Diff {
        /// Display name of the first report (e.g. its file name).
        a_name: String,
        /// Full text of the first report.
        a_text: String,
        /// Display name of the second report.
        b_name: String,
        /// Full text of the second report.
        b_text: String,
    },
    /// Property-driven scenario fuzzing: examine a seed-deterministic
    /// stream of generated specs through the differential oracle
    /// battery (see [`crate::explore`]).
    Explore {
        /// Explore options (seed, budget, cores, fuel, export dir).
        options: ExploreOptions,
    },
    /// Service liveness/counters probe (meaningful against `helix
    /// serve`; local [`execute`] answers with zeroed counters).
    Status,
    /// Ask the service to drain and exit.
    Shutdown,
}

/// Live counters of a running service, answered to [`Request::Status`].
/// No wall-clock fields: the counters are functions of the request
/// history only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStatus {
    /// Size of the bounded worker pool.
    pub workers: usize,
    /// Requests accepted since the service started.
    pub requests: u64,
    /// Requests currently executing or queued for a worker permit.
    pub inflight: u64,
    /// Campaign grid cells enumerated across all submissions.
    pub cells: u64,
    /// Cells (and whole scenario reports) answered from the journal.
    pub journal_hits: u64,
    /// Cells actually simulated.
    pub simulated: u64,
}

/// A typed response from the unified API. Every [`Request`] variant has
/// exactly one success shape; failures are [`Response::Error`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed scenario run.
    Scenario {
        /// The report as JSON (exactly what `--out` would write).
        json: String,
        /// Whether the whole report was answered from the journal
        /// without simulating.
        cached: bool,
        /// The structured report. Present on local execution; `None`
        /// after a wire round-trip (the JSON carries the data).
        report: Option<Box<ScenarioReport>>,
    },
    /// A completed campaign run.
    Campaign {
        /// The deterministic report JSON (byte-identical across runs of
        /// the same campaign + seed, journal-answered or not).
        json: String,
        /// Paper-style text tables.
        table: String,
        /// Execution counters — how many cells were simulated vs
        /// answered from the journal. Deliberately outside the report
        /// so hit counts never break report byte-identity.
        stats: CampaignRunStats,
        /// The structured report. Present on local execution; `None`
        /// after a wire round-trip.
        report: Option<Box<CampaignReport>>,
    },
    /// A scenario passed [`Request::Check`].
    Checked {
        /// Scenario name.
        name: String,
        /// Region count of the spec.
        regions: usize,
        /// Phase count of the spec.
        phases: usize,
        /// Static instruction count of the generated program.
        insts: usize,
    },
    /// Outcome of a [`Request::Diff`].
    Diff {
        /// Whether the two documents are byte-identical.
        identical: bool,
        /// Human-readable detail: "reports identical", a named schema
        /// version mismatch, or the differing line region.
        detail: String,
    },
    /// A completed explore run.
    Explore {
        /// The deterministic report JSON (byte-identical for the same
        /// seed + budget + cores + fuel).
        json: String,
        /// Oracle failures found (0 means every check passed).
        failures: usize,
        /// The structured report. Present on local execution; `None`
        /// after a wire round-trip.
        report: Option<Box<ExploreReport>>,
    },
    /// Service counters.
    Status(ServiceStatus),
    /// The service acknowledged [`Request::Shutdown`] and will exit.
    ShuttingDown,
    /// The request failed; the error carries a stable machine-readable
    /// code and optional file/field/value context.
    Error(HelixError),
}

impl Response {
    /// The CLI exit code this response maps to: errors keep the
    /// usage/hard-failure split (2/1), a campaign that completed with
    /// failed cells exits [`EXIT_CELL_FAILURES`], a non-identical diff
    /// exits 1, everything else 0.
    pub fn exit_code(&self) -> u8 {
        match self {
            Response::Error(e) => e.kind.exit_code(),
            Response::Campaign { stats, .. } if stats.failed > 0 => EXIT_CELL_FAILURES,
            Response::Diff { identical, .. } if !identical => 1,
            Response::Explore { failures, .. } if *failures > 0 => 1,
            _ => 0,
        }
    }
}

/// Execute a request locally. Never returns `Err` — failures become
/// [`Response::Error`] so callers (CLI, service loop) have exactly one
/// result shape to render.
pub fn execute(request: Request) -> Response {
    match try_execute(request) {
        Ok(response) => response,
        Err(e) => Response::Error(e),
    }
}

/// Reject option values no execution path can honor. `lanes == 0` in
/// particular used to be silently clamped to 1; it is a usage error
/// (the CLI rejects it the same way before a request is ever built).
fn validate_options(options: &RunOptions) -> Result<(), HelixError> {
    if options.lanes == Some(0) {
        return Err(HelixError::usage("lanes must be >= 1"));
    }
    Ok(())
}

fn try_execute(request: Request) -> Result<Response, HelixError> {
    match request {
        Request::RunScenario { source, options } => {
            validate_options(&options)?;
            run_scenario_request(&source, &options)
        }
        Request::RunCampaign { source, options } => {
            validate_options(&options)?;
            let (mut spec, scenarios) = match &source {
                CampaignSource::Path(path) => load_campaign(path)?,
                CampaignSource::Inline {
                    campaign,
                    scenarios,
                } => campaign_from_inline(campaign, scenarios)?,
            };
            if let Some(scale) = options.scale {
                spec.scale = scale;
            }
            if let Some(retries) = options.max_retries {
                spec.resilience.max_retries = retries;
            }
            if let Some(budget) = options.cycle_budget {
                spec.resilience.cycle_budget = budget;
            }
            if let Some(ms) = options.wall_budget_ms {
                spec.resilience.wall_budget_ms = ms;
            }
            spec.validate()?;
            let (report, stats) =
                run_campaign_stats(&spec, &scenarios, &options.campaign_options())?;
            Ok(Response::Campaign {
                json: report.to_json(),
                table: report.table(),
                stats,
                report: Some(Box::new(report)),
            })
        }
        Request::Check { source, scale } => {
            let spec = source.load()?;
            let program = generate(&spec, scale)
                .map_err(|e| HelixError::from(e).with_field(spec.name.clone()))?;
            program.validate().map_err(|e| {
                HelixError::new(
                    ErrorKind::Spec,
                    format!("{}: generated program invalid: {e:?}", spec.name),
                )
            })?;
            Ok(Response::Checked {
                name: spec.name.clone(),
                regions: spec.regions.len(),
                phases: spec.phases.len(),
                insts: program.graph.inst_count(),
            })
        }
        Request::Diff {
            a_name,
            a_text,
            b_name,
            b_text,
        } => {
            let (identical, detail) = diff_reports(&a_name, &a_text, &b_name, &b_text);
            Ok(Response::Diff { identical, detail })
        }
        Request::Explore { options } => {
            let report = run_explore(&options)?;
            Ok(Response::Explore {
                json: report.to_json(),
                failures: report.failures.len(),
                report: Some(Box::new(report)),
            })
        }
        Request::Status => Ok(Response::Status(ServiceStatus::default())),
        Request::Shutdown => Ok(Response::ShuttingDown),
    }
}

/// Run (or journal-answer) one scenario. The whole report is cached
/// under a content digest of everything that determines it, so a
/// repeat submission returns the stored bytes without simulating.
fn run_scenario_request(source: &SpecSource, options: &RunOptions) -> Result<Response, HelixError> {
    let spec = source.load()?;
    let scale = options.scenario_scale();
    let journal = match &options.journal {
        Some(dir) => Some(Journal::open(dir)?),
        None => None,
    };
    let digest = {
        let cores = options.cores.unwrap_or(spec.run.cores as usize);
        let fuel = options.fuel.unwrap_or(spec.run.fuel);
        let mut h = fnv1a(FNV_OFFSET, env!("CARGO_PKG_VERSION").as_bytes());
        h = fnv1a(h, format!("{scale:?}").as_bytes());
        h = fnv1a(h, &(cores as u64).to_le_bytes());
        h = fnv1a(h, &fuel.to_le_bytes());
        h = fnv1a(h, b"scenario-report");
        fnv1a(h, spec.to_toml().as_bytes())
    };
    if options.resume {
        if let Some(json) = journal
            .as_ref()
            .and_then(|j| j.load(digest))
            .and_then(|text| text.strip_prefix("helix-scenario v1\n").map(str::to_string))
        {
            return Ok(Response::Scenario {
                json,
                cached: true,
                report: None,
            });
        }
    }
    let report = run_scenario(&spec, scale, options.overrides())
        .map_err(|e| e.with_field(spec.name.clone()))?;
    let json = report.to_json();
    if let Some(j) = &journal {
        let _ = j.store(digest, &format!("helix-scenario v1\n{json}"));
    }
    Ok(Response::Scenario {
        json,
        cached: false,
        report: Some(Box::new(report)),
    })
}

/// Extract the `schema_version` stamp of a report document, if any.
fn schema_version_of(text: &str) -> Option<u64> {
    let rest = text.split("\"schema_version\":").nth(1)?;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Compare two report documents. Schema versions are checked first: a
/// version mismatch is *named* instead of dumped as line noise. Equal
/// (or absent) versions fall through to a byte comparison whose detail
/// trims the common prefix/suffix lines and caps long middles.
pub fn diff_reports(a_name: &str, a_text: &str, b_name: &str, b_text: &str) -> (bool, String) {
    let (va, vb) = (schema_version_of(a_text), schema_version_of(b_text));
    if let (Some(va), Some(vb)) = (va, vb) {
        if va != vb {
            return (
                false,
                format!(
                    "schema version mismatch: {a_name} has schema_version {va}, \
                     {b_name} has schema_version {vb} (current is {SCHEMA_VERSION}); \
                     regenerate the stale report before comparing"
                ),
            );
        }
    }
    if a_text == b_text {
        return (true, format!("reports identical ({} bytes)", a_text.len()));
    }
    let la: Vec<&str> = a_text.lines().collect();
    let lb: Vec<&str> = b_text.lines().collect();
    let common_prefix = la.iter().zip(&lb).take_while(|(x, y)| x == y).count();
    let common_suffix = la[common_prefix..]
        .iter()
        .rev()
        .zip(lb[common_prefix..].iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    let cap = 40;
    let mut detail = String::new();
    let mut print_side = |tag: &str, file: &str, lines: &[&str]| {
        let _ = writeln!(
            detail,
            "--- {tag} {file} (lines {}..{})",
            common_prefix + 1,
            common_prefix + lines.len()
        );
        for line in lines.iter().take(cap) {
            let _ = writeln!(detail, "{tag} {line}");
        }
        if lines.len() > cap {
            let _ = writeln!(detail, "{tag} ... ({} more line(s))", lines.len() - cap);
        }
    };
    print_side("<", a_name, &la[common_prefix..la.len() - common_suffix]);
    print_side(">", b_name, &lb[common_prefix..lb.len() - common_suffix]);
    let _ = write!(
        detail,
        "reports differ: {} vs {} line(s), {} shared at head, {} at tail",
        la.len(),
        lb.len(),
        common_prefix,
        common_suffix
    );
    (false, detail)
}

// ---------------------------------------------------------------------
// Wire format: single-line JSON with a {"v": 1, "type": ...} envelope.
// ---------------------------------------------------------------------

/// Wire protocol version carried in every envelope.
pub const WIRE_VERSION: u64 = 1;

/// A parsed JSON value — the reader half of the wire codec. The
/// vendored `serde` is inert and `helix_bench`'s parser lives
/// downstream of this crate, so the API carries its own minimal
/// implementation.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (f64 carries all wire-relevant integers exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document. Errors are
    /// [`ErrorKind::Protocol`] with a byte offset.
    pub fn parse(text: &str) -> Result<Json, HelixError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric payload as i64, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> HelixError {
        HelixError::protocol(format!("invalid JSON at byte {}: {message}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), HelixError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, HelixError> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(self.err(&format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, HelixError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, HelixError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("malformed number '{text}'")))
    }

    fn string(&mut self) -> Result<String, HelixError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xdc00..0xe000).contains(&unit) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(unit).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(&format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("non-UTF-8 string content"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, HelixError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-UTF-8 \\u escape"))?;
        let unit = u32::from_str_radix(text, 16).map_err(|_| self.err("malformed \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn array(&mut self) -> Result<Json, HelixError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, HelixError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, ", \"{key}\": \"{}\"", json_escape(value));
}

fn encode_options(options: &RunOptions) -> Result<String, HelixError> {
    if options.journal.is_some() || options.faults.is_some() || options.resume {
        return Err(HelixError::usage(
            "journal/resume/chaos options are local-execution only and cannot cross the wire \
             (the service owns its journal)",
        ));
    }
    let mut out = String::from("{");
    let mut first = true;
    let mut field = |key: &str, value: String| {
        let sep = if first { "" } else { ", " };
        first = false;
        format!("{sep}\"{key}\": {value}")
    };
    if let Some(scale) = options.scale {
        out.push_str(&field(
            "scale",
            format!("\"{}\"", if scale == Scale::Full { "full" } else { "test" }),
        ));
    }
    if let Some(cores) = options.cores {
        out.push_str(&field("cores", cores.to_string()));
    }
    if let Some(fuel) = options.fuel {
        out.push_str(&field("fuel", fuel.to_string()));
    }
    if let Some(retries) = options.max_retries {
        out.push_str(&field("max_retries", retries.to_string()));
    }
    if let Some(budget) = options.cycle_budget {
        out.push_str(&field("cycle_budget", budget.to_string()));
    }
    if let Some(ms) = options.wall_budget_ms {
        out.push_str(&field("wall_budget_ms", ms.to_string()));
    }
    if let Some(lanes) = options.lanes {
        out.push_str(&field("lanes", lanes.to_string()));
    }
    if options.attribution {
        out.push_str(&field("attribution", "true".into()));
    }
    out.push('}');
    Ok(out)
}

fn decode_options(value: Option<&Json>) -> Result<RunOptions, HelixError> {
    let mut options = RunOptions::default();
    let Some(obj) = value else {
        return Ok(options);
    };
    let int_of = |field: &Json, key: &str| {
        field
            .as_i64()
            .ok_or_else(|| HelixError::protocol(format!("options.{key} must be an integer")))
    };
    if let Json::Obj(fields) = obj {
        for (key, field) in fields {
            match key.as_str() {
                "scale" => {
                    options.scale = Some(match field.as_str() {
                        Some("test") => Scale::Test,
                        Some("full") => Scale::Full,
                        _ => {
                            return Err(HelixError::protocol(
                                "options.scale must be \"test\" or \"full\"",
                            ))
                        }
                    });
                }
                "cores" => options.cores = Some(int_of(field, "cores")? as usize),
                "fuel" => options.fuel = Some(int_of(field, "fuel")? as u64),
                "max_retries" => options.max_retries = Some(int_of(field, "max_retries")?),
                "cycle_budget" => options.cycle_budget = Some(int_of(field, "cycle_budget")?),
                "wall_budget_ms" => options.wall_budget_ms = Some(int_of(field, "wall_budget_ms")?),
                "lanes" => {
                    let lanes = int_of(field, "lanes")?;
                    if lanes < 1 {
                        return Err(HelixError::protocol("options.lanes must be >= 1"));
                    }
                    options.lanes = Some(lanes as usize);
                }
                "attribution" => {
                    options.attribution = field.as_bool().ok_or_else(|| {
                        HelixError::protocol("options.attribution must be a boolean")
                    })?;
                }
                // Unknown fields are skipped, not rejected: a v1 client
                // newer than the server may send options this build
                // does not know (exactly how `lanes` itself rolled
                // out), and execution options never change report
                // content — ignoring one degrades performance, not
                // correctness.
                _ => {}
            }
        }
        Ok(options)
    } else {
        Err(HelixError::protocol("options must be an object"))
    }
}

/// Serialize a request to its single-line wire form.
///
/// Path sources and local-only options (journal, resume, chaos) are
/// rejected with [`ErrorKind::Usage`]: the client must resolve files to
/// inline payloads, and the service owns its own journal.
pub fn encode_request(request: &Request) -> Result<String, HelixError> {
    let mut out = format!("{{\"v\": {WIRE_VERSION}");
    match request {
        Request::RunScenario { source, options } => {
            out.push_str(", \"type\": \"run_scenario\"");
            push_str_field(&mut out, "spec", &source.inline_text()?);
            let _ = write!(out, ", \"options\": {}", encode_options(options)?);
        }
        Request::RunCampaign { source, options } => {
            let (campaign, scenarios) = match source {
                CampaignSource::Inline {
                    campaign,
                    scenarios,
                } => (campaign, scenarios),
                CampaignSource::Path(path) => {
                    return Err(HelixError::usage(format!(
                        "path source '{}' cannot cross the wire: resolve to inline payloads first",
                        path.display()
                    )))
                }
            };
            out.push_str(", \"type\": \"run_campaign\"");
            push_str_field(&mut out, "campaign", campaign);
            let items: Vec<String> = scenarios
                .iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect();
            let _ = write!(out, ", \"scenarios\": [{}]", items.join(", "));
            let _ = write!(out, ", \"options\": {}", encode_options(options)?);
        }
        Request::Check { source, scale } => {
            out.push_str(", \"type\": \"check\"");
            push_str_field(&mut out, "spec", &source.inline_text()?);
            push_str_field(
                &mut out,
                "scale",
                if *scale == Scale::Full {
                    "full"
                } else {
                    "test"
                },
            );
        }
        Request::Diff {
            a_name,
            a_text,
            b_name,
            b_text,
        } => {
            out.push_str(", \"type\": \"diff\"");
            push_str_field(&mut out, "a_name", a_name);
            push_str_field(&mut out, "a_text", a_text);
            push_str_field(&mut out, "b_name", b_name);
            push_str_field(&mut out, "b_text", b_text);
        }
        Request::Explore { options } => {
            if options.export_dir.is_some() {
                return Err(HelixError::usage(
                    "the explore export directory is local-execution only and cannot cross \
                     the wire (the report JSON already embeds every shrunk TOML)",
                ));
            }
            out.push_str(", \"type\": \"explore\"");
            let _ = write!(
                out,
                ", \"seed\": {}, \"budget\": {}, \"cores\": {}, \"fuel\": {}",
                options.seed, options.budget, options.cores, options.fuel
            );
        }
        Request::Status => out.push_str(", \"type\": \"status\""),
        Request::Shutdown => out.push_str(", \"type\": \"shutdown\""),
    }
    out.push('}');
    Ok(out)
}

fn envelope(line: &str) -> Result<Json, HelixError> {
    let value = Json::parse(line)?;
    match value.get("v").and_then(Json::as_u64) {
        Some(WIRE_VERSION) => Ok(value),
        Some(v) => Err(HelixError::protocol(format!(
            "unsupported protocol version {v} (this build speaks {WIRE_VERSION})"
        ))),
        None => Err(HelixError::protocol("missing protocol version field \"v\"")),
    }
}

fn str_field<'a>(value: &'a Json, key: &str) -> Result<&'a str, HelixError> {
    value
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| HelixError::protocol(format!("missing or non-string field '{key}'")))
}

/// Parse one wire line into a typed [`Request`].
pub fn decode_request(line: &str) -> Result<Request, HelixError> {
    let value = envelope(line)?;
    let kind = str_field(&value, "type")?;
    match kind {
        "run_scenario" => Ok(Request::RunScenario {
            source: SpecSource::Inline(str_field(&value, "spec")?.to_string()),
            options: decode_options(value.get("options"))?,
        }),
        "run_campaign" => {
            let scenarios = value
                .get("scenarios")
                .and_then(Json::as_array)
                .ok_or_else(|| HelixError::protocol("missing or non-array field 'scenarios'"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| HelixError::protocol("scenarios[] entries must be strings"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::RunCampaign {
                source: CampaignSource::Inline {
                    campaign: str_field(&value, "campaign")?.to_string(),
                    scenarios,
                },
                options: decode_options(value.get("options"))?,
            })
        }
        "check" => Ok(Request::Check {
            source: SpecSource::Inline(str_field(&value, "spec")?.to_string()),
            scale: match str_field(&value, "scale")? {
                "test" => Scale::Test,
                "full" => Scale::Full,
                other => {
                    return Err(HelixError::protocol(format!(
                        "scale must be \"test\" or \"full\", got \"{other}\""
                    )))
                }
            },
        }),
        "diff" => Ok(Request::Diff {
            a_name: str_field(&value, "a_name")?.to_string(),
            a_text: str_field(&value, "a_text")?.to_string(),
            b_name: str_field(&value, "b_name")?.to_string(),
            b_text: str_field(&value, "b_text")?.to_string(),
        }),
        "explore" => {
            let defaults = ExploreOptions::default();
            let int_of = |key: &str, fallback: u64| -> Result<u64, HelixError> {
                match value.get(key) {
                    None => Ok(fallback),
                    Some(v) => v.as_u64().ok_or_else(|| {
                        HelixError::protocol(format!("'{key}' must be a non-negative integer"))
                    }),
                }
            };
            Ok(Request::Explore {
                options: ExploreOptions {
                    seed: int_of("seed", defaults.seed)?,
                    budget: int_of("budget", defaults.budget as u64)? as usize,
                    cores: int_of("cores", defaults.cores as u64)? as usize,
                    fuel: int_of("fuel", defaults.fuel)?,
                    export_dir: None,
                },
            })
        }
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(HelixError::protocol(format!(
            "unknown request type '{other}'"
        ))),
    }
}

fn encode_stats(stats: &CampaignRunStats) -> String {
    format!(
        "{{\"cells\": {}, \"journal_hits\": {}, \"simulated\": {}, \"failed\": {}, \
         \"derived_hits\": {}, \"derived_computed\": {}}}",
        stats.cells,
        stats.journal_hits,
        stats.simulated,
        stats.failed,
        stats.derived_hits,
        stats.derived_computed
    )
}

fn decode_stats(value: Option<&Json>) -> Result<CampaignRunStats, HelixError> {
    let obj = value.ok_or_else(|| HelixError::protocol("missing field 'stats'"))?;
    let count = |key: &str| {
        obj.get(key)
            .and_then(Json::as_u64)
            .map(|v| v as usize)
            .ok_or_else(|| HelixError::protocol(format!("missing or non-integer stats.{key}")))
    };
    Ok(CampaignRunStats {
        cells: count("cells")?,
        journal_hits: count("journal_hits")?,
        simulated: count("simulated")?,
        failed: count("failed")?,
        derived_hits: count("derived_hits")?,
        derived_computed: count("derived_computed")?,
    })
}

/// Serialize a response to its single-line wire form. Structured
/// reports do not cross the wire — the report JSON string carries the
/// data; [`decode_response`] yields `report: None`.
pub fn encode_response(response: &Response) -> String {
    let mut out = format!("{{\"v\": {WIRE_VERSION}");
    match response {
        Response::Scenario { json, cached, .. } => {
            out.push_str(", \"type\": \"scenario\"");
            push_str_field(&mut out, "json", json);
            let _ = write!(out, ", \"cached\": {cached}");
        }
        Response::Campaign {
            json, table, stats, ..
        } => {
            out.push_str(", \"type\": \"campaign\"");
            push_str_field(&mut out, "json", json);
            push_str_field(&mut out, "table", table);
            let _ = write!(out, ", \"stats\": {}", encode_stats(stats));
        }
        Response::Checked {
            name,
            regions,
            phases,
            insts,
        } => {
            out.push_str(", \"type\": \"checked\"");
            push_str_field(&mut out, "name", name);
            let _ = write!(
                out,
                ", \"regions\": {regions}, \"phases\": {phases}, \"insts\": {insts}"
            );
        }
        Response::Diff { identical, detail } => {
            out.push_str(", \"type\": \"diff\"");
            let _ = write!(out, ", \"identical\": {identical}");
            push_str_field(&mut out, "detail", detail);
        }
        Response::Explore { json, failures, .. } => {
            out.push_str(", \"type\": \"explore\"");
            push_str_field(&mut out, "json", json);
            let _ = write!(out, ", \"failures\": {failures}");
        }
        Response::Status(status) => {
            out.push_str(", \"type\": \"status\"");
            let _ = write!(
                out,
                ", \"workers\": {}, \"requests\": {}, \"inflight\": {}, \"cells\": {}, \
                 \"journal_hits\": {}, \"simulated\": {}",
                status.workers,
                status.requests,
                status.inflight,
                status.cells,
                status.journal_hits,
                status.simulated
            );
        }
        Response::ShuttingDown => out.push_str(", \"type\": \"shutting_down\""),
        Response::Error(e) => {
            out.push_str(", \"type\": \"error\"");
            push_str_field(&mut out, "code", e.kind.code());
            push_str_field(&mut out, "message", &e.message);
            if let Some(file) = &e.file {
                push_str_field(&mut out, "file", file);
            }
            if let Some(field) = &e.field {
                push_str_field(&mut out, "field", field);
            }
            if let Some(value) = &e.value {
                push_str_field(&mut out, "value", value);
            }
        }
    }
    out.push('}');
    out
}

/// Parse one wire line into a typed [`Response`]. Structured reports
/// are not reconstructed (`report: None`); the JSON string field
/// carries the full report.
pub fn decode_response(line: &str) -> Result<Response, HelixError> {
    let value = envelope(line)?;
    let kind = str_field(&value, "type")?;
    match kind {
        "scenario" => Ok(Response::Scenario {
            json: str_field(&value, "json")?.to_string(),
            cached: value
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or_else(|| HelixError::protocol("missing or non-bool field 'cached'"))?,
            report: None,
        }),
        "campaign" => Ok(Response::Campaign {
            json: str_field(&value, "json")?.to_string(),
            table: str_field(&value, "table")?.to_string(),
            stats: decode_stats(value.get("stats"))?,
            report: None,
        }),
        "checked" => {
            let count = |key: &str| {
                value
                    .get(key)
                    .and_then(Json::as_u64)
                    .map(|v| v as usize)
                    .ok_or_else(|| {
                        HelixError::protocol(format!("missing or non-integer field '{key}'"))
                    })
            };
            Ok(Response::Checked {
                name: str_field(&value, "name")?.to_string(),
                regions: count("regions")?,
                phases: count("phases")?,
                insts: count("insts")?,
            })
        }
        "diff" => Ok(Response::Diff {
            identical: value
                .get("identical")
                .and_then(Json::as_bool)
                .ok_or_else(|| HelixError::protocol("missing or non-bool field 'identical'"))?,
            detail: str_field(&value, "detail")?.to_string(),
        }),
        "explore" => Ok(Response::Explore {
            json: str_field(&value, "json")?.to_string(),
            failures: value
                .get("failures")
                .and_then(Json::as_u64)
                .ok_or_else(|| HelixError::protocol("missing or non-integer field 'failures'"))?
                as usize,
            report: None,
        }),
        "status" => {
            let count = |key: &str| {
                value.get(key).and_then(Json::as_u64).ok_or_else(|| {
                    HelixError::protocol(format!("missing or non-integer field '{key}'"))
                })
            };
            Ok(Response::Status(ServiceStatus {
                workers: count("workers")? as usize,
                requests: count("requests")?,
                inflight: count("inflight")?,
                cells: count("cells")?,
                journal_hits: count("journal_hits")?,
                simulated: count("simulated")?,
            }))
        }
        "shutting_down" => Ok(Response::ShuttingDown),
        "error" => {
            let code = str_field(&value, "code")?;
            let kind = ErrorKind::from_code(code)
                .ok_or_else(|| HelixError::protocol(format!("unknown error code '{code}'")))?;
            let mut e = HelixError::new(kind, str_field(&value, "message")?);
            if let Some(file) = value.get("file").and_then(Json::as_str) {
                e = e.with_file(file);
            }
            if let Some(field) = value.get("field").and_then(Json::as_str) {
                e = e.with_field(field);
            }
            if let Some(v) = value.get("value").and_then(Json::as_str) {
                e = e.with_value(v);
            }
            Ok(Response::Error(e))
        }
        other => Err(HelixError::protocol(format!(
            "unknown response type '{other}'"
        ))),
    }
}

/// Load a campaign file and resolve its scenario set into inline
/// payloads — the client-side step before a service submission, so the
/// server never needs the client's filesystem.
pub fn inline_campaign_source(path: &Path) -> Result<CampaignSource, HelixError> {
    let (spec, scenarios) = load_campaign(path)?;
    Ok(CampaignSource::Inline {
        campaign: spec.to_toml(),
        scenarios: scenarios.iter().map(|s| s.to_toml()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_workloads::builtin_spec;

    #[test]
    fn json_parser_roundtrips_the_hard_cases() {
        let doc = r#"{"a": [1, -2.5, 1e3], "s": "tab\t\"q\" é 😀", "n": null, "b": [true, false], "o": {}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "tab\t\"q\" é 😀");
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert_eq!(
            v.get("b").unwrap().as_array().unwrap()[0].as_bool(),
            Some(true)
        );
        assert!(Json::parse("{\"open\": ").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("nope").is_err());
        let e = Json::parse("{]").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
    }

    #[test]
    fn request_wire_roundtrip() {
        let request = Request::RunCampaign {
            source: CampaignSource::Inline {
                campaign: "name = \"c\"\nscenarios = [\"x\"]\n".into(),
                scenarios: vec!["name = \"s\"\n# tab\t here".into()],
            },
            options: RunOptions::new()
                .with_scale(Scale::Full)
                .with_max_retries(2)
                .with_cycle_budget(500_000),
        };
        let line = encode_request(&request).unwrap();
        assert!(!line.contains('\n'), "wire form must be one line: {line}");
        assert_eq!(decode_request(&line).unwrap(), request);

        let check = Request::Check {
            source: SpecSource::Inline("name = \"s\"".into()),
            scale: Scale::Test,
        };
        assert_eq!(
            decode_request(&encode_request(&check).unwrap()).unwrap(),
            check
        );
        for simple in [Request::Status, Request::Shutdown] {
            assert_eq!(
                decode_request(&encode_request(&simple).unwrap()).unwrap(),
                simple
            );
        }
    }

    #[test]
    fn local_only_options_do_not_cross_the_wire() {
        let request = Request::RunScenario {
            source: SpecSource::Inline("name = \"s\"".into()),
            options: RunOptions::new().with_journal("/tmp/j"),
        };
        let e = encode_request(&request).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Usage);
        let path = Request::RunScenario {
            source: SpecSource::Path(PathBuf::from("x.toml")),
            options: RunOptions::new(),
        };
        assert_eq!(encode_request(&path).unwrap_err().kind, ErrorKind::Usage);
    }

    #[test]
    fn response_wire_roundtrip() {
        let stats = CampaignRunStats {
            cells: 20,
            journal_hits: 20,
            simulated: 0,
            failed: 0,
            derived_hits: 10,
            derived_computed: 0,
        };
        let response = Response::Campaign {
            json: "{\n  \"harness\": \"campaign\"\n}\n".into(),
            table: "campaign 'x'\n== t ==\n".into(),
            stats,
            report: None,
        };
        let line = encode_response(&response);
        assert!(!line.contains('\n'));
        assert_eq!(decode_response(&line).unwrap(), response);

        let error = Response::Error(
            HelixError::new(ErrorKind::Spec, "bad grid")
                .with_file("c.toml")
                .with_field("grid.cores")
                .with_value("-1"),
        );
        let decoded = decode_response(&encode_response(&error)).unwrap();
        assert_eq!(decoded, error);
        assert!(encode_response(&error).contains("\"code\": \"E_SPEC\""));

        let status = Response::Status(ServiceStatus {
            workers: 4,
            requests: 7,
            inflight: 1,
            cells: 40,
            journal_hits: 20,
            simulated: 20,
        });
        assert_eq!(decode_response(&encode_response(&status)).unwrap(), status);
    }

    #[test]
    fn protocol_errors_are_typed() {
        assert_eq!(
            decode_request("this is not json").unwrap_err().kind,
            ErrorKind::Protocol
        );
        assert_eq!(
            decode_request("{\"v\": 1, \"type\": \"frobnicate\"}")
                .unwrap_err()
                .kind,
            ErrorKind::Protocol
        );
        assert_eq!(
            decode_request("{\"v\": 99, \"type\": \"status\"}")
                .unwrap_err()
                .kind,
            ErrorKind::Protocol
        );
    }

    #[test]
    fn diff_names_schema_version_mismatch_before_bytes() {
        let a = "{\n  \"schema_version\": 1,\n  \"x\": 1\n}\n";
        let b = "{\n  \"schema_version\": 2,\n  \"x\": 1\n}\n";
        let (identical, detail) = diff_reports("old.json", a, "new.json", b);
        assert!(!identical);
        assert!(detail.contains("schema version mismatch"), "{detail}");
        assert!(detail.contains("old.json has schema_version 1"), "{detail}");
        assert!(
            !detail.contains("--- <"),
            "must not fall through to line diff: {detail}"
        );

        let (identical, detail) = diff_reports("a", a, "b", a);
        assert!(identical);
        assert!(detail.contains("identical"));

        let c = "{\n  \"schema_version\": 1,\n  \"x\": 2\n}\n";
        let (identical, detail) = diff_reports("a", a, "b", c);
        assert!(!identical);
        assert!(detail.contains("reports differ"), "{detail}");
    }

    #[test]
    fn execute_checks_a_builtin_spec_inline() {
        let spec = builtin_spec("175.vpr").unwrap();
        let response = execute(Request::Check {
            source: SpecSource::Inline(spec.to_toml()),
            scale: Scale::Test,
        });
        match response {
            Response::Checked { name, insts, .. } => {
                assert_eq!(name, "175.vpr");
                assert!(insts > 0);
            }
            other => panic!("expected Checked, got {other:?}"),
        }
    }

    #[test]
    fn explore_request_wire_roundtrip() {
        let request = Request::Explore {
            options: ExploreOptions {
                seed: 7,
                budget: 12,
                cores: 2,
                fuel: 1 << 20,
                export_dir: None,
            },
        };
        let line = encode_request(&request).unwrap();
        assert!(!line.contains('\n'));
        assert_eq!(decode_request(&line).unwrap(), request);
        // Missing fields fall back to the defaults.
        let decoded = decode_request("{\"v\": 1, \"type\": \"explore\", \"seed\": 3}").unwrap();
        assert_eq!(
            decoded,
            Request::Explore {
                options: ExploreOptions {
                    seed: 3,
                    ..ExploreOptions::default()
                },
            }
        );
    }

    #[test]
    fn explore_export_dir_does_not_cross_the_wire() {
        let request = Request::Explore {
            options: ExploreOptions {
                export_dir: Some(PathBuf::from("/tmp/keepers")),
                ..ExploreOptions::default()
            },
        };
        assert_eq!(encode_request(&request).unwrap_err().kind, ErrorKind::Usage);
    }

    #[test]
    fn explore_response_wire_roundtrip_and_exit_codes() {
        let response = Response::Explore {
            json: "{\n  \"seed\": 0\n}\n".into(),
            failures: 0,
            report: None,
        };
        assert_eq!(
            decode_response(&encode_response(&response)).unwrap(),
            response
        );
        assert_eq!(response.exit_code(), 0);
        let failed = Response::Explore {
            json: String::new(),
            failures: 2,
            report: None,
        };
        assert_eq!(failed.exit_code(), 1);
    }

    #[test]
    fn execute_runs_a_tiny_explore() {
        let response = execute(Request::Explore {
            options: ExploreOptions {
                seed: 0,
                budget: 1,
                cores: 2,
                fuel: 1 << 22,
                export_dir: None,
            },
        });
        match response {
            Response::Explore { json, report, .. } => {
                let report = report.expect("local execution carries the report");
                assert_eq!(report.specs_run, 1);
                assert_eq!(json, report.to_json());
            }
            other => panic!("expected Explore, got {other:?}"),
        }
        // Zero budget is a usage error.
        let bad = execute(Request::Explore {
            options: ExploreOptions {
                budget: 0,
                ..ExploreOptions::default()
            },
        });
        assert_eq!(bad.exit_code(), 2);
    }

    #[test]
    fn execute_reports_spec_errors_with_code() {
        let response = execute(Request::Check {
            source: SpecSource::Inline("name = 12\n".into()),
            scale: Scale::Test,
        });
        match response {
            Response::Error(e) => {
                assert_eq!(e.kind, ErrorKind::Spec);
                assert_eq!(e.kind.code(), "E_SPEC");
            }
            other => panic!("expected Error, got {other:?}"),
        }
        assert_eq!(
            execute(Request::Check {
                source: SpecSource::Path(PathBuf::from("/no/such/file.toml")),
                scale: Scale::Test,
            })
            .exit_code(),
            1
        );
    }
}
