//! Ring cache configuration (paper §6.1 default parameters and the §6.3
//! sensitivity sweep axes).

use serde::{Deserialize, Serialize};

/// Cache-array geometry of one ring node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Total capacity in bytes, or `None` for an unbounded array
    /// (the "Unbounded" point of Fig. 11d).
    pub capacity: Option<u64>,
    /// Set associativity.
    pub assoc: usize,
    /// Line size in bytes. The paper keeps this at one machine word to
    /// rule out false sharing (§5.1); the line-size ablation widens it.
    pub line: u64,
}

impl ArrayConfig {
    /// The paper's default: 1 KB, 8-way, one-word lines.
    pub fn paper_default() -> ArrayConfig {
        ArrayConfig {
            capacity: Some(1024),
            assoc: 8,
            line: 8,
        }
    }

    /// Number of sets implied by the geometry (1 when unbounded).
    pub fn sets(&self) -> usize {
        match self.capacity {
            None => 1,
            Some(cap) => {
                let lines = (cap / self.line).max(1) as usize;
                (lines / self.assoc).max(1)
            }
        }
    }
}

/// Full ring-cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingConfig {
    /// Number of ring nodes (== cores).
    pub nodes: usize,
    /// Cycles for one node-to-node hop (Fig. 11b sweeps 1..32).
    pub hop_latency: u32,
    /// Cycles from a core to its ring node (paper: 2, to keep the
    /// core-to-L1 path intact).
    pub injection_latency: u32,
    /// Words of data a link moves per cycle (paper: 1 suffices).
    pub data_bandwidth: u32,
    /// Signals a link moves per cycle; `None` = unbounded (Fig. 11c).
    pub signal_bandwidth: Option<u32>,
    /// Link buffer entries per node (credit-based flow control; the
    /// paper requires at least two for forward progress).
    pub link_buffers: usize,
    /// Per-core injection queue depth (stores/signals buffered between
    /// core and node before backpressure).
    pub injection_queue: usize,
    /// Cycles for the owner node to access its private L1 when servicing
    /// a ring miss or eviction write-back.
    pub l1_service_latency: u32,
    /// Node cache-array geometry.
    pub array: ArrayConfig,
    /// Whether idle ticks may take the O(1) next-event short-circuit
    /// instead of walking the nodes. Never observable in results — it
    /// only changes how much work a no-op tick costs — but the
    /// simulator's naive reference mode (`without_fast_forward`) turns
    /// it off so the per-cycle baseline it measures stays a true
    /// per-cycle loop.
    pub event_skip: bool,
}

impl RingConfig {
    /// The paper's default configuration for `nodes` cores (§6.1):
    /// 1 KB 8-way arrays, one-word data bandwidth, five-signal
    /// bandwidth, single-cycle hops, two-cycle injection.
    pub fn paper_default(nodes: usize) -> RingConfig {
        RingConfig {
            nodes,
            hop_latency: 1,
            injection_latency: 2,
            data_bandwidth: 1,
            signal_bandwidth: Some(5),
            link_buffers: 4,
            injection_queue: 8,
            l1_service_latency: 3,
            array: ArrayConfig::paper_default(),
            event_skip: true,
        }
    }

    /// Owner node of an address: a simple bit-mask hash over the 64-byte
    /// L1-line address, so all words of an L1 line share an owner and the
    /// coherence protocol is never triggered (§6.1).
    pub fn owner_of(&self, addr: u64) -> usize {
        ((addr >> 6) as usize) & (self.nodes - 1)
    }

    /// Hops from `from` to `to` along the (unidirectional) ring.
    pub fn distance(&self, from: usize, to: usize) -> usize {
        (to + self.nodes - from) % self.nodes
    }

    /// Validate the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is not a power of two ≥ 1 or buffers < 2.
    pub fn assert_valid(&self) {
        assert!(self.nodes >= 1 && self.nodes.is_power_of_two());
        assert!(self.link_buffers >= 2, "flow control needs >= 2 buffers");
        assert!(self.hop_latency >= 1);
        assert!(self.data_bandwidth >= 1);
        assert!(self.array.line >= 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry() {
        let c = ArrayConfig::paper_default();
        assert_eq!(c.sets(), 16); // 1024 / 8 bytes / 8 ways
        let r = RingConfig::paper_default(16);
        r.assert_valid();
    }

    #[test]
    fn owner_shares_l1_line() {
        let r = RingConfig::paper_default(16);
        let base = 0x1_0000;
        let owner = r.owner_of(base);
        for w in 0..8 {
            assert_eq!(r.owner_of(base + w * 8), owner);
        }
        assert_ne!(r.owner_of(base), r.owner_of(base + 64));
    }

    #[test]
    fn ring_distance() {
        let r = RingConfig::paper_default(8);
        assert_eq!(r.distance(0, 1), 1);
        assert_eq!(r.distance(1, 0), 7);
        assert_eq!(r.distance(3, 3), 0);
    }

    #[test]
    #[should_panic(expected = "buffers")]
    fn too_few_buffers_rejected() {
        let mut r = RingConfig::paper_default(4);
        r.link_buffers = 1;
        r.assert_valid();
    }

    #[test]
    fn unbounded_array_single_set() {
        let c = ArrayConfig {
            capacity: None,
            assoc: 8,
            line: 8,
        };
        assert_eq!(c.sets(), 1);
    }
}
