//! End-to-end compile → simulate tests: functional equivalence between
//! sequential and parallel execution, real speedups from decoupling, and
//! failure injection (corrupted plans must trip the race detector).

use helix_hcc::{compile, HccConfig};
use helix_ir::interp::{run_to_completion, Env};
use helix_ir::{AddrExpr, BinOp, Intrinsic, Operand, Program, ProgramBuilder, Ty};
use helix_sim::{simulate, simulate_sequential, MachineConfig, SyncModel};

const FUEL: u64 = 1 << 25;

/// A DOALL-style loop (only private data).
fn doall_program(n: i64) -> Program {
    let mut b = ProgramBuilder::new("doall");
    let data = b.region("data", (n as u64 + 1) * 8, Ty::I64);
    b.counted_loop(0, n, 1, |b, i| {
        let x = b.reg();
        b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
        b.alu_chain(x, 10);
        b.store(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
    });
    b.finish()
}

/// The Fig. 5 shape: conditional update of a shared accumulator cell plus
/// meaty private work.
fn fig5_program(n: i64) -> Program {
    let mut b = ProgramBuilder::new("fig5");
    let cell = b.region("cell", 64, Ty::I64);
    let data = b.region("data", (n as u64 + 1) * 8, Ty::I64);
    b.counted_loop(0, n, 1, |b, i| {
        let x = b.reg();
        b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
        b.alu_chain(x, 12);
        let c = b.reg();
        b.bin(c, BinOp::And, i, 1i64);
        b.if_else(
            c,
            |b| {
                let a = b.reg();
                b.load(a, AddrExpr::region(cell, 0), Ty::I64);
                b.bin(a, BinOp::Add, a, 1i64);
                b.store(a, AddrExpr::region(cell, 0), Ty::I64);
            },
            |b| {
                let t = b.reg();
                b.bin(t, BinOp::Mul, i, 3i64);
                b.store(t, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
            },
        );
    });
    b.finish()
}

/// Histogram with hash collisions, an unpredictable register, and a
/// reduction — all three sharing kinds at once.
fn mixed_program(n: i64) -> Program {
    let mut b = ProgramBuilder::new("mixed");
    let hist = b.region("hist", 1024, Ty::I64);
    let data = b.region("data", (n as u64 + 1) * 8, Ty::I64);
    let out = b.region("out", 64, Ty::I64);
    // Setup: fill data.
    b.counted_loop(0, n, 1, |b, i| {
        let h = b.reg();
        b.call(Some(h), Intrinsic::PureHash, vec![Operand::Reg(i)]);
        b.store(h, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
    });
    let state = b.reg();
    let sum = b.reg();
    b.const_i(state, 1);
    b.const_i(sum, 0);
    b.counted_loop(0, n, 1, |b, i| {
        let x = b.reg();
        b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
        b.alu_chain(x, 6);
        // Histogram update (memory-carried dependence).
        let hx = b.reg();
        b.bin(hx, BinOp::And, x, 127i64);
        let cell = b.reg();
        b.load(cell, AddrExpr::region_indexed(hist, hx, 8, 0), Ty::I64);
        b.bin(cell, BinOp::Add, cell, 1i64);
        b.store(cell, AddrExpr::region_indexed(hist, hx, 8, 0), Ty::I64);
        // Unpredictable register chain (register-carried dependence).
        let c = b.reg();
        b.bin(c, BinOp::And, x, 3i64);
        b.if_then(c, |b| {
            b.bin(state, BinOp::Xor, state, x);
        });
        // Reduction (re-computed, no communication).
        b.bin(sum, BinOp::Add, sum, x);
    });
    b.store(state, AddrExpr::region(out, 0), Ty::I64);
    b.store(sum, AddrExpr::region(out, 8), Ty::I64);
    b.finish()
}

/// Pure reduction program.
fn reduction_program(n: i64) -> Program {
    let mut b = ProgramBuilder::new("red");
    let data = b.region("data", (n as u64 + 1) * 8, Ty::I64);
    let out = b.region("out", 64, Ty::I64);
    b.counted_loop(0, n, 1, |b, i| {
        b.store(i, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
    });
    let acc = b.reg();
    b.const_i(acc, 0);
    b.counted_loop(0, n, 1, |b, i| {
        let x = b.reg();
        b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
        b.alu_chain(x, 4);
        b.bin(acc, BinOp::Add, acc, x);
    });
    b.store(acc, AddrExpr::region(out, 0), Ty::I64);
    b.finish()
}

/// Run the program both ways and assert bit-identical memory.
fn assert_equivalent(program: &Program, hcc: &HccConfig, machine: &MachineConfig) -> (u64, u64) {
    let compiled = compile(program, hcc).expect("compiles");
    assert!(
        !compiled.plans.is_empty(),
        "expected at least one parallelized loop"
    );
    // Reference: the transformed program run in the plain interpreter.
    let mut env = Env::for_program(&compiled.program);
    run_to_completion(&compiled.program, &mut env).expect("reference run");
    let expect = env.mem.digest();

    let par = simulate(&compiled, machine, FUEL).expect("parallel run");
    assert_eq!(
        par.race_violations,
        vec![],
        "race detector must stay silent"
    );
    assert_eq!(par.protocol_errors, Vec::<String>::new());
    assert_eq!(par.mem_digest, expect, "parallel result differs");

    let seq = simulate_sequential(program, machine, FUEL).expect("sequential run");
    (seq.cycles, par.cycles)
}

#[test]
fn doall_equivalent_and_fast() {
    let p = doall_program(2000);
    let (seq, par) = assert_equivalent(&p, &HccConfig::v3(16), &MachineConfig::helix_rc(16));
    let speedup = seq as f64 / par as f64;
    assert!(speedup > 6.0, "DOALL speedup only {speedup:.2}x");
}

#[test]
fn fig5_equivalent_on_ring() {
    let p = fig5_program(1200);
    let (seq, par) = assert_equivalent(&p, &HccConfig::v3(16), &MachineConfig::helix_rc(16));
    let speedup = seq as f64 / par as f64;
    assert!(speedup > 2.0, "fig5 speedup only {speedup:.2}x");
}

#[test]
fn mixed_program_equivalent_on_ring() {
    let p = mixed_program(1500);
    let (seq, par) = assert_equivalent(&p, &HccConfig::v3(16), &MachineConfig::helix_rc(16));
    let speedup = seq as f64 / par as f64;
    assert!(speedup > 1.5, "mixed speedup only {speedup:.2}x");
}

#[test]
fn reduction_equivalent_and_scales() {
    let p = reduction_program(3000);
    let (seq, par) = assert_equivalent(&p, &HccConfig::v3(16), &MachineConfig::helix_rc(16));
    let speedup = seq as f64 / par as f64;
    assert!(speedup > 6.0, "reduction speedup only {speedup:.2}x");
}

#[test]
fn v2_code_on_conventional_machine_is_equivalent() {
    let p = fig5_program(800);
    let mut hcc = HccConfig::v2(16);
    // Make selection permissive so the loop parallelizes even under the
    // conventional cost model (we want to measure it, not skip it).
    hcc.selection.sync_cost = 4.0;
    let mut machine = MachineConfig::conventional(16);
    machine.sync = SyncModel::ChainedPredecessor;
    let (_seq, _par) = assert_equivalent(&p, &hcc, &machine);
}

#[test]
fn decoupling_beats_conventional_on_short_iterations() {
    let p = mixed_program(1200);
    // HCCv3-style code on both machines (paper Fig. 9 setup).
    let mut hcc = HccConfig::v3(16);
    hcc.selection.sync_cost = 4.0;
    let compiled = compile(&p, &hcc).expect("compiles");
    assert!(!compiled.plans.is_empty());

    let ring = simulate(&compiled, &MachineConfig::helix_rc(16), FUEL).unwrap();
    let conv = simulate(&compiled, &MachineConfig::conventional(16), FUEL).unwrap();
    assert!(ring.race_violations.is_empty());
    assert!(conv.race_violations.is_empty());
    assert_eq!(ring.mem_digest, conv.mem_digest);
    assert!(
        conv.cycles > ring.cycles,
        "ring {} vs conventional {} cycles",
        ring.cycles,
        conv.cycles
    );
}

#[test]
fn scaling_with_core_count() {
    let p = doall_program(3000);
    let mut prev_cycles = u64::MAX;
    for cores in [2usize, 4, 8, 16] {
        let compiled = compile(&p, &HccConfig::v3(cores as u32)).unwrap();
        let rep = simulate(&compiled, &MachineConfig::helix_rc(cores), FUEL).unwrap();
        assert!(rep.race_violations.is_empty());
        assert!(
            rep.cycles < prev_cycles,
            "{cores} cores: {} !< {prev_cycles}",
            rep.cycles
        );
        prev_cycles = rep.cycles;
    }
}

#[test]
fn out_of_order_cores_run_parallel_code() {
    let p = mixed_program(900);
    let compiled = compile(&p, &HccConfig::v3(8)).unwrap();
    let mut cfg = MachineConfig::helix_rc(8);
    cfg.core = helix_sim::CoreModel::OutOfOrder { width: 4, rob: 64 };

    // Reference digest.
    let mut env = Env::for_program(&compiled.program);
    run_to_completion(&compiled.program, &mut env).unwrap();

    let rep = simulate(&compiled, &cfg, FUEL).unwrap();
    assert!(rep.race_violations.is_empty());
    assert_eq!(rep.protocol_errors, Vec::<String>::new());
    assert_eq!(rep.mem_digest, env.mem.digest());

    // The OoO core extracts ILP: sequential execution is faster than
    // in-order sequential.
    let seq_io = simulate_sequential(&p, &MachineConfig::conventional(8), FUEL).unwrap();
    let mut cfg_seq = MachineConfig::conventional(8);
    cfg_seq.core = helix_sim::CoreModel::OutOfOrder { width: 4, rob: 64 };
    let seq_ooo = simulate_sequential(&p, &cfg_seq, FUEL).unwrap();
    assert!(
        seq_ooo.cycles < seq_io.cycles,
        "OoO {} !< in-order {}",
        seq_ooo.cycles,
        seq_io.cycles
    );
}

#[test]
fn failure_injection_dropped_wait_is_detected() {
    let p = mixed_program(800);
    let mut compiled = compile(&p, &HccConfig::v3(8)).unwrap();
    assert!(!compiled.plans.is_empty());
    // Corrupt the program: remove every wait instruction.
    let mut removed = 0;
    for block in &mut compiled.program.graph.blocks {
        let before = block.insts.len();
        block
            .insts
            .retain(|i| !matches!(i, helix_ir::Inst::Wait { .. }));
        removed += before - block.insts.len();
    }
    assert!(removed > 0, "test premise: waits existed");
    let rep = simulate(&compiled, &MachineConfig::helix_rc(8), FUEL).unwrap();
    assert!(
        !rep.race_violations.is_empty(),
        "dropped waits must be caught by the race detector"
    );
}

#[test]
fn failure_injection_mistagged_segment_is_detected() {
    let p = mixed_program(800);
    let mut compiled = compile(&p, &HccConfig::v3(8)).unwrap();
    // Corrupt: move every shared access of segment 1 into segment 0,
    // merging two disjoint-data segments without merging their waits.
    let mut retagged = 0;
    for block in &mut compiled.program.graph.blocks {
        for inst in &mut block.insts {
            if let helix_ir::Inst::Load { shared, .. } | helix_ir::Inst::Store { shared, .. } = inst
            {
                if let Some(tag) = shared {
                    if tag.seg == helix_ir::SegmentId(1) {
                        tag.seg = helix_ir::SegmentId(0);
                        retagged += 1;
                    }
                }
            }
        }
    }
    if retagged == 0 {
        return; // only one segment was formed; nothing to corrupt
    }
    let rep = simulate(&compiled, &MachineConfig::helix_rc(8), FUEL).unwrap();
    assert!(
        !rep.race_violations.is_empty() || !rep.protocol_errors.is_empty(),
        "mistagged segments must be caught"
    );
}

#[test]
fn zero_and_tiny_trip_counts() {
    // Trip counts 0 and 1 and 3 (< cores) must all work.
    for n in [0i64, 1, 3] {
        let mut b = ProgramBuilder::new("tiny");
        let data = b.region("data", 256, Ty::I64);
        let out = b.region("out", 64, Ty::I64);
        let acc = b.reg();
        b.const_i(acc, 7);
        b.counted_loop(0, 100, 1, |b, _rep| {
            b.counted_loop(0, n, 1, |b, i| {
                let x = b.reg();
                b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
                b.bin(x, BinOp::Add, x, i);
                b.store(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
                b.bin(acc, BinOp::Add, acc, 1i64);
            });
        });
        b.store(acc, AddrExpr::region(out, 0), Ty::I64);
        let p = b.finish();
        let compiled = compile(&p, &HccConfig::v3(8)).unwrap();
        let mut env = Env::for_program(&compiled.program);
        run_to_completion(&compiled.program, &mut env).unwrap();
        let rep = simulate(&compiled, &MachineConfig::helix_rc(8), FUEL).unwrap();
        assert_eq!(rep.mem_digest, env.mem.digest(), "trip {n}");
        assert!(rep.race_violations.is_empty(), "trip {n}");
    }
}

#[test]
fn deterministic_across_runs() {
    let p = mixed_program(600);
    let compiled = compile(&p, &HccConfig::v3(16)).unwrap();
    let a = simulate(&compiled, &MachineConfig::helix_rc(16), FUEL).unwrap();
    let b = simulate(&compiled, &MachineConfig::helix_rc(16), FUEL).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mem_digest, b.mem_digest);
    assert_eq!(a.dyn_insts, b.dyn_insts);
}
