//! Offline mini-`rayon`.
//!
//! Real data parallelism without crates.io: `par_iter().map(..).collect()`
//! over slices and `Vec`s, executed on `std::thread::scope` workers that
//! pull indices from a shared atomic counter (dynamic load balancing, so
//! one slow simulation does not serialize a sweep). Collecting into
//! `Result<Vec<T>, E>` yields the first (in input order) error; unlike
//! real rayon, outstanding items still run to completion first.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used for parallel maps.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed item type.
    type Item: 'data;
    /// The parallel iterator.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data, const N: usize> IntoParallelRefIterator<'data> for [T; N] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, R, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
            _result: std::marker::PhantomData,
        }
    }
}

/// A mapped parallel iterator, consumed by [`ParMap::collect`].
pub struct ParMap<'data, T, R, F> {
    items: &'data [T],
    f: F,
    _result: std::marker::PhantomData<fn() -> R>,
}

impl<'data, T: Sync, R, F> ParMap<'data, T, R, F>
where
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    /// Execute the map and gather results in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelResults<R>,
    {
        C::from_ordered(run_map(self.items, &self.f))
    }
}

/// Execute `f` over every item on a worker pool; results in input order.
fn run_map<'data, T: Sync, R: Send, F: Fn(&'data T) -> R + Sync>(
    items: &'data [T],
    f: &F,
) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *out[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("slot").expect("every index visited"))
        .collect()
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallelResults<R>: Sized {
    /// Build the collection from in-order mapped results.
    fn from_ordered(results: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_ordered(results: Vec<R>) -> Vec<R> {
        results
    }
}

impl<T, E> FromParallelResults<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered(results: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
        results.into_iter().collect()
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        rb = Some(hb.join().expect("join worker panicked"));
        ra
    });
    (ra, rb.expect("join worker result"))
}

/// Commonly used items, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelResults, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits() {
        let xs: Vec<u32> = (0..100).collect();
        let ok: Result<Vec<u32>, String> = xs.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<u32>, String> = xs
            .par_iter()
            .map(|&x| {
                if x == 42 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn actually_uses_multiple_threads() {
        if super::current_num_threads() < 2 {
            return; // nothing to check on a single-CPU box
        }
        let xs: Vec<u32> = (0..64).collect();
        let ids: Vec<std::thread::ThreadId> = xs
            .par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                std::thread::current().id()
            })
            .collect();
        let distinct: std::collections::BTreeSet<_> =
            ids.iter().map(|i| format!("{i:?}")).collect();
        assert!(distinct.len() > 1, "expected work on more than one thread");
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u32> = Vec::new();
        let ys: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }
}
