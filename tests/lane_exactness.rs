//! Lane-exactness pins: batched lane-parallel campaign execution is a
//! pure performance feature — a report produced with any lane width,
//! engine selection, or shared-cache configuration must be
//! byte-identical to the single-lane per-cell baseline. These tests
//! enforce that across every committed scenario (the paper campaign),
//! across the engine axis (tree / decoded / batched), and under the
//! chaos harness (fault-injected cells stay isolated from their
//! batched neighbours).

mod common;

use common::repo_path;
use helix_rc::api::{decode_request, execute, Request, Response, RunOptions, SpecSource};
use helix_rc::campaign::{load_campaign, run_campaign_with, CampaignRunOptions};
use helix_rc::hcc::{compile, CompiledProgram, HccConfig};
use helix_rc::resilient::FaultPlan;
use helix_rc::sim::{EngineSel, Machine, MachineConfig, SimSession};
use helix_rc::workloads::{by_name, Scale};
use helix_rc::CampaignSource;
use proptest::prelude::*;
use std::sync::OnceLock;

fn lanes(n: usize) -> CampaignRunOptions {
    CampaignRunOptions {
        lanes: n,
        ..CampaignRunOptions::default()
    }
}

/// The committed paper campaign — every committed scenario through
/// every experiment family — reports byte-identically whether cells
/// run standalone or batched over shared decodes.
#[test]
fn batched_paper_campaign_is_byte_identical_to_per_cell() {
    let (spec, scenarios) =
        load_campaign(&repo_path("campaigns/paper.toml")).expect("paper campaign loads");
    let baseline =
        run_campaign_with(&spec, &scenarios, &CampaignRunOptions::default()).expect("per-cell run");
    assert!(baseline.failures.is_empty(), "{:?}", baseline.failures);
    // lanes=4 leaves each scenario's cells spanning several session
    // chunks, so chunk boundaries are exercised too (wider widths only
    // repeat the same ~40s campaign without new coverage).
    let batched = run_campaign_with(&spec, &scenarios, &lanes(4)).expect("batched run");
    assert_eq!(
        batched.to_json(),
        baseline.to_json(),
        "lanes=4 report differs from the per-cell baseline"
    );
}

/// The engine axis is invisible in reports: tree interpreter, decoded,
/// and batched (single- and multi-lane) smoke-campaign runs all emit
/// the same bytes.
#[test]
fn engine_selection_never_changes_report_bytes() {
    let (spec, scenarios) =
        load_campaign(&repo_path("campaigns/smoke.toml")).expect("smoke campaign loads");
    let baseline =
        run_campaign_with(&spec, &scenarios, &CampaignRunOptions::default()).expect("baseline");
    assert!(baseline.failures.is_empty());
    for (engine, width) in [
        (EngineSel::Tree, 1),
        (EngineSel::Decoded, 1),
        (EngineSel::Batched, 1),
        (EngineSel::Tree, 4),
        (EngineSel::Batched, 4),
    ] {
        let run = run_campaign_with(
            &spec,
            &scenarios,
            &CampaignRunOptions {
                engine: Some(engine),
                lanes: width,
                ..CampaignRunOptions::default()
            },
        )
        .expect("engine run");
        assert_eq!(
            run.to_json(),
            baseline.to_json(),
            "engine={engine:?} lanes={width} report differs"
        );
    }
}

/// Failure isolation survives batching: a chaos plan injecting panics
/// into a deterministic subset of cells produces the same failures —
/// and the same surviving rows, byte for byte — at any lane width.
/// Fault-injected cells run single-lane without the shared cache, so a
/// panicking cell can neither corrupt nor seed its neighbours.
#[test]
fn chaos_failure_isolation_is_lane_invariant() {
    let (spec, scenarios) =
        load_campaign(&repo_path("campaigns/smoke.toml")).expect("smoke campaign loads");
    let plan = FaultPlan {
        seed: 7,
        panics: 2,
        stalls: 0,
        blowouts: 0,
        stall_ms: 0,
        transient: false,
    };
    let single = run_campaign_with(
        &spec,
        &scenarios,
        &CampaignRunOptions {
            faults: Some(plan.clone()),
            ..CampaignRunOptions::default()
        },
    )
    .expect("single-lane chaos run");
    assert_eq!(single.failures.len(), 2, "exactly the injected panics");
    let batched = run_campaign_with(
        &spec,
        &scenarios,
        &CampaignRunOptions {
            faults: Some(plan),
            lanes: 4,
            ..CampaignRunOptions::default()
        },
    )
    .expect("batched chaos run");
    assert_eq!(
        batched.to_json(),
        single.to_json(),
        "chaos run must be lane-invariant (same failures, same survivors)"
    );
}

/// One compiled workload shared across every proptest case: the
/// session's exactness contract is schedule-independent, so one program
/// with mixed machine shapes on top exercises everything the strategy
/// varies.
fn compiled_gzip() -> &'static CompiledProgram {
    static COMPILED: OnceLock<CompiledProgram> = OnceLock::new();
    COMPILED.get_or_init(|| {
        let w = by_name("164.gzip", Scale::Test).expect("gzip workload");
        compile(&w.program, &HccConfig::v3(4)).expect("gzip compiles")
    })
}

/// One lane's machine shape and fuel, drawn at random: helix-rc or
/// conventional, 2 or 4 cores, any engine, and a fuel budget that
/// either exhausts mid-run or lets the program complete.
fn lane_strategy() -> impl Strategy<Value = (MachineConfig, u64)> {
    (
        any::<bool>(),
        prop_oneof![Just(2usize), Just(4usize)],
        prop_oneof![
            Just(EngineSel::Tree),
            Just(EngineSel::Decoded),
            Just(EngineSel::Batched),
        ],
        prop_oneof![Just(1u64 << 12), Just(1u64 << 24)],
    )
        .prop_map(|(ring, cores, engine, fuel)| {
            let cfg = if ring {
                MachineConfig::helix_rc(cores)
            } else {
                MachineConfig::conventional(cores)
            };
            (cfg.with_engine(engine), fuel)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property form of the lane-exactness pin at the session layer:
    /// for ANY lane count, enqueue order, engine mix, shape mix, and
    /// fuel mix, every lane's report (or error) out of the
    /// event-cooperative drain is byte-identical to a standalone
    /// `Machine::run` of the same config — including lanes recycled
    /// out of the session's machine pool on later drains.
    #[test]
    fn random_lane_mixes_match_standalone_runs(
        lanes in prop::collection::vec(lane_strategy(), 1..7),
        redrain in any::<bool>(),
    ) {
        let compiled = compiled_gzip();
        let mut session = SimSession::new(&compiled.program, &compiled.plans);
        let rounds = if redrain { 2 } else { 1 };
        for _ in 0..rounds {
            for (cfg, fuel) in &lanes {
                session.enqueue(cfg.clone(), *fuel);
            }
            for (ix, result) in session.drain().into_iter().enumerate() {
                let (cfg, fuel) = &lanes[ix];
                let standalone =
                    Machine::new(&compiled.program, &compiled.plans, cfg.clone()).run(*fuel);
                prop_assert_eq!(
                    format!("{:?}", result.result),
                    format!("{:?}", standalone),
                    "lane {} (cfg {:?}) diverged from its standalone run",
                    ix,
                    cfg
                );
            }
        }
    }
}

/// `lanes = 0` is rejected as a typed usage error at the API layer —
/// for both scenario and campaign requests — before any source is
/// loaded or any cell runs.
#[test]
fn lanes_zero_is_a_typed_usage_error() {
    let requests = [
        Request::RunScenario {
            source: SpecSource::Inline(String::new()),
            options: RunOptions::default().with_lanes(0),
        },
        Request::RunCampaign {
            source: CampaignSource::Inline {
                campaign: String::new(),
                scenarios: Vec::new(),
            },
            options: RunOptions::default().with_lanes(0),
        },
    ];
    for request in requests {
        match execute(request) {
            Response::Error(e) => {
                assert_eq!(e.kind.code(), "E_USAGE");
                assert!(
                    e.message.contains("lanes"),
                    "unexpected message: {}",
                    e.message
                );
            }
            other => panic!("lanes=0 must fail, got {other:?}"),
        }
    }
}

/// The same guard on the service wire: a request line carrying
/// `"lanes": 0` fails to decode with a typed protocol error.
#[test]
fn wire_lanes_zero_is_a_typed_protocol_error() {
    for line in [
        r#"{"v": 1, "type": "run_scenario", "spec": "", "options": {"lanes": 0}}"#,
        r#"{"v": 1, "type": "run_campaign", "campaign": "", "scenarios": [], "options": {"lanes": 0}}"#,
    ] {
        let err = decode_request(line).expect_err("lanes=0 must not decode");
        assert_eq!(err.kind.code(), "E_PROTOCOL");
        assert!(
            err.message.contains("lanes"),
            "unexpected message: {}",
            err.message
        );
    }
}
