//! Program structure: basic blocks, control-flow graphs, memory regions.

use crate::inst::{AddrBase, Inst, Operand, Terminator};
use crate::types::{BlockId, Reg, RegionId, Ty};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Optional label for pretty-printing and debugging.
    pub label: Option<String>,
    /// Straight-line instruction sequence.
    pub insts: Vec<Inst>,
    /// Control transfer ending the block.
    pub term: Terminator,
}

impl Block {
    /// An empty block jumping to `target`.
    pub fn jump_to(target: BlockId) -> Block {
        Block {
            label: None,
            insts: Vec::new(),
            term: Terminator::Jump(target),
        }
    }
}

/// A control-flow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    /// All basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
}

impl Graph {
    /// Access a block by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Number of blocks in the graph.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the graph has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterate over `(id, block)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Append a new block and return its id.
    pub fn push_block(&mut self, block: Block) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(block);
        id
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, block) in self.iter() {
            for succ in block.term.successors() {
                preds[succ.index()].push(id);
            }
        }
        preds
    }

    /// Total static instruction count (not counting terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Split the edge `from -> to`, inserting a fresh empty block on it.
    ///
    /// Returns the id of the new block. Used by the compiler to place
    /// early `signal` instructions on segment-bypassing paths.
    ///
    /// # Panics
    ///
    /// Panics if `from` has no edge to `to`.
    pub fn split_edge(&mut self, from: BlockId, to: BlockId) -> BlockId {
        let new_id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            label: Some(format!("split_{}_{}", from.0, to.0)),
            insts: Vec::new(),
            term: Terminator::Jump(to),
        });
        let term = &mut self.blocks[from.index()].term;
        let mut found = false;
        match term {
            Terminator::Jump(t) if *t == to => {
                *t = new_id;
                found = true;
            }
            Terminator::Branch { then_, else_, .. } => {
                if *then_ == to {
                    *then_ = new_id;
                    found = true;
                }
                if !found && *else_ == to {
                    *else_ = new_id;
                    found = true;
                }
            }
            _ => {}
        }
        assert!(found, "split_edge: no edge {from} -> {to}");
        new_id
    }
}

/// Declaration of a statically allocated memory region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionDecl {
    /// Human-readable name (e.g. `"window"`, `"heap_nodes"`).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Declared element type (drives type-based alias filtering).
    pub elem: Ty,
}

/// A whole program: declared regions plus one top-level CFG.
///
/// Programs are built with [`ProgramBuilder`](crate::ProgramBuilder),
/// validated with [`Program::validate`], executed with the
/// [`interp`](crate::interp) module, and parallelized by the `helix-hcc`
/// crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name (used in reports).
    pub name: String,
    /// Statically declared memory regions.
    pub regions: Vec<RegionDecl>,
    /// The program body.
    pub graph: Graph,
    /// Number of virtual registers used.
    pub n_regs: u32,
}

/// A structural validation failure, produced by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A terminator targets a nonexistent block.
    BadBlockRef {
        /// Offending block.
        from: BlockId,
        /// Nonexistent target.
        to: BlockId,
    },
    /// An instruction references a register `>= n_regs`.
    BadReg {
        /// Block containing the instruction.
        block: BlockId,
        /// Instruction index within the block.
        index: usize,
        /// Offending register.
        reg: Reg,
    },
    /// An address expression references a nonexistent region.
    BadRegion {
        /// Block containing the instruction.
        block: BlockId,
        /// Instruction index within the block.
        index: usize,
        /// Offending region.
        region: RegionId,
    },
    /// The entry block id is out of range.
    BadEntry(BlockId),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadBlockRef { from, to } => {
                write!(f, "terminator of {from} targets nonexistent block {to}")
            }
            ValidateError::BadReg { block, index, reg } => {
                write!(f, "instruction {index} of {block} uses undeclared {reg}")
            }
            ValidateError::BadRegion {
                block,
                index,
                region,
            } => {
                write!(
                    f,
                    "instruction {index} of {block} addresses nonexistent region {region}"
                )
            }
            ValidateError::BadEntry(b) => write!(f, "entry block {b} out of range"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl Program {
    /// Structurally validate the program.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found: dangling block
    /// references, out-of-range registers, or unknown regions.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.graph.entry.index() >= self.graph.len() {
            return Err(ValidateError::BadEntry(self.graph.entry));
        }
        let n_blocks = self.graph.len();
        for (id, block) in self.graph.iter() {
            for succ in block.term.successors() {
                if succ.index() >= n_blocks {
                    return Err(ValidateError::BadBlockRef { from: id, to: succ });
                }
            }
            if let Some(r) = block.term.uses() {
                if r.0 >= self.n_regs {
                    return Err(ValidateError::BadReg {
                        block: id,
                        index: block.insts.len(),
                        reg: r,
                    });
                }
            }
            for (index, inst) in block.insts.iter().enumerate() {
                for r in inst.uses().into_iter().chain(inst.def()) {
                    if r.0 >= self.n_regs {
                        return Err(ValidateError::BadReg {
                            block: id,
                            index,
                            reg: r,
                        });
                    }
                }
                let addr = match inst {
                    Inst::Load { addr, .. } | Inst::Store { addr, .. } => Some(addr),
                    _ => None,
                };
                if let Some(addr) = addr {
                    if let AddrBase::Region(region) = addr.base {
                        if region.index() >= self.regions.len() {
                            return Err(ValidateError::BadRegion {
                                block: id,
                                index,
                                region,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Count static `wait`/`signal` instructions (compiler-inserted).
    pub fn sync_inst_count(&self) -> usize {
        self.graph
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Wait { .. } | Inst::Signal { .. }))
            .count()
    }
}

/// Convenience free function: an operand from anything convertible.
pub fn op(x: impl Into<Operand>) -> Operand {
    x.into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AddrExpr, BinOp, InstOrigin};
    use crate::types::Value;

    fn tiny_program() -> Program {
        // bb0: r0 = 1; jump bb1
        // bb1: r1 = r0 + 2; ret
        Program {
            name: "tiny".into(),
            regions: vec![RegionDecl {
                name: "a".into(),
                size: 64,
                elem: Ty::I64,
            }],
            graph: Graph {
                blocks: vec![
                    Block {
                        label: None,
                        insts: vec![Inst::Const {
                            dst: Reg(0),
                            value: Value::Int(1),
                        }],
                        term: Terminator::Jump(BlockId(1)),
                    },
                    Block {
                        label: None,
                        insts: vec![Inst::Bin {
                            dst: Reg(1),
                            op: BinOp::Add,
                            lhs: Operand::Reg(Reg(0)),
                            rhs: Operand::imm(2),
                        }],
                        term: Terminator::Return,
                    },
                ],
                entry: BlockId(0),
            },
            n_regs: 2,
        }
    }

    #[test]
    fn valid_program_passes() {
        assert_eq!(tiny_program().validate(), Ok(()));
    }

    #[test]
    fn bad_block_ref_detected() {
        let mut p = tiny_program();
        p.graph.blocks[0].term = Terminator::Jump(BlockId(9));
        assert!(matches!(
            p.validate(),
            Err(ValidateError::BadBlockRef { .. })
        ));
    }

    #[test]
    fn bad_reg_detected() {
        let mut p = tiny_program();
        p.n_regs = 1;
        assert!(matches!(p.validate(), Err(ValidateError::BadReg { .. })));
    }

    #[test]
    fn bad_region_detected() {
        let mut p = tiny_program();
        p.graph.blocks[1].insts.push(Inst::Load {
            dst: Reg(0),
            addr: AddrExpr::region(RegionId(5), 0),
            ty: Ty::I64,
            shared: None,
            origin: InstOrigin::Original,
        });
        assert!(matches!(p.validate(), Err(ValidateError::BadRegion { .. })));
    }

    #[test]
    fn bad_entry_detected() {
        let mut p = tiny_program();
        p.graph.entry = BlockId(10);
        assert!(matches!(p.validate(), Err(ValidateError::BadEntry(_))));
    }

    #[test]
    fn predecessors_computed() {
        let p = tiny_program();
        let preds = p.graph.predecessors();
        assert!(preds[0].is_empty());
        assert_eq!(preds[1], vec![BlockId(0)]);
    }

    #[test]
    fn split_edge_inserts_block() {
        let mut p = tiny_program();
        let new = p.graph.split_edge(BlockId(0), BlockId(1));
        assert_eq!(p.graph.block(BlockId(0)).term, Terminator::Jump(new));
        assert_eq!(p.graph.block(new).term, Terminator::Jump(BlockId(1)));
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "no edge")]
    fn split_missing_edge_panics() {
        let mut p = tiny_program();
        p.graph.split_edge(BlockId(1), BlockId(0));
    }

    #[test]
    fn inst_count_sums_blocks() {
        assert_eq!(tiny_program().graph.inst_count(), 2);
    }
}
