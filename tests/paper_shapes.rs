//! Paper-shape tests: the qualitative results that define HELIX-RC must
//! hold on the reproduction — who wins, in which direction, and roughly
//! by how much. (Absolute numbers differ; the substrate is a from-scratch
//! simulator, not the authors' testbed.)

use helix_rc::experiment::{
    compiler_generations, decoupling_lattice, ExperimentOptions, LatticePoint,
};
use helix_rc::workloads::{by_name, geomean, Scale};

/// Fig. 7's core claim, on a representative integer benchmark:
/// HELIX-RC >> HCCv2 on non-numerical code.
#[test]
fn decoupling_triples_integer_speedup_direction() {
    let w = by_name("197.parser", Scale::Test).unwrap();
    let row = compiler_generations(&w, 16, &ExperimentOptions::default()).unwrap();
    assert!(
        row.helix_rc > 1.5 * row.v2,
        "decoupling should be a large multiple over compiler-only: {row:?}"
    );
    assert!(row.helix_rc > 2.0, "{row:?}");
}

/// Fig. 1's claim: compiler improvements alone (v1 -> v2) barely move
/// integer benchmarks, because both are limited by the same coarse
/// phases.
#[test]
fn compiler_only_improvement_is_small_on_int() {
    let w = by_name("164.gzip", Scale::Test).unwrap();
    let row = compiler_generations(&w, 16, &ExperimentOptions::default()).unwrap();
    assert!(
        (row.v2 - row.v1).abs() < 0.75,
        "v1 {} vs v2 {} should be close on CINT",
        row.v1,
        row.v2
    );
}

/// Fig. 1's other half: numerical programs benefit hugely from v2's
/// improved analysis (affine induction reasoning unlocks the in-place
/// hot loops).
#[test]
fn compiler_improvement_is_large_on_fp() {
    let w = by_name("179.art", Scale::Test).unwrap();
    let row = compiler_generations(&w, 16, &ExperimentOptions::default()).unwrap();
    assert!(
        row.v2 > 1.5 * row.v1,
        "v2 should clearly beat v1 on CFP: v1 {} v2 {}",
        row.v1,
        row.v2
    );
}

/// Fig. 8's monotonicity: each decoupled traffic class helps, and full
/// decoupling wins.
#[test]
fn lattice_full_decoupling_wins() {
    let w = by_name("175.vpr", Scale::Test).unwrap();
    let points = decoupling_lattice(&w, 16, &ExperimentOptions::default()).unwrap();
    let get = |p: LatticePoint| {
        points
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, s)| *s)
            .unwrap()
    };
    let all = get(LatticePoint::All);
    let base = get(LatticePoint::Hccv2);
    assert!(
        all > base,
        "full decoupling {all:.2} must beat HCCv2 {base:.2}"
    );
    for p in LatticePoint::ALL {
        assert!(
            all >= get(p) * 0.95,
            "full decoupling should be (near-)best: {p:?} = {:.2} vs all = {all:.2}",
            get(p)
        );
    }
}

/// Fig. 4a: the hot loops really are short — most iterations complete
/// within ~100 cycles on one core, many within 25.
#[test]
fn iteration_lengths_are_short() {
    let w = by_name("164.gzip", Scale::Test).unwrap();
    let lengths = helix_rc::iteration_lengths(&w, &ExperimentOptions::default()).unwrap();
    assert!(lengths.len() > 100);
    let mut v = lengths.clone();
    v.sort_unstable();
    let median = v[v.len() / 2];
    assert!(
        median < 110,
        "median iteration length {median} should be well under real c2c latencies"
    );
}

/// The headline number's *shape*: the INT geomean speedup of the suite
/// under HELIX-RC lands in the right regime (several-fold, not
/// marginal). Run on three benchmarks to keep the test fast; the bench
/// harness runs all ten.
#[test]
fn int_geomean_in_headline_regime() {
    let mut speedups = Vec::new();
    for name in ["175.vpr", "197.parser", "256.bzip2"] {
        let w = by_name(name, Scale::Test).unwrap();
        let row = compiler_generations(&w, 16, &ExperimentOptions::default()).unwrap();
        speedups.push(row.helix_rc);
    }
    let g = geomean(speedups.iter().copied());
    assert!(
        g > 3.0,
        "expected a several-fold INT geomean on 16 cores, got {g:.2} ({speedups:?})"
    );
}
