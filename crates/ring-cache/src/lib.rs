//! # helix-ring-cache
//!
//! Cycle-level model of the HELIX-RC *ring cache* (paper §5): a
//! unidirectional ring of per-core nodes that proactively circulates
//! shared data and synchronization signals, decoupling communication from
//! computation.
//!
//! Key modelled properties:
//!
//! * **Value circulation** — a store injected at any node propagates
//!   around the ring, one hop per cycle, stopping after a full trip;
//!   every node caches a local copy in a set-associative array with
//!   single-word lines (no false sharing).
//! * **Proactive signal broadcast** — `signal` messages circulate on the
//!   same ordered lane as data, so a signal can never overtake the data
//!   that precedes it (the lockstep rule).
//! * **Owner-mediated memory integration** — each address has a unique
//!   owner node (bit-mask hash over the L1 line address); only the owner
//!   reads or writes the conventional hierarchy on ring misses,
//!   evictions, and the end-of-loop flush, preserving a single
//!   serialization point per location (§5.2).
//! * **Credit-based flow control** — bounded link buffers with
//!   through-traffic priority; injection stalls rather than dropping.
//!
//! # Examples
//!
//! ```
//! use helix_ring_cache::{LoadIssue, RingCache, RingConfig};
//!
//! let mut ring = RingCache::new(RingConfig::paper_default(16));
//! ring.store(3, 0x1000);            // core 3 publishes a shared value
//! for _ in 0..20 { ring.tick(); }   // value circulates
//! match ring.load(9, 0x1000) {     // core 9 consumes it locally
//!     LoadIssue::Hit { ready_at } => assert!(ready_at > 0),
//!     LoadIssue::Pending { .. } => unreachable!("value has circulated"),
//! }
//! ```

#![warn(missing_docs)]

pub mod array;
pub mod config;
pub mod ring;
pub mod stats;

pub use array::{CacheArray, Insert};
pub use config::{ArrayConfig, RingConfig};
pub use ring::{LoadIssue, RingCache};
pub use stats::RingStats;
