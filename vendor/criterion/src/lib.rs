//! Offline mini-`criterion`.
//!
//! A wall-clock benchmarking harness exposing the subset of the criterion
//! API this workspace uses (`bench_function`, `iter`, `iter_batched`,
//! `criterion_group!`/`criterion_main!`, `sample_size`). Each benchmark
//! runs a short warmup, then `sample_size` timed samples, and prints the
//! per-iteration mean and min so regressions are visible in CI logs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn sample<F: FnMut()>(&mut self, mut body: F) {
        // Warmup, then timed samples.
        body();
        let n_samples = self.samples.capacity();
        for _ in 0..n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                body();
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.sample(|| {
            black_box(routine());
        });
    }

    /// Time `routine` over fresh inputs from `setup` (setup untimed is
    /// not modelled; inputs here are cheap relative to routines).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.sample(|| {
            let input = setup();
            black_box(routine(input));
        });
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
        };
        f(&mut b);
        let per_iter: Vec<f64> = b
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "bench {name:<40} mean {:>12}  min {:>12}  ({} samples)",
            fmt_time(mean),
            fmt_time(min),
            per_iter.len()
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $cfg;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // warmup + 3 samples
        assert!(runs >= 4);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("us"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}
