//! Workspace tests for the campaign service and the unified API: a
//! resubmitted campaign must be answered entirely from the journal
//! with a byte-identical report, concurrent identical submissions must
//! execute once, malformed requests must get typed error responses
//! without taking the server down, reports must carry the schema
//! version stamp that `helix diff` names on mismatch, and the legacy
//! entry points must agree with the `api::execute` path they wrap.

use helix_rc::api::{
    self, diff_reports, CampaignSource, Request, Response, RunOptions, SpecSource,
};
use helix_rc::campaign::run_campaign;
use helix_rc::report::SCHEMA_VERSION;
use helix_rc::scenario::{run_scenario, RunOverrides};
use helix_rc::service::{serve, submit, ServeOptions};
use helix_rc::workloads::{builtin_spec, campaign_from_inline, Scale};
use helix_rc::{ErrorKind, HelixError};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// A small two-cell campaign, carried inline so the service tests
/// exercise exactly the payload shape `helix submit` sends.
fn inline_campaign() -> (String, Vec<String>) {
    let campaign = "\
name = \"svc\"
description = \"service test campaign\"
scenarios = [\"inline\"]
scale = \"test\"
seed = 0

[grid]
cores = [8]
experiments = [\"generations\", \"coupled_vs_ring\"]
";
    let scenario = builtin_spec("900.chase")
        .expect("builtin 900.chase")
        .to_toml();
    (campaign.to_string(), vec![scenario])
}

fn campaign_request(options: RunOptions) -> Request {
    let (campaign, scenarios) = inline_campaign();
    Request::RunCampaign {
        source: CampaignSource::Inline {
            campaign,
            scenarios,
        },
        options,
    }
}

/// Start a service on a scratch socket and wait until it answers.
fn start_service(tag: &str, workers: usize) -> (PathBuf, std::thread::JoinHandle<()>) {
    let dir = std::env::temp_dir().join(format!("helix-svc-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let socket = dir.join("helix.sock");
    let options = ServeOptions {
        workers,
        ..ServeOptions::new(&socket)
    };
    let handle = std::thread::spawn(move || serve(&options).expect("serve runs"));
    let mut ready = false;
    for _ in 0..400 {
        if UnixStream::connect(&socket).is_ok() {
            ready = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(ready, "service never bound {}", socket.display());
    (socket, handle)
}

fn shutdown_service(socket: &std::path::Path, handle: std::thread::JoinHandle<()>) {
    assert!(matches!(
        submit(socket, &Request::Shutdown).expect("shutdown submits"),
        Response::ShuttingDown
    ));
    handle.join().expect("service thread exits cleanly");
    let dir = socket.parent().unwrap().to_path_buf();
    let _ = std::fs::remove_dir_all(dir);
}

/// The tentpole acceptance property: a second identical submission is
/// answered entirely from the journal — zero cells simulated, the hit
/// counter in the response proves it — and the report is byte-identical
/// to the first.
#[test]
fn second_submission_is_fully_journal_answered_and_byte_identical() {
    let (socket, handle) = start_service("resubmit", 2);
    let request = campaign_request(RunOptions::new());

    let (first_json, first_stats) = match submit(&socket, &request).expect("first submission") {
        Response::Campaign { json, stats, .. } => (json, stats),
        other => panic!("expected Campaign, got {other:?}"),
    };
    assert_eq!(first_stats.cells, 2);
    assert_eq!(
        first_stats.simulated, 2,
        "cold journal: every cell simulates"
    );
    assert_eq!(first_stats.journal_hits, 0);
    assert_eq!(first_stats.failed, 0);
    assert!(!first_stats.fully_cached());

    let (second_json, second_stats) = match submit(&socket, &request).expect("second submission") {
        Response::Campaign { json, stats, .. } => (json, stats),
        other => panic!("expected Campaign, got {other:?}"),
    };
    assert_eq!(second_stats.journal_hits, second_stats.cells);
    assert_eq!(second_stats.simulated, 0, "warm journal: nothing simulates");
    assert_eq!(
        second_stats.derived_computed, 0,
        "derived rows journaled too"
    );
    assert!(second_stats.fully_cached());
    assert_eq!(first_json, second_json, "reports must be byte-identical");
    assert!(first_json.contains(&format!("\"schema_version\": {SCHEMA_VERSION},")));

    shutdown_service(&socket, handle);
}

/// N concurrent clients submitting the same campaign all receive
/// byte-identical reports, and the journal-hit counters prove the
/// campaign executed once: exactly one response simulated the cells,
/// the rest were answered from the journal the leader filled.
#[test]
fn concurrent_identical_submissions_execute_once() {
    let (socket, handle) = start_service("concurrent", 4);
    let results: Vec<(String, usize, usize)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let socket = socket.clone();
                scope.spawn(move || {
                    match submit(&socket, &campaign_request(RunOptions::new()))
                        .expect("concurrent submission")
                    {
                        Response::Campaign { json, stats, .. } => {
                            (json, stats.simulated, stats.journal_hits)
                        }
                        other => panic!("expected Campaign, got {other:?}"),
                    }
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    let cells = 2;
    for (json, _, _) in &results {
        assert_eq!(
            *json, results[0].0,
            "all concurrent clients must see byte-identical reports"
        );
    }
    let total_simulated: usize = results.iter().map(|(_, s, _)| s).sum();
    let total_hits: usize = results.iter().map(|(_, _, h)| h).sum();
    assert_eq!(
        total_simulated, cells,
        "single-flight: the campaign simulates exactly once"
    );
    assert_eq!(total_hits, cells * (results.len() - 1));

    shutdown_service(&socket, handle);
}

/// Malformed wire lines and semantically invalid payloads both get
/// typed error responses with stable codes, and the server keeps
/// answering afterwards.
#[test]
fn malformed_requests_get_typed_errors_and_server_stays_up() {
    let (socket, handle) = start_service("errors", 2);

    // Three bad lines on one raw connection: garbage, a bad protocol
    // version, and an unknown request type.
    let mut stream = UnixStream::connect(&socket).expect("connect");
    stream
        .write_all(
            b"{not json\n{\"v\": 99, \"type\": \"status\"}\n{\"v\": 1, \"type\": \"frobnicate\"}\n",
        )
        .expect("send");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for expected_fragment in ["invalid JSON", "unsupported protocol version", "frobnicate"] {
        let mut line = String::new();
        reader.read_line(&mut line).expect("error response line");
        match api::decode_response(line.trim_end()).expect("decodable response") {
            Response::Error(e) => {
                assert_eq!(e.kind, ErrorKind::Protocol);
                assert_eq!(e.kind.code(), "E_PROTOCOL");
                assert!(
                    e.message.contains(expected_fragment),
                    "expected '{expected_fragment}' in '{}'",
                    e.message
                );
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }
    drop(reader);

    // A well-formed request with a semantically broken campaign gets a
    // typed spec error, not a dead connection.
    let broken = Request::RunCampaign {
        source: CampaignSource::Inline {
            campaign:
                "name = \"broken\"\nscenarios = [\"x\"]\n[grid]\ncores = []\nexperiments = []\n"
                    .into(),
            scenarios: vec!["name = 12\n".into()],
        },
        options: RunOptions::new(),
    };
    match submit(&socket, &broken).expect("submit broken campaign") {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::Spec),
        other => panic!("expected Error, got {other:?}"),
    }

    // The server still answers real work after all of the above.
    match submit(&socket, &Request::Status).expect("status") {
        Response::Status(status) => assert!(status.requests >= 4),
        other => panic!("expected Status, got {other:?}"),
    }

    shutdown_service(&socket, handle);
}

/// Reports are stamped with the schema version, the constant is pinned
/// (bump it deliberately, with a migration note in docs/SERVICE.md),
/// and `diff` names a version mismatch instead of dumping a byte diff.
#[test]
fn schema_version_is_stamped_and_diff_names_mismatch() {
    assert_eq!(
        SCHEMA_VERSION, 1,
        "schema version changed: update docs/SERVICE.md and this pin deliberately"
    );

    let (campaign, scenarios) = inline_campaign();
    let (spec, specs) = campaign_from_inline(&campaign, &scenarios).expect("inline campaign");
    let report = run_campaign(&spec, &specs).expect("campaign runs");
    let json = report.to_json();
    let stamp = format!("\"schema_version\": {SCHEMA_VERSION},");
    assert!(json.contains(&stamp), "campaign report missing {stamp}");

    let scenario = builtin_spec("900.chase").unwrap();
    let scenario_report =
        run_scenario(&scenario, Scale::Test, RunOverrides::default()).expect("scenario runs");
    assert!(
        scenario_report.to_json().contains(&stamp),
        "scenario report missing {stamp}"
    );

    let bumped = json.replacen(&stamp, "\"schema_version\": 2,", 1);
    let (identical, detail) = diff_reports("current.json", &json, "future.json", &bumped);
    assert!(!identical);
    assert!(
        detail.contains("schema version mismatch"),
        "mismatch must be named: {detail}"
    );
    assert!(
        detail.contains("current.json has schema_version 1"),
        "{detail}"
    );
    assert!(
        detail.contains("future.json has schema_version 2"),
        "{detail}"
    );
    assert!(
        !detail.contains("--- <"),
        "a named mismatch must not fall through to the byte diff: {detail}"
    );
}

/// The legacy conveniences (`run_campaign`, `run_scenario`) and the
/// unified `api::execute` path they now wrap must produce the same
/// reports, and `execute` must surface failures as typed responses with
/// the documented exit codes.
#[test]
fn legacy_wrappers_agree_with_execute_and_errors_are_typed() {
    let (campaign, scenarios) = inline_campaign();
    let (spec, specs) = campaign_from_inline(&campaign, &scenarios).expect("inline campaign");
    let legacy = run_campaign(&spec, &specs).expect("legacy entry point runs");

    let response = api::execute(campaign_request(RunOptions::new()));
    let Response::Campaign {
        json,
        stats,
        report,
        ..
    } = response
    else {
        panic!("expected Campaign response");
    };
    assert_eq!(json, legacy.to_json(), "wrapper and execute must agree");
    assert_eq!(report.as_deref(), Some(&legacy));
    assert_eq!(stats.cells, stats.simulated + stats.journal_hits);

    let scenario = builtin_spec("900.chase").unwrap();
    let legacy_fp = run_scenario(&scenario, Scale::Test, RunOverrides::default())
        .expect("legacy scenario run")
        .fingerprint();
    let Response::Scenario {
        report: Some(report),
        ..
    } = api::execute(Request::RunScenario {
        source: SpecSource::Inline(scenario.to_toml()),
        options: RunOptions::new(),
    })
    else {
        panic!("expected Scenario response");
    };
    assert_eq!(report.fingerprint(), legacy_fp);

    // Typed failure surface: a nonexistent campaign file is an I/O
    // error with exit code 1; usage errors map to exit code 2.
    let missing = api::execute(Request::RunCampaign {
        source: CampaignSource::Path(PathBuf::from("/no/such/campaign.toml")),
        options: RunOptions::new(),
    });
    match &missing {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::Io),
        other => panic!("expected Error, got {other:?}"),
    }
    assert_eq!(missing.exit_code(), 1);
    let usage = Response::Error(HelixError::usage("--resume requires a journal"));
    assert_eq!(usage.exit_code(), 2);
}
