//! The multicore machine: global cycle loop, serial/parallel phase
//! orchestration, and the per-core issue logic for both core models.

use crate::attribution::{Attribution, Bucket};
use crate::config::{CoreModel, MachineConfig};
use crate::core::{inst_latency, CoreState, RobEntry, RunState};
use crate::memsys::{MemStats, MemSystem};
use crate::race::{RaceDetector, RaceViolation};
use crate::sync::{required_count, required_sources_iter, SyncState, WaitBlock};
use helix_hcc::{LiveOutResolve, LoopPlan};
use helix_ir::decode::{DTerm, DTermKind, DecodedProgram, UOpKind, NO_REG};
use helix_ir::interp::{Env, InterpError, StepEvent, Thread};
use helix_ir::trace::{InstSite, MemAccess, TraceSink};
use helix_ir::{BlockId, Inst, Program, Reg, SegmentId, Terminator, Value};
use helix_ring_cache::{LoadIssue, RingCache, RingStats};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// Functional execution faulted.
    Interp(InterpError),
    /// The cycle budget was exhausted.
    FuelExhausted {
        /// Cycles executed before giving up.
        cycles: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Interp(e) => write!(f, "functional fault: {e}"),
            SimError::FuelExhausted { cycles } => {
                write!(f, "cycle budget exhausted after {cycles}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<InterpError> for SimError {
    fn from(e: InterpError) -> Self {
        SimError::Interp(e)
    }
}

/// Results of one simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Total cycles.
    pub cycles: u64,
    /// Dynamic instructions across all cores.
    pub dyn_insts: u64,
    /// Per-cycle attribution.
    pub attribution: Attribution,
    /// Digest of final memory contents.
    pub mem_digest: u64,
    /// Ring statistics, when a ring was configured.
    pub ring_stats: Option<RingStats>,
    /// Memory-hierarchy statistics.
    pub mem_stats: MemStats,
    /// Race violations (must be empty for a correct compiler).
    #[serde(skip)]
    pub race_violations: Vec<RaceViolation>,
    /// Protocol errors (missing signals, escaped workers, ...).
    pub protocol_errors: Vec<String>,
    /// Parallel loop invocations executed.
    pub loop_invocations: u64,
    /// Parallel iterations executed.
    pub iterations: u64,
    /// Sampled per-iteration durations in cycles (Fig. 4a).
    pub iteration_lengths: Vec<u32>,
    /// Orchestrator register file at program end.
    #[serde(skip)]
    pub final_regs: Vec<Value>,
}

impl RunReport {
    /// Speedup of this run relative to a baseline cycle count.
    pub fn speedup_vs(&self, baseline_cycles: u64) -> f64 {
        baseline_cycles as f64 / self.cycles.max(1) as f64
    }
}

/// Per-parallel-loop context.
#[derive(Debug)]
struct ParCtx {
    plan: usize,
    trip: u64,
    r0: Vec<Value>,
    /// Per-register `(defining iteration, core)` for LastWriter
    /// live-outs, indexed by `Reg::index` (dense; registers are few).
    last_writer: Vec<Option<(u64, usize)>>,
    /// Registers resolved by LastWriter, indexed by `Reg::index`.
    lastwriter_regs: Vec<bool>,
    /// Whether any register uses LastWriter resolution (most plans have
    /// none; the per-step def tracking short-circuits on this).
    has_lastwriter: bool,
    seg_ids: Vec<SegmentId>,
}

#[derive(Debug)]
enum Mode {
    Serial,
    Parallel(ParCtx),
}

/// What one core did during one cycle, reported by the per-core tick so
/// the machine can fast-forward through globally idle stretches.
#[derive(Debug, Clone, Copy)]
enum CoreCycle {
    /// The core issued, retired, or changed state: the cycle cannot be
    /// part of an idle window.
    Progress,
    /// The core provably did nothing and cannot do anything before
    /// `wake` (with `u64::MAX` meaning "only another core or a ring
    /// event can wake it"). `bucket` is the stall class the cycle was
    /// charged to — identical for every cycle of the stalled window.
    Stalled {
        /// Bucket the stall cycle was charged to.
        bucket: Bucket,
        /// First cycle at which this core's stall condition can change.
        wake: u64,
    },
}

/// Per-core wait-check memo (see [`Machine::check_wait`]).
#[derive(Debug, Clone, Copy)]
struct WaitMemo {
    /// Segment of the memoized check.
    seg: SegmentId,
    /// Iteration of the memoized check.
    iter: u64,
    /// Sources already confirmed for `(seg, iter)` — a monotone prefix
    /// of the required-source scan.
    confirmed: u32,
    /// The first unsatisfied source of the last failed check, so the
    /// re-check starts with one counter compare instead of rebuilding
    /// the source iterator.
    src: u32,
    /// Signals needed from `src`.
    need: u64,
}

impl WaitMemo {
    const EMPTY: WaitMemo = WaitMemo {
        seg: SegmentId(u32::MAX),
        iter: u64::MAX,
        confirmed: 0,
        src: u32::MAX,
        need: 0,
    };
}

/// Why a core's `wake == u64::MAX` stall — one whose end is
/// event-driven rather than deterministic — is allowed to sleep, and
/// exactly which event ends it. While the guard holds, the core's issue
/// loop provably reproduces the same stall cycle, so the machine
/// charges it without re-evaluating (optimized path only; a ring-load
/// completion bumps the requester node's load epoch and is covered by
/// the `Epochs` guard like every other ring event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallGuard {
    /// Catch-all snapshot (ring backpressure, outstanding-load operand
    /// waits, unexpected shapes): re-evaluate when either of the
    /// core-node epochs moves. Stalls of this shape provably do not
    /// read the sync tables or the lap bound, so those are not inputs.
    Epochs {
        /// [`RingCache::signal_epoch`] of the core's node (0 without
        /// ring).
        ring_sig: u64,
        /// [`RingCache::inject_epoch`] of the core's node (0 without
        /// ring).
        inject: u64,
        /// [`RingCache::load_epoch`] of the core's node (0 without
        /// ring) — a pending in-flight load cannot become ready until
        /// this moves, so even cores with outstanding ring loads sleep
        /// on this guard instead of polling completions every cycle.
        loads: u64,
    },
    /// Blocked `wait`: holds while `src` has neither delivered its
    /// `need`-th signal for `seg` to this node (grant state, decoupled
    /// only) nor — when the stall is classified `Dependence` — executed
    /// it (classification flips to `Communication` at that point).
    Wait {
        /// Segment being waited on.
        seg: SegmentId,
        /// First unsatisfied source core.
        src: u32,
        /// Signals needed from `src`.
        need: u64,
        /// Ring-delivered count at arm time (`u64::MAX` when the wait
        /// is coherence-mediated and grant state has no ring input).
        ring_count: u64,
        /// Whether the stall is still classified `Dependence`
        /// (`sync.count < need`); once `Communication`, classification
        /// is stable.
        dependence: bool,
    },
    /// Lap-bound hold: re-evaluate when the bound input moves.
    Lap {
        /// The lap bound input.
        min_iter: u64,
    },
    /// Pure-idle run states (serial idle, no work, finished loop):
    /// nothing short of a mode transition — which settles and clears
    /// every sleep — can wake the core.
    Forever,
}

/// Sink capturing the memory accesses of a single step.
#[derive(Debug, Default)]
struct CapSink {
    mem: Vec<MemAccess>,
}

impl TraceSink for CapSink {
    fn on_mem(&mut self, _site: InstSite, access: MemAccess) {
        self.mem.push(access);
    }
}

/// The machine simulator.
#[derive(Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    plans: &'p [LoopPlan],
    cfg: MachineConfig,
    env: Env,
    cores: Vec<CoreState>,
    memsys: MemSystem,
    ring: Option<RingCache>,
    sync: SyncState,
    attr: Attribution,
    race: RaceDetector,
    now: u64,
    mode: Mode,
    /// Plan index per header block, indexed by `BlockId::index` (dense).
    plan_by_header: Vec<Option<usize>>,
    /// Per-plan loop-membership bitmaps, indexed `[plan][block]`, so the
    /// escape check after every control transfer is one load instead of
    /// a scan of the plan's block list.
    plan_blocks: Vec<Vec<bool>>,
    pending_enter: Option<usize>,
    protocol_errors: Vec<String>,
    loop_invocations: u64,
    iterations: u64,
    iteration_lengths: Vec<u32>,
    /// Minimum in-flight iteration this cycle (for the lap bound).
    /// Recomputed lazily: the in-flight multiset only changes at
    /// iteration boundaries and mode transitions, which set the dirty
    /// flag; in between, the cycle loop reuses the cached value (the
    /// per-cycle recompute always produced the same number).
    min_iter: u64,
    /// Whether `min_iter` must be recomputed at the next cycle start.
    min_iter_dirty: bool,
    /// Cores in `FinishedLoop` or `NoWork` this invocation — maintained
    /// at the transitions so the loop-barrier check is a counter
    /// compare, not a per-cycle core scan.
    done_cores: usize,
    /// Per-core stall buckets of the last fully idle cycle (reused
    /// buffer for the fast-forward bulk charge).
    stall_buckets: Vec<Bucket>,
    /// Per-core sleep deadline: a sleeping core wakes when the clock
    /// reaches this (deterministic stalls: scoreboard ready time, branch
    /// redirect, coherence observation, own-ROB retirement) or when its
    /// [`StallGuard`] breaks (event-driven stalls, `u64::MAX` here).
    asleep_until: Vec<u64>,
    /// Bucket charged to each sleeping core's cycles.
    sleep_bucket: Vec<Bucket>,
    /// Cycle each sleeping core entered its sleep (`u64::MAX` = awake).
    /// Sleep cycles are charged in one batch at wake ("settled"), not
    /// one `charge` call per cycle — same totals, no per-cycle work.
    sleep_from: Vec<u64>,
    /// Number of cores currently sleeping, recomputed after every
    /// executed core loop. When every core sleeps, no wake hint is
    /// pending, and no deadline is due, the whole per-core loop is
    /// provably a no-op and is skipped.
    sleeping_count: usize,
    /// Earliest sleep deadline among sleeping cores (recomputed with
    /// `sleeping_count`).
    next_deadline: u64,
    /// Per-core conditional sleep for event-driven (`u64::MAX`-wake)
    /// stalls: while the guard holds, the stall repeats verbatim.
    /// `None` = no guard armed.
    stall_guard: Vec<Option<StallGuard>>,
    /// Cause-specific guard proposed by the current core's stall path
    /// (set by `check_wait` / the lap hold), consumed by the cycle loop
    /// when the core reports an event-driven stall.
    armed_guard: Option<StallGuard>,
    /// Per-core wake hints (bit `cid % 64`): set when an event that
    /// could break core `cid`'s stall guard occurred — a ring delivery
    /// or drain at its node, a signal execution by its guarded blocking
    /// source, or lap-bound movement. A sleeping core with a clear bit
    /// skips even the guard re-validation; a set bit is consumed by one
    /// validation (when more than 64 cores share bits, hints are never
    /// consumed and every sleeper validates each cycle, which is merely
    /// slower).
    wake_bits: u64,
    /// Dependence-wake routing: `dep_mask[src]` is the set of sleeping
    /// cores whose `Wait` guard is classified `Dependence` on source
    /// `src` — a signal execution by `src` wakes exactly those.
    dep_mask: Vec<u64>,
    /// The source each sleeping core's dependence wake is registered
    /// under (`u32::MAX` = none), for cheap deregistration at wake.
    dep_src: Vec<u32>,
    /// Sleeping cores holding a `Lap` guard; woken when the lap bound
    /// moves.
    lap_sleepers: u64,
    /// Per-core wait-check memo: grant checks are monotone (signal
    /// counts only grow, observation times never regress), so sources
    /// already confirmed for this `(segment, iteration)` need not be
    /// re-checked, and a *failed* decoupled check can be replayed
    /// outright while no new signal has arrived or executed. Used only
    /// on the optimized path.
    wait_memo: Vec<WaitMemo>,
    /// Reused memory-access capture buffer for functional steps.
    sink: CapSink,
    /// Pre-decoded micro-op tables (the default engine). `None` when the
    /// configuration selects the tree interpreter. Shared behind an
    /// `Arc` so the issue loops can hold it while mutating the machine
    /// and so lane sessions can share one decode across machines.
    decoded: Option<Arc<DecodedProgram>>,
    /// Per-micro-op execution latency, indexed like the decoded table
    /// (computed once from [`inst_latency`], so the two engines can
    /// never drift).
    uop_lat: Vec<u32>,
}

const MAX_ITER_SAMPLES: usize = 1 << 16;
/// Extra cycles a coherence-mediated wait pays to observe a flag after
/// the transfer completes (spin-loop detection).
const SPIN_OVERHEAD: u64 = 2;

/// A retired machine's reusable allocations, detached from any program
/// lifetime. [`Machine::into_spares`] produces one;
/// [`Machine::recycled`] rebuilds a machine from one, observably
/// identical to a from-scratch [`Machine::new`] — every component is
/// reset through a `renew` path that reuses buffer capacity but
/// restores construction-time state. Spares from a mismatched shape
/// still work: each component falls back to a fresh build where its
/// geometry differs.
#[derive(Debug, Default)]
pub struct MachineSpares {
    cores: Vec<CoreState>,
    memsys: Option<MemSystem>,
    ring: Option<RingCache>,
    sync: Option<SyncState>,
    race: Option<RaceDetector>,
    attr: Option<Attribution>,
    plan_by_header: Vec<Option<usize>>,
    plan_blocks: Vec<Vec<bool>>,
    protocol_errors: Vec<String>,
    iteration_lengths: Vec<u32>,
    stall_buckets: Vec<Bucket>,
    asleep_until: Vec<u64>,
    sleep_bucket: Vec<Bucket>,
    sleep_from: Vec<u64>,
    stall_guard: Vec<Option<StallGuard>>,
    dep_mask: Vec<u64>,
    dep_src: Vec<u32>,
    wait_memo: Vec<WaitMemo>,
    sink_mem: Vec<MemAccess>,
    uop_lat: Vec<u32>,
}

impl MachineSpares {
    /// The configuration shape these spares were retired under:
    /// `(core count, had a ring)`. Pools key on this so a recycled
    /// build mostly finds same-sized buffers; a mismatch is never
    /// wrong, just less reuse.
    pub fn shape(&self) -> (usize, bool) {
        (self.cores.len(), self.ring.is_some())
    }
}

impl<'p> Machine<'p> {
    /// Build a machine over a (possibly transformed) program and its
    /// parallel-loop plans.
    pub fn new(program: &'p Program, plans: &'p [LoopPlan], cfg: MachineConfig) -> Machine<'p> {
        let decoded = cfg
            .engine
            .is_decoded()
            .then(|| Arc::new(helix_ir::decode::decode(program)));
        Machine::build(program, plans, cfg, decoded, MachineSpares::default())
    }

    /// Build a machine over an already-decoded program, sharing the
    /// decoded micro-op tables with other machines (lane sessions decode
    /// once per scenario and hand every lane the same `Arc`). The
    /// configuration must select a decoded engine. Results are
    /// bit-identical to [`Machine::new`] with the same inputs.
    pub fn with_decoded(
        program: &'p Program,
        plans: &'p [LoopPlan],
        cfg: MachineConfig,
        decoded: Arc<DecodedProgram>,
    ) -> Machine<'p> {
        assert!(
            cfg.engine.is_decoded(),
            "with_decoded requires a decoded engine"
        );
        Machine::build(program, plans, cfg, Some(decoded), MachineSpares::default())
    }

    /// Build a machine over a retired machine's recycled allocations
    /// (see [`MachineSpares`]). `decoded` is used only when the
    /// configuration selects a decoded engine; pass `None` to decode
    /// here. Results are bit-identical to [`Machine::new`] with the
    /// same inputs.
    pub fn recycled(
        program: &'p Program,
        plans: &'p [LoopPlan],
        cfg: MachineConfig,
        decoded: Option<Arc<DecodedProgram>>,
        spares: MachineSpares,
    ) -> Machine<'p> {
        let decoded = if cfg.engine.is_decoded() {
            Some(decoded.unwrap_or_else(|| Arc::new(helix_ir::decode::decode(program))))
        } else {
            None
        };
        Machine::build(program, plans, cfg, decoded, spares)
    }

    /// Retire this machine into its reusable allocations.
    pub fn into_spares(self) -> MachineSpares {
        let mut sink_mem = self.sink.mem;
        sink_mem.clear();
        MachineSpares {
            cores: self.cores,
            memsys: Some(self.memsys),
            ring: self.ring,
            sync: Some(self.sync),
            race: Some(self.race),
            attr: Some(self.attr),
            plan_by_header: self.plan_by_header,
            plan_blocks: self.plan_blocks,
            protocol_errors: self.protocol_errors,
            iteration_lengths: self.iteration_lengths,
            stall_buckets: self.stall_buckets,
            asleep_until: self.asleep_until,
            sleep_bucket: self.sleep_bucket,
            sleep_from: self.sleep_from,
            stall_guard: self.stall_guard,
            dep_mask: self.dep_mask,
            dep_src: self.dep_src,
            wait_memo: self.wait_memo,
            sink_mem,
            uop_lat: self.uop_lat,
        }
    }

    fn build(
        program: &'p Program,
        plans: &'p [LoopPlan],
        cfg: MachineConfig,
        decoded: Option<Arc<DecodedProgram>>,
        spares: MachineSpares,
    ) -> Machine<'p> {
        cfg.assert_valid();
        let MachineSpares {
            cores: spare_cores,
            memsys: spare_memsys,
            ring: spare_ring,
            sync: spare_sync,
            race: spare_race,
            attr: spare_attr,
            mut plan_by_header,
            mut plan_blocks,
            mut protocol_errors,
            mut iteration_lengths,
            mut stall_buckets,
            mut asleep_until,
            mut sleep_bucket,
            mut sleep_from,
            mut stall_guard,
            mut dep_mask,
            mut dep_src,
            mut wait_memo,
            sink_mem,
            mut uop_lat,
        } = spares;
        let env = Env::for_program(program);
        let n_regs = program.n_regs as usize;
        let n_segs = plans
            .iter()
            .flat_map(|p| &p.segments)
            .map(|s| s.id.index() + 1)
            .max()
            .unwrap_or(0);
        let mut cores: Vec<CoreState> = spare_cores
            .into_iter()
            .take(cfg.cores)
            .enumerate()
            .map(|(id, c)| c.renew(id, program, n_regs, n_segs))
            .collect();
        for id in cores.len()..cfg.cores {
            cores.push(CoreState::new(
                id,
                Thread::at_entry(program),
                n_regs,
                n_segs,
            ));
        }
        let memsys = match spare_memsys {
            Some(m) => MemSystem::renew(&cfg, m),
            None => MemSystem::new(&cfg),
        };
        let ring = cfg.ring.map(|mut rc| {
            // The ring's idle-tick short-circuit is part of the fast
            // path: the naive reference mode must pay the full
            // per-cycle walk it is meant to measure.
            rc.event_skip = cfg.fast_forward;
            match spare_ring {
                Some(spare) => RingCache::renew(rc, spare),
                None => RingCache::new(rc),
            }
        });
        plan_by_header.clear();
        plan_by_header.resize(program.graph.blocks.len(), None);
        for (i, p) in plans.iter().enumerate() {
            plan_by_header[p.header.index()] = Some(i);
        }
        plan_blocks.truncate(plans.len());
        plan_blocks.resize_with(plans.len(), Vec::new);
        for (p, member) in plans.iter().zip(&mut plan_blocks) {
            member.clear();
            member.resize(program.graph.blocks.len(), false);
            for b in &p.blocks {
                member[b.index()] = true;
            }
        }
        uop_lat.clear();
        if let Some(d) = decoded.as_ref() {
            uop_lat.extend(d.insts().iter().map(inst_latency));
        }
        protocol_errors.clear();
        iteration_lengths.clear();
        stall_buckets.clear();
        stall_buckets.resize(cfg.cores, Bucket::SerialIdle);
        asleep_until.clear();
        asleep_until.resize(cfg.cores, 0);
        sleep_bucket.clear();
        sleep_bucket.resize(cfg.cores, Bucket::SerialIdle);
        sleep_from.clear();
        sleep_from.resize(cfg.cores, u64::MAX);
        stall_guard.clear();
        stall_guard.resize(cfg.cores, None);
        dep_mask.clear();
        dep_mask.resize(cfg.cores, 0);
        dep_src.clear();
        dep_src.resize(cfg.cores, u32::MAX);
        wait_memo.clear();
        wait_memo.resize(cfg.cores, WaitMemo::EMPTY);
        Machine {
            program,
            plans,
            attr: match spare_attr {
                Some(a) => a.renew(cfg.cores),
                None => Attribution::new(cfg.cores),
            },
            env,
            cores,
            memsys,
            ring,
            sync: match spare_sync {
                Some(s) => s.renew(n_segs, cfg.cores),
                None => SyncState::new(n_segs, cfg.cores),
            },
            race: match spare_race {
                Some(r) => r.renew(),
                None => RaceDetector::new(),
            },
            now: 0,
            mode: Mode::Serial,
            plan_by_header,
            plan_blocks,
            pending_enter: None,
            protocol_errors,
            loop_invocations: 0,
            iterations: 0,
            iteration_lengths,
            min_iter: 0,
            min_iter_dirty: true,
            done_cores: 0,
            stall_buckets,
            asleep_until,
            sleep_bucket,
            sleep_from,
            sleeping_count: 0,
            next_deadline: u64::MAX,
            stall_guard,
            armed_guard: None,
            wake_bits: u64::MAX,
            dep_mask,
            dep_src,
            lap_sleepers: 0,
            wait_memo,
            sink: CapSink { mem: sink_mem },
            decoded,
            uop_lat,
            cfg,
        }
    }

    /// Run to completion (or until `fuel` cycles elapse).
    ///
    /// With `cfg.fast_forward` set (the default), cycles in which every
    /// core is provably stalled are not simulated one at a time: the
    /// clock jumps to the earliest wakeup event (scoreboard ready time,
    /// ROB retirement, coherence-mediated signal observation, or ring
    /// message arrival) and the skipped cycles are bulk-charged to the
    /// same attribution buckets the naive loop would have charged.
    /// Results are cycle-exact either way.
    ///
    /// # Errors
    ///
    /// Fails on functional faults or fuel exhaustion.
    pub fn run(&mut self, fuel: u64) -> Result<RunReport, SimError> {
        match self.run_slice(u64::MAX, fuel) {
            Ok(Some(report)) => Ok(report),
            Ok(None) => unreachable!("run_slice(u64::MAX, _) always retires or errors"),
            Err(e) => Err(e),
        }
    }

    /// Run until the machine finishes, the clock reaches `until`, or
    /// `fuel` cycles elapse — the resumable slice primitive lane
    /// sessions step machines with. Returns `Ok(Some(report))` when the
    /// program retired, `Ok(None)` when the slice boundary was reached
    /// first (call again with a later `until` to continue). The
    /// trajectory is identical to an unsliced [`Machine::run`]: slicing
    /// only bounds how far one call advances the clock.
    ///
    /// # Errors
    ///
    /// Fails on functional faults or fuel exhaustion (fuel is measured
    /// on the machine's own clock, so it is slice-invariant).
    pub fn run_slice(&mut self, until: u64, fuel: u64) -> Result<Option<RunReport>, SimError> {
        while !self.finished() {
            if self.now >= fuel {
                return Err(SimError::FuelExhausted { cycles: self.now });
            }
            if self.now >= until {
                return Ok(None);
            }
            let wake = self.tick_cycle()?;
            if let Some(wake) = wake {
                // Every core is stalled until `wake` at the earliest and
                // the ring has no event before then: jump there (bounded
                // by the fuel limit, where the naive loop would stop).
                let target = wake.min(fuel);
                if target > self.now {
                    let skip = target - self.now;
                    for cid in 0..self.cfg.cores {
                        // Bulk sleepers accumulate the skipped window
                        // through `sleep_from` and settle at wake;
                        // charging them here would double-count.
                        if self.sleep_from[cid] == u64::MAX {
                            self.attr.charge_n(cid, self.stall_buckets[cid], skip);
                        }
                    }
                    // Advance the ring by the same number of cycles the
                    // naive loop would have ticked it. The ring clock can
                    // lag the machine clock (reduction combining at a loop
                    // barrier charges machine cycles the ring never sees),
                    // so jumping the ring *to* `target` would erase that
                    // offset and shift every subsequent ready time.
                    if let Some(ring) = &mut self.ring {
                        ring.fast_forward(ring.now() + skip);
                    }
                    self.now = target;
                }
            }
        }
        self.settle_sleeps();
        Ok(Some(self.report()))
    }

    fn finished(&self) -> bool {
        matches!(self.mode, Mode::Serial) && self.cores[0].thread.finished
    }

    /// Scheduling hint for lane sessions: a lower bound on the next
    /// machine-clock cycle at which this machine does real (non-fast-
    /// forwardable) work. `u64::MAX` when finished. When every core is
    /// sleeping with no wake hint pending, the next event is the
    /// earliest sleep deadline or ring arrival (translated to the
    /// machine clock, which the ring clock can lag); otherwise it is
    /// simply `now`. Purely advisory: stepping the machine earlier or
    /// later never changes its trajectory, only how much of a slice is
    /// spent fast-forwarding.
    pub fn next_event_at(&self) -> u64 {
        if self.finished() {
            return u64::MAX;
        }
        if self.sleeping_count == self.cfg.cores
            && self.wake_bits == 0
            && self.now < self.next_deadline
        {
            let ring_bound = self
                .ring
                .as_ref()
                .and_then(|r| {
                    r.next_event_at()
                        .map(|t| t.saturating_add(self.now - r.now()))
                })
                .unwrap_or(u64::MAX);
            return self.next_deadline.min(ring_bound).max(self.now);
        }
        self.now
    }

    /// Mid-run progress counters `(now, retired dynamic instructions)`,
    /// for exactness diagnostics that step two machines in lockstep
    /// with [`Machine::run_slice`] and compare trajectories.
    #[doc(hidden)]
    pub fn probe_progress(&self) -> (u64, u64) {
        (
            self.now,
            self.cores.iter().map(|c| c.thread.dyn_insts).sum(),
        )
    }

    fn report(&self) -> RunReport {
        RunReport {
            cycles: self.now,
            dyn_insts: self.cores.iter().map(|c| c.thread.dyn_insts).sum(),
            attribution: self.attr.clone(),
            mem_digest: self.env.mem.digest(),
            ring_stats: self.ring.as_ref().map(|r| r.stats().clone()),
            mem_stats: self.memsys.stats,
            race_violations: self.race.violations.clone(),
            protocol_errors: self.protocol_errors.clone(),
            loop_invocations: self.loop_invocations,
            iterations: self.iterations,
            iteration_lengths: self.iteration_lengths.clone(),
            final_regs: self.cores[0].thread.regs.clone(),
        }
    }

    /// Simulate one cycle. Returns `Some(wake)` when the cycle was
    /// globally idle — every core stalled, no mode transition — and the
    /// next cycle at which anything can change is `wake`; the caller may
    /// then skip the clock straight there.
    fn tick_cycle(&mut self) -> Result<Option<u64>, SimError> {
        if let Some(ring) = &mut self.ring {
            ring.tick();
            self.wake_bits |= ring.take_wake_mask();
        }
        // Lap bound: the slowest in-flight iteration (recomputed only
        // when some core crossed an iteration boundary since the last
        // cycle — mid-cycle changes were invisible to the eager version
        // too, because it ran before the core loop).
        if self.min_iter_dirty {
            let refreshed = self
                .cores
                .iter()
                .map(|c| match c.run {
                    RunState::Iter { iter, .. } | RunState::LapHold { iter } => iter,
                    _ => u64::MAX,
                })
                .min()
                .unwrap_or(u64::MAX);
            if refreshed != self.min_iter {
                self.wake_bits |= self.lap_sleepers; // lap guards re-check
            }
            self.min_iter = refreshed;
            self.min_iter_dirty = false;
        }
        let mut all_stalled = true;
        let mut min_wake = u64::MAX;
        // With every core sleeping, no wake hint pending, and no
        // deadline due, the per-core loop is a no-op: each core would
        // hit its clear wake bit and continue. Skip it outright.
        let skip_loop = self.sleeping_count == self.cfg.cores
            && self.wake_bits == 0
            && self.now < self.next_deadline;
        if skip_loop {
            min_wake = self.next_deadline;
        }
        for cid in 0..if skip_loop { 0 } else { self.cfg.cores } {
            if self.sleep_from[cid] != u64::MAX {
                // Mid-sleep: the stall repeats verbatim while the
                // deadline is ahead and the guard (if any) holds. With
                // no wake hint pending, the guard provably holds and
                // even the re-validation is skipped. The accumulated
                // cycles are charged in one batch at wake.
                let until = self.asleep_until[cid];
                let bit = 1u64 << (cid as u64 & 63);
                if self.now < until {
                    if self.wake_bits & bit == 0 {
                        min_wake = min_wake.min(until);
                        continue;
                    }
                    let intact = match self.stall_guard[cid] {
                        Some(guard) => self.guard_intact(cid, guard),
                        None => true,
                    };
                    if intact {
                        // Consume the hint (only exclusive owners may;
                        // shared bits just re-validate every cycle).
                        if self.cfg.cores <= 64 {
                            self.wake_bits &= !bit;
                        }
                        min_wake = min_wake.min(until);
                        continue;
                    }
                }
                let elapsed = self.now - self.sleep_from[cid];
                if elapsed > 0 {
                    self.attr.charge_n(cid, self.sleep_bucket[cid], elapsed);
                }
                self.sleep_from[cid] = u64::MAX;
                self.stall_guard[cid] = None;
                self.clear_wake_routing(cid);
            }
            let cycle = self.tick_core(cid)?;
            let armed = self.armed_guard.take();
            match cycle {
                CoreCycle::Progress => {
                    all_stalled = false;
                    self.stall_guard[cid] = None;
                }
                CoreCycle::Stalled { bucket, wake } => {
                    self.stall_buckets[cid] = bucket;
                    min_wake = min_wake.min(wake);
                    if self.cfg.fast_forward && wake != u64::MAX {
                        // Deterministic wake: sleep through the stall.
                        self.asleep_until[cid] = wake;
                        self.sleep_bucket[cid] = bucket;
                        self.sleep_from[cid] = self.now + 1;
                        self.stall_guard[cid] = None;
                    } else if self.cfg.fast_forward && self.stall_guard[cid].is_none() {
                        // Event-driven wake: sleep until the stall's
                        // cause-specific inputs move (see
                        // [`StallGuard`]). In-flight ring loads are
                        // covered by the load epoch in the `Epochs`
                        // guard — except a ticket serviced *before* the
                        // guard snapshot, which can never move the
                        // epoch again; a core holding one stays awake
                        // and retires it on the next poll.
                        self.sleep_bucket[cid] = bucket;
                        self.stall_guard[cid] =
                            Some(armed.unwrap_or_else(|| self.epochs_guard(cid)));
                        let serviced_pending = !self.cores[cid].pending_ring.is_empty()
                            && self.ring.as_ref().is_some_and(|r| {
                                self.cores[cid]
                                    .pending_ring
                                    .iter()
                                    .any(|&(ticket, _)| r.load_ready(ticket).is_some())
                            });
                        if !serviced_pending {
                            self.asleep_until[cid] = u64::MAX;
                            self.sleep_from[cid] = self.now + 1;
                            self.register_wake_routing(cid);
                        }
                    }
                }
            }
        }
        self.now += 1;
        let mut transition = false;
        if let Some(plan) = self.pending_enter.take() {
            self.enter_parallel(plan);
            transition = true;
        }
        if matches!(self.mode, Mode::Parallel(_)) && self.done_cores == self.cfg.cores {
            self.exit_parallel();
            transition = true;
        }
        if !skip_loop || transition {
            // Refresh the loop-skip inputs (sleeps may have been armed,
            // woken, or settled this cycle).
            let mut count = 0;
            let mut deadline = u64::MAX;
            for cid in 0..self.cfg.cores {
                if self.sleep_from[cid] != u64::MAX {
                    count += 1;
                    deadline = deadline.min(self.asleep_until[cid]);
                }
            }
            self.sleeping_count = count;
            self.next_deadline = deadline;
        }
        if !self.cfg.fast_forward || !all_stalled || transition {
            return Ok(None);
        }
        if min_wake <= self.now {
            return Ok(None); // a core wakes immediately: nothing to skip
        }
        // Ring arrivals can grant decoupled waits, complete pending
        // loads, and drain backpressured injection queues: never skip
        // past the next ring event.
        let ring_bound = self
            .ring
            .as_ref()
            .and_then(|r| r.next_event_at())
            .unwrap_or(u64::MAX);
        Ok(Some(min_wake.min(ring_bound)))
    }

    /// Enter parallel execution of `plans[pidx]`; the orchestrator's
    /// thread is positioned at the loop header.
    fn enter_parallel(&mut self, pidx: usize) {
        self.settle_sleeps();
        self.wake_bits = u64::MAX;
        let plan = &self.plans[pidx];
        let mut r0 = self.cores[0].thread.regs.clone();
        for ind in &plan.inductions {
            r0[ind.init_copy.index()] = r0[ind.reg.index()];
        }
        for p2 in &plan.poly2 {
            r0[p2.init_copy.index()] = r0[p2.reg.index()];
        }
        let counter_entry = r0[plan.counter.index()].as_int();
        let bound = match plan.bound {
            helix_ir::Operand::Reg(r) => r0[r.index()].as_int(),
            helix_ir::Operand::Imm(v) => v.as_int(),
        };
        let trip = plan.trip_count(counter_entry, bound);
        debug_assert!(trip >= 1, "zero-trip loops stay serial");

        self.min_iter_dirty = true;
        let mut done_cores = 0;
        for (cid, core) in self.cores.iter_mut().enumerate() {
            core.thread.regs = r0.clone();
            core.thread.finished = false;
            if cid > 0 {
                for red in &plan.reductions {
                    core.thread.regs[red.reg.index()] = red.identity;
                }
            }
            for t in core.reg_ready.iter_mut() {
                *t = self.now;
            }
            core.reset_iteration();
            core.pending_ring.clear();
            core.fetch_stall_until = 0;
            if (cid as u64) < trip {
                core.thread.block = plan.iteration_entry;
                core.thread.ip = 0;
                core.thread.regs[plan.iter_reg.index()] = Value::Int(cid as i64);
                core.run = RunState::Iter {
                    iter: cid as u64,
                    started_at: self.now,
                };
            } else {
                core.run = RunState::NoWork;
                done_cores += 1;
            }
        }
        self.done_cores = done_cores;
        self.sync.begin_loop();
        self.race.begin_loop();
        self.asleep_until.iter_mut().for_each(|t| *t = 0);
        self.stall_guard.iter_mut().for_each(|g| *g = None);
        self.wait_memo.iter_mut().for_each(|m| *m = WaitMemo::EMPTY);
        if let Some(ring) = &mut self.ring {
            ring.begin_loop();
        }
        let mut lastwriter_regs = vec![false; self.program.n_regs as usize];
        for l in &plan.liveouts {
            if l.resolve == LiveOutResolve::LastWriter {
                lastwriter_regs[l.reg.index()] = true;
            }
        }
        self.mode = Mode::Parallel(ParCtx {
            plan: pidx,
            trip,
            r0,
            last_writer: vec![None; self.program.n_regs as usize],
            has_lastwriter: lastwriter_regs.iter().any(|&b| b),
            lastwriter_regs,
            seg_ids: plan.segments.iter().map(|s| s.id).collect(),
        });
        self.loop_invocations += 1;
    }

    /// Loop barrier: flush the ring, resolve live-outs, resume serial
    /// execution at the loop's exit block.
    fn exit_parallel(&mut self) {
        self.settle_sleeps();
        self.wake_bits = u64::MAX;
        let Mode::Parallel(ctx) = std::mem::replace(&mut self.mode, Mode::Serial) else {
            unreachable!("exit_parallel outside parallel mode");
        };
        let plan = &self.plans[ctx.plan];

        // Distributed fence: drain and flush the ring cache.
        if let Some(ring) = &mut self.ring {
            let cost = ring.flush();
            self.now += cost;
            for cid in 0..self.cfg.cores {
                self.attr.charge_n(cid, Bucket::Communication, cost);
            }
        }

        // Resolve live-outs into the orchestrator's register file.
        let mut regs = ctx.r0.clone();
        let trip = ctx.trip as i64;
        for ind in &plan.inductions {
            let init = ctx.r0[ind.init_copy.index()].as_int();
            regs[ind.reg.index()] = Value::Int(init.wrapping_add(ind.step.wrapping_mul(trip)));
        }
        for p2 in &plan.poly2 {
            let r0v = ctx.r0[p2.init_copy.index()].as_int();
            let s0 = plan
                .inductions
                .iter()
                .find(|i| i.reg == p2.step_reg)
                .map(|i| ctx.r0[i.init_copy.index()].as_int())
                .unwrap_or(0);
            let k = trip;
            let val = r0v
                .wrapping_add(s0.wrapping_mul(k))
                .wrapping_add(p2.step_step.wrapping_mul(k.wrapping_mul(k - 1) / 2));
            regs[p2.reg.index()] = Value::Int(val);
        }
        for red in &plan.reductions {
            let mut acc = self.cores[0].thread.regs[red.reg.index()];
            for core in self.cores.iter().skip(1) {
                acc = red.op.eval(acc, core.thread.regs[red.reg.index()]);
            }
            regs[red.reg.index()] = acc;
        }
        // Reduction combining costs a serialized pass over the cores.
        let combine_cost = (plan.reductions.len() * self.cfg.cores) as u64;
        if combine_cost > 0 {
            self.now += combine_cost;
            self.attr.charge_n(0, Bucket::AdditionalInsts, combine_cost);
            for cid in 1..self.cfg.cores {
                self.attr.charge_n(cid, Bucket::SerialIdle, combine_cost);
            }
        }
        for (reg, entry) in ctx.last_writer.iter().enumerate() {
            if let Some((_iter, core)) = entry {
                regs[reg] = self.cores[*core].thread.regs[reg];
            }
        }

        self.asleep_until.iter_mut().for_each(|t| *t = 0);
        self.stall_guard.iter_mut().for_each(|g| *g = None);
        let core0 = &mut self.cores[0];
        core0.thread.regs = regs;
        core0.thread.block = plan.exit_resume;
        core0.thread.ip = 0;
        core0.thread.finished = false;
        core0.run = RunState::SerialActive;
        for t in core0.reg_ready.iter_mut() {
            *t = self.now;
        }
        for core in self.cores.iter_mut().skip(1) {
            core.run = RunState::SerialIdle;
        }
    }

    /// Wait-grant check for `core` at `iter` on segment `seg`. On
    /// failure also reports the earliest cycle the check's outcome can
    /// change on its own (`u64::MAX` when only another core's signal or
    /// a ring arrival can change it — both covered by other wake
    /// sources).
    fn check_wait(
        &mut self,
        core: usize,
        seg: SegmentId,
        iter: u64,
    ) -> Result<(), (WaitBlock, u64)> {
        let n = self.cfg.cores;
        // Sources confirmed on an earlier cycle stay confirmed: signal
        // counts only grow and observation deadlines never move. Resume
        // the scan where it last stopped (optimized path only; the naive
        // loop re-checks everything, like the original per-cycle loop).
        let memo_valid = self.cfg.fast_forward
            && self.wait_memo[core].seg == seg
            && self.wait_memo[core].iter == iter;
        let mut confirmed = if memo_valid {
            self.wait_memo[core].confirmed as usize
        } else {
            0
        };
        // Fast re-check of the memoized first-unsatisfied source: one
        // counter compare instead of rebuilding the source iterator.
        // Only the decoupled path takes it — the coherence path's
        // outcome also depends on `now`, which moves every cycle.
        if memo_valid && self.cfg.decouple.synch {
            let m = self.wait_memo[core];
            if m.src != u32::MAX {
                let src = m.src as usize;
                let ring = self.ring.as_ref().expect("decoupled sync needs a ring");
                if ring.signal_count(core, seg, src) < m.need {
                    let dependence = self.sync.count(seg, src) < m.need;
                    self.armed_guard = Some(StallGuard::Wait {
                        seg,
                        src: m.src,
                        need: m.need,
                        ring_count: ring.signal_count(core, seg, src),
                        dependence,
                    });
                    let block = if dependence {
                        WaitBlock::Dependence
                    } else {
                        WaitBlock::Communication
                    };
                    return Err((block, u64::MAX));
                }
                // Satisfied since last time: fold it into the confirmed
                // prefix and rescan from there.
                confirmed += 1;
                self.wait_memo[core].confirmed = confirmed as u32;
                self.wait_memo[core].src = u32::MAX;
            }
        }
        let mut blocked_at: Option<(usize, u64)> = None;
        let result = (|| {
            for src in required_sources_iter(self.cfg.sync, core, n).skip(confirmed) {
                let k = required_count(src, iter, n);
                if k == 0 {
                    confirmed += 1;
                    continue;
                }
                if self.cfg.decouple.synch {
                    let ring = self.ring.as_ref().expect("decoupled sync needs a ring");
                    if ring.signal_count(core, seg, src) < k {
                        blocked_at = Some((src, k));
                        let block = if self.sync.count(seg, src) < k {
                            WaitBlock::Dependence
                        } else {
                            WaitBlock::Communication
                        };
                        return Err((block, u64::MAX));
                    }
                } else {
                    match self.sync.kth_time(seg, src, k) {
                        None => {
                            blocked_at = Some((src, k));
                            return Err((WaitBlock::Dependence, u64::MAX));
                        }
                        Some(t) => {
                            let observe_at = t + self.cfg.c2c_latency as u64 + SPIN_OVERHEAD;
                            if self.now < observe_at {
                                return Err((WaitBlock::Communication, observe_at));
                            }
                        }
                    }
                }
                confirmed += 1;
            }
            Ok(())
        })();
        if self.cfg.fast_forward {
            let (src, need) = blocked_at.map_or((u32::MAX, 0), |(s, k)| (s as u32, k));
            self.wait_memo[core] = WaitMemo {
                seg,
                iter,
                confirmed: confirmed as u32,
                src,
                need,
            };
            // Arm the cause-specific guard for event-driven blocks: the
            // stall holds until `src` delivers (decoupled grant) or
            // executes (Dependence classification) its `need`-th signal.
            if let (Some((src, need)), Err((block, _))) = (blocked_at, &result) {
                let ring_count = if self.cfg.decouple.synch {
                    self.ring
                        .as_ref()
                        .map_or(u64::MAX, |r| r.signal_count(core, seg, src))
                } else {
                    u64::MAX
                };
                self.armed_guard = Some(StallGuard::Wait {
                    seg,
                    src: src as u32,
                    need,
                    ring_count,
                    dependence: *block == WaitBlock::Dependence,
                });
            }
        }
        result
    }

    /// Route a load and return `(completion cycle, stall class)`, or
    /// `None` when the ring applied backpressure.
    #[allow(clippy::too_many_arguments)]
    fn route_load(
        &mut self,
        cid: usize,
        addr: u64,
        shared: Option<helix_ir::SharedTag>,
        dst: Reg,
        issue_at: u64,
    ) -> Option<(u64, Bucket)> {
        let decoupled = match shared.map(|t| t.class) {
            Some(helix_ir::TrafficClass::RegisterCarried) => self.cfg.decouple.register,
            Some(helix_ir::TrafficClass::MemoryCarried) => self.cfg.decouple.memory,
            None => false,
        };
        if decoupled {
            let ring = self.ring.as_mut().expect("decoupling requires ring");
            match ring.load(cid, addr) {
                LoadIssue::Hit { ready_at } => {
                    Some((ready_at.max(issue_at), Bucket::Communication))
                }
                LoadIssue::Pending { ticket } => {
                    self.cores[cid].pending_ring.push((ticket, dst));
                    Some((u64::MAX, Bucket::Communication))
                }
            }
        } else {
            let done = self.memsys.access(cid, addr, false, issue_at);
            let class = if shared.is_some() {
                Bucket::Communication
            } else {
                Bucket::Memory
            };
            Some((done, class))
        }
    }

    /// Route a store; returns `false` on ring backpressure.
    fn route_store(
        &mut self,
        cid: usize,
        addr: u64,
        shared: Option<helix_ir::SharedTag>,
        issue_at: u64,
    ) -> bool {
        let decoupled = match shared.map(|t| t.class) {
            Some(helix_ir::TrafficClass::RegisterCarried) => self.cfg.decouple.register,
            Some(helix_ir::TrafficClass::MemoryCarried) => self.cfg.decouple.memory,
            None => false,
        };
        if decoupled {
            let ring = self.ring.as_mut().expect("decoupling requires ring");
            ring.store(cid, addr)
        } else {
            // Fire-and-forget through the store buffer; coherence state
            // updates immediately, the core does not wait.
            let _ = self.memsys.access(cid, addr, true, issue_at);
            true
        }
    }

    /// Handle end-of-iteration bookkeeping; returns whether the core
    /// continues with another iteration this invocation.
    fn end_iteration(&mut self, cid: usize) {
        let Mode::Parallel(ctx) = &mut self.mode else {
            unreachable!("iteration end outside parallel mode");
        };
        let (iter, started_at) = match self.cores[cid].run {
            RunState::Iter { iter, started_at } => (iter, started_at),
            _ => unreachable!("iteration end on non-iterating core"),
        };
        self.iterations += 1;
        if self.iteration_lengths.len() < MAX_ITER_SAMPLES {
            self.iteration_lengths
                .push((self.now - started_at).min(u32::MAX as u64) as u32);
        }
        // Every segment must have been signalled on every path.
        for seg in &ctx.seg_ids {
            if !self.cores[cid].signaled.contains(seg) {
                self.protocol_errors.push(format!(
                    "core {cid} finished iteration {iter} without signalling {seg}"
                ));
            }
        }
        let next = iter + self.cfg.cores as u64;
        let core = &mut self.cores[cid];
        core.reset_iteration();
        if next < ctx.trip {
            core.run = RunState::LapHold { iter: next };
        } else {
            core.run = RunState::FinishedLoop;
            self.done_cores += 1;
        }
        self.min_iter_dirty = true;
    }

    /// Try to start iteration `iter` on `cid` (subject to the lap bound).
    fn try_start_iteration(&mut self, cid: usize, iter: u64) -> bool {
        // One-lap-ahead bound: keeps at most two signals per segment in
        // flight (paper §4's last code property).
        let bound = self.min_iter.saturating_add(2 * self.cfg.cores as u64);
        if iter > bound {
            return false;
        }
        let Mode::Parallel(ctx) = &self.mode else {
            return false;
        };
        let plan = &self.plans[ctx.plan];
        let core = &mut self.cores[cid];
        core.thread.regs[plan.iter_reg.index()] = Value::Int(iter as i64);
        core.reg_ready[plan.iter_reg.index()] = self.now;
        core.thread.block = plan.iteration_entry;
        core.thread.ip = 0;
        core.run = RunState::Iter {
            iter,
            started_at: self.now,
        };
        true
    }

    /// The catch-all snapshot of every event-driven stall input for
    /// `cid`.
    fn epochs_guard(&self, cid: usize) -> StallGuard {
        let (ring_sig, inject, loads) = match &self.ring {
            Some(r) => (r.signal_epoch(cid), r.inject_epoch(cid), r.load_epoch(cid)),
            None => (0, 0, 0),
        };
        StallGuard::Epochs {
            ring_sig,
            inject,
            loads,
        }
    }

    /// Whether `cid`'s armed guard still holds, i.e. none of the
    /// stall's inputs moved since it was recorded.
    fn guard_intact(&self, cid: usize, guard: StallGuard) -> bool {
        match guard {
            StallGuard::Epochs { .. } => guard == self.epochs_guard(cid),
            StallGuard::Wait {
                seg,
                src,
                need,
                ring_count,
                dependence,
            } => {
                let grant_stable = ring_count == u64::MAX
                    || self
                        .ring
                        .as_ref()
                        .is_some_and(|r| r.signal_count(cid, seg, src as usize) == ring_count);
                grant_stable && (!dependence || self.sync.count(seg, src as usize) < need)
            }
            StallGuard::Lap { min_iter } => min_iter == self.min_iter,
            StallGuard::Forever => true,
        }
    }

    /// Deregister `cid` from the targeted wake routing (dependence and
    /// lap masks) as it leaves its sleep.
    fn clear_wake_routing(&mut self, cid: usize) {
        let bit = 1u64 << (cid as u64 & 63);
        let src = self.dep_src[cid];
        if src != u32::MAX {
            self.dep_mask[src as usize] &= !bit;
            self.dep_src[cid] = u32::MAX;
        }
        self.lap_sleepers &= !bit;
    }

    /// Register `cid`'s freshly armed sleep with the targeted wake
    /// routing, so only the events its guard actually reads set its
    /// wake bit.
    fn register_wake_routing(&mut self, cid: usize) {
        let bit = 1u64 << (cid as u64 & 63);
        match self.stall_guard[cid] {
            Some(StallGuard::Wait {
                src,
                dependence: true,
                ..
            }) => {
                self.dep_mask[src as usize] |= bit;
                self.dep_src[cid] = src;
            }
            Some(StallGuard::Lap { .. }) => {
                self.lap_sleepers |= bit;
            }
            _ => {}
        }
    }

    /// Charge every bulk-sleeping core for its accumulated stall window
    /// `[sleep_from, now)` and mark it awake. Called at mode
    /// transitions and at run end — the points where sleeps end for
    /// reasons other than their own wake conditions.
    fn settle_sleeps(&mut self) {
        for cid in 0..self.cfg.cores {
            let sf = self.sleep_from[cid];
            if sf != u64::MAX {
                let elapsed = self.now - sf;
                if elapsed > 0 {
                    self.attr.charge_n(cid, self.sleep_bucket[cid], elapsed);
                }
                self.sleep_from[cid] = u64::MAX;
                self.clear_wake_routing(cid);
            }
        }
        self.sleeping_count = 0;
        self.next_deadline = u64::MAX;
    }

    /// Charge one cycle of a pure-idle run state. These states change
    /// only at mode transitions (which settle and clear every sleep),
    /// so on the optimized path the core sleeps indefinitely and skips
    /// the per-cycle re-evaluation entirely.
    fn idle_cycle(&mut self, cid: usize, bucket: Bucket) -> CoreCycle {
        self.attr.charge(cid, bucket);
        self.armed_guard = Some(StallGuard::Forever);
        CoreCycle::Stalled {
            bucket,
            wake: u64::MAX,
        }
    }

    /// One cycle of core `cid`. Reports whether the core made progress
    /// or is provably stalled (and until when), for the fast-forward.
    fn tick_core(&mut self, cid: usize) -> Result<CoreCycle, SimError> {
        // Resolve completed ring loads (allocation-free: retire in
        // place, in ticket order, exactly as the two-pass version did).
        let mut resolved_any = false;
        if !self.cores[cid].pending_ring.is_empty() {
            if let Some(ring) = self.ring.as_mut() {
                let core = &mut self.cores[cid];
                let reg_ready = &mut core.reg_ready;
                core.pending_ring
                    .retain(|&(ticket, reg)| match ring.take_ready(ticket) {
                        Some(ready) => {
                            reg_ready[reg.index()] = ready;
                            resolved_any = true;
                            false
                        }
                        None => true,
                    });
            }
        }
        // Conditional sleep: a guarded event-driven stall repeats
        // verbatim while none of its inputs moved (a completed ring
        // load, the remaining wake source, is `resolved_any` above).
        if resolved_any {
            self.stall_guard[cid] = None;
        } else if let Some(guard) = self.stall_guard[cid] {
            if self.guard_intact(cid, guard) {
                let bucket = self.sleep_bucket[cid];
                self.attr.charge(cid, bucket);
                return Ok(CoreCycle::Stalled {
                    bucket,
                    wake: u64::MAX,
                });
            }
            self.stall_guard[cid] = None; // stale: re-evaluate below
        }

        let mut lap_started = false;
        match self.cores[cid].run {
            RunState::SerialIdle | RunState::Done => {
                return Ok(self.idle_cycle(cid, Bucket::SerialIdle));
            }
            RunState::NoWork => {
                return Ok(self.idle_cycle(cid, Bucket::LowTripCount));
            }
            RunState::FinishedLoop => {
                return Ok(self.idle_cycle(cid, Bucket::IterationImbalance));
            }
            RunState::LapHold { iter } => {
                if !self.try_start_iteration(cid, iter) {
                    self.attr.charge(cid, Bucket::Communication);
                    // The lap bound only moves when another core
                    // finishes an iteration.
                    self.armed_guard = Some(StallGuard::Lap {
                        min_iter: self.min_iter,
                    });
                    return Ok(CoreCycle::Stalled {
                        bucket: Bucket::Communication,
                        wake: u64::MAX,
                    });
                }
                lap_started = true;
                // Started: fall through into execution this cycle.
            }
            RunState::SerialActive | RunState::Iter { .. } => {}
        }
        if self.cores[cid].thread.finished {
            self.cores[cid].run = RunState::Done;
            self.attr.charge(cid, Bucket::SerialIdle);
            return Ok(CoreCycle::Progress); // state changed this cycle
        }

        let cycle = if let Some(dec) = self.decoded.clone() {
            match self.cfg.core {
                CoreModel::InOrder { width } => self.tick_inorder_dec(cid, width, &dec)?,
                CoreModel::OutOfOrder { width, rob } => self.tick_ooo_dec(cid, width, rob, &dec)?,
            }
        } else {
            match self.cfg.core {
                CoreModel::InOrder { width } => self.tick_inorder(cid, width)?,
                CoreModel::OutOfOrder { width, rob } => self.tick_ooo(cid, width, rob)?,
            }
        };
        if resolved_any || lap_started {
            return Ok(CoreCycle::Progress);
        }
        Ok(cycle)
    }

    /// In-order, stall-on-use issue of up to `width` instructions.
    fn tick_inorder(&mut self, cid: usize, width: u32) -> Result<CoreCycle, SimError> {
        let now = self.now;
        let mut issued = 0u32;
        let mut any_original = false;
        let mut any_added = false;
        let mut stall: Option<Bucket> = None;
        let mut wake = u64::MAX;

        while issued < width {
            if now < self.cores[cid].fetch_stall_until {
                if issued == 0 {
                    stall = Some(Bucket::Computation); // branch redirect bubble
                    wake = self.cores[cid].fetch_stall_until;
                }
                break;
            }
            // Terminator next?
            if let Some(term) = self.cores[cid].thread.peek_terminator(self.program) {
                if let Terminator::Branch { cond, .. } = term {
                    if let Some(r) = cond.reg() {
                        if let Some((r, class)) = self.cores[cid].blocking_reg(&[r], now) {
                            if issued == 0 {
                                stall = Some(class);
                                wake = self.cores[cid].reg_ready[r.index()];
                            }
                            break;
                        }
                    }
                }
                let stop = self.issue_terminator(cid, term)?;
                issued += 1;
                any_original = true;
                if stop {
                    break;
                }
                continue;
            }
            let Some(inst) = self.cores[cid].thread.peek(self.program) else {
                break; // finished
            };

            match inst {
                Inst::Wait { seg } => {
                    if !self.cores[cid].granted.contains(seg) {
                        let iter = match self.cores[cid].run {
                            RunState::Iter { iter, .. } => iter,
                            _ => 0,
                        };
                        let in_parallel = matches!(self.mode, Mode::Parallel(_));
                        if in_parallel {
                            match self.check_wait(cid, *seg, iter) {
                                Ok(()) => {
                                    self.cores[cid].granted.insert(*seg);
                                }
                                Err((block, observe_at)) => {
                                    if issued == 0 {
                                        stall = Some(match block {
                                            WaitBlock::Dependence => Bucket::DependenceWaiting,
                                            WaitBlock::Communication => Bucket::Communication,
                                        });
                                        wake = observe_at;
                                    }
                                    break;
                                }
                            }
                        } else {
                            self.cores[cid].granted.insert(*seg);
                        }
                    }
                    self.step_functional(cid)?;
                    issued += 1;
                    // wait/signal instructions are charged to their own
                    // bucket unless real work issued too.
                }
                Inst::Signal { seg } => {
                    let seg = *seg;
                    if !self.cores[cid].signaled.contains(&seg)
                        && matches!(self.mode, Mode::Parallel(_))
                    {
                        if self.cfg.decouple.synch {
                            let ring = self.ring.as_mut().expect("ring");
                            if !ring.signal(cid, seg) {
                                if issued == 0 {
                                    stall = Some(Bucket::Communication);
                                    wake = u64::MAX; // drains at a ring event
                                }
                                break;
                            }
                        }
                        self.sync.record_signal(seg, cid, now);
                        // Wake exactly the sleepers dependence-blocked
                        // on this core's signals.
                        self.wake_bits |= self.dep_mask[cid];
                        self.cores[cid].signaled.insert(seg);
                    }
                    self.step_functional(cid)?;
                    issued += 1;
                }
                Inst::Load {
                    addr, shared, dst, ..
                } => {
                    if let Some((r, class)) = self.cores[cid].blocking_use(inst, now) {
                        if issued == 0 {
                            stall = Some(class);
                            wake = self.cores[cid].reg_ready[r.index()];
                        }
                        break;
                    }
                    let a = self.cores[cid].thread.eval_addr(addr, &self.env.mem);
                    let Some((done, class)) = self.route_load(cid, a, *shared, *dst, now) else {
                        if issued == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // ring backpressure
                        }
                        break;
                    };
                    self.step_functional(cid)?;
                    let core = &mut self.cores[cid];
                    core.reg_ready[dst.index()] = done; // u64::MAX while pending
                    core.reg_class[dst.index()] = class;
                    issued += 1;
                    if inst.is_added() {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
                Inst::Store { addr, shared, .. } => {
                    if let Some((r, class)) = self.cores[cid].blocking_use(inst, now) {
                        if issued == 0 {
                            stall = Some(class);
                            wake = self.cores[cid].reg_ready[r.index()];
                        }
                        break;
                    }
                    let a = self.cores[cid].thread.eval_addr(addr, &self.env.mem);
                    if !self.route_store(cid, a, *shared, now) {
                        if issued == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // ring backpressure
                        }
                        break;
                    }
                    self.step_functional(cid)?;
                    issued += 1;
                    if inst.is_added() {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
                _ => {
                    if let Some((r, class)) = self.cores[cid].blocking_use(inst, now) {
                        if issued == 0 {
                            stall = Some(class);
                            wake = self.cores[cid].reg_ready[r.index()];
                        }
                        break;
                    }
                    let lat = inst_latency(inst) as u64;
                    let dst = inst.def();
                    self.step_functional(cid)?;
                    if let Some(d) = dst {
                        let core = &mut self.cores[cid];
                        core.reg_ready[d.index()] = now + lat;
                        core.reg_class[d.index()] = Bucket::Computation;
                    }
                    issued += 1;
                    if self.in_prologue(cid) || inst.is_added() {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
            }
        }

        // Attribute this cycle.
        let bucket = if issued > 0 {
            if any_original {
                Bucket::Computation
            } else if any_added {
                Bucket::AdditionalInsts
            } else {
                Bucket::WaitSignal
            }
        } else {
            stall.unwrap_or(Bucket::Computation)
        };
        self.attr.charge(cid, bucket);
        if issued > 0 {
            return Ok(CoreCycle::Progress);
        }
        // A `None` stall with zero issue is unexpected; report the next
        // cycle as the wake time so the fast-forward stays conservative.
        if stall.is_none() {
            wake = now + 1;
        }
        Ok(CoreCycle::Stalled { bucket, wake })
    }

    /// In-order issue over the pre-decoded micro-op tables: the decoded
    /// engine's mirror of [`Machine::tick_inorder`], cycle-exact but with
    /// no per-step enum walking, operand matching, or allocation.
    fn tick_inorder_dec(
        &mut self,
        cid: usize,
        width: u32,
        dec: &DecodedProgram,
    ) -> Result<CoreCycle, SimError> {
        let now = self.now;
        let mut issued = 0u32;
        let mut any_original = false;
        let mut any_added = false;
        let mut stall: Option<Bucket> = None;
        let mut wake = u64::MAX;

        while issued < width {
            if now < self.cores[cid].fetch_stall_until {
                if issued == 0 {
                    stall = Some(Bucket::Computation); // branch redirect bubble
                    wake = self.cores[cid].fetch_stall_until;
                }
                break;
            }
            let th = &self.cores[cid].thread;
            if th.finished {
                break;
            }
            let meta = dec.block(th.block);
            if th.ip >= meta.len as usize {
                // Terminator next.
                let term = meta.term;
                if term.kind == DTermKind::Branch && term.cond.reg != NO_REG {
                    let r = Reg(term.cond.reg);
                    if let Some((r, class)) = self.cores[cid].blocking_reg(&[r], now) {
                        if issued == 0 {
                            stall = Some(class);
                            wake = self.cores[cid].reg_ready[r.index()];
                        }
                        break;
                    }
                }
                let stop = self.issue_terminator_dec(cid, dec, term)?;
                issued += 1;
                any_original = true;
                if stop {
                    break;
                }
                continue;
            }
            let pc = meta.start as usize + th.ip;
            let u = &dec.uops[pc];

            match u.kind {
                UOpKind::Wait { seg } => {
                    if !self.cores[cid].granted.contains(&seg) {
                        let iter = match self.cores[cid].run {
                            RunState::Iter { iter, .. } => iter,
                            _ => 0,
                        };
                        let in_parallel = matches!(self.mode, Mode::Parallel(_));
                        if in_parallel {
                            match self.check_wait(cid, seg, iter) {
                                Ok(()) => {
                                    self.cores[cid].granted.insert(seg);
                                }
                                Err((block, observe_at)) => {
                                    if issued == 0 {
                                        stall = Some(match block {
                                            WaitBlock::Dependence => Bucket::DependenceWaiting,
                                            WaitBlock::Communication => Bucket::Communication,
                                        });
                                        wake = observe_at;
                                    }
                                    break;
                                }
                            }
                        } else {
                            self.cores[cid].granted.insert(seg);
                        }
                    }
                    self.step_functional_dec(cid, dec)?;
                    issued += 1;
                    // wait/signal instructions are charged to their own
                    // bucket unless real work issued too.
                }
                UOpKind::Signal { seg } => {
                    if !self.cores[cid].signaled.contains(&seg)
                        && matches!(self.mode, Mode::Parallel(_))
                    {
                        if self.cfg.decouple.synch {
                            let ring = self.ring.as_mut().expect("ring");
                            if !ring.signal(cid, seg) {
                                if issued == 0 {
                                    stall = Some(Bucket::Communication);
                                    wake = u64::MAX; // drains at a ring event
                                }
                                break;
                            }
                        }
                        self.sync.record_signal(seg, cid, now);
                        // Wake exactly the sleepers dependence-blocked
                        // on this core's signals.
                        self.wake_bits |= self.dep_mask[cid];
                        self.cores[cid].signaled.insert(seg);
                    }
                    self.step_functional_dec(cid, dec)?;
                    issued += 1;
                }
                UOpKind::Load { dst, .. } => {
                    if let Some((r, class)) = self.cores[cid].blocking_slot(dec.uses(u), now) {
                        if issued == 0 {
                            stall = Some(class);
                            wake = self.cores[cid].reg_ready[r.index()];
                        }
                        break;
                    }
                    let a = u.eval_addr(&self.cores[cid].thread.regs);
                    let Some((done, class)) = self.route_load(cid, a, u.shared, Reg(dst), now)
                    else {
                        if issued == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // ring backpressure
                        }
                        break;
                    };
                    let is_added = u.is_added;
                    self.step_functional_dec(cid, dec)?;
                    let core = &mut self.cores[cid];
                    core.reg_ready[dst as usize] = done; // u64::MAX while pending
                    core.reg_class[dst as usize] = class;
                    issued += 1;
                    if is_added {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
                UOpKind::Store { .. } => {
                    if let Some((r, class)) = self.cores[cid].blocking_slot(dec.uses(u), now) {
                        if issued == 0 {
                            stall = Some(class);
                            wake = self.cores[cid].reg_ready[r.index()];
                        }
                        break;
                    }
                    let a = u.eval_addr(&self.cores[cid].thread.regs);
                    if !self.route_store(cid, a, u.shared, now) {
                        if issued == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // ring backpressure
                        }
                        break;
                    }
                    let is_added = u.is_added;
                    self.step_functional_dec(cid, dec)?;
                    issued += 1;
                    if is_added {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
                _ => {
                    if let Some((r, class)) = self.cores[cid].blocking_slot(dec.uses(u), now) {
                        if issued == 0 {
                            stall = Some(class);
                            wake = self.cores[cid].reg_ready[r.index()];
                        }
                        break;
                    }
                    let lat = self.uop_lat[pc] as u64;
                    let dst = u.dst;
                    let is_added = u.is_added;
                    self.step_functional_dec(cid, dec)?;
                    if dst != NO_REG {
                        let core = &mut self.cores[cid];
                        core.reg_ready[dst as usize] = now + lat;
                        core.reg_class[dst as usize] = Bucket::Computation;
                    }
                    issued += 1;
                    if self.in_prologue(cid) || is_added {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
            }
        }

        // Attribute this cycle (same policy as the tree engine).
        let bucket = if issued > 0 {
            if any_original {
                Bucket::Computation
            } else if any_added {
                Bucket::AdditionalInsts
            } else {
                Bucket::WaitSignal
            }
        } else {
            stall.unwrap_or(Bucket::Computation)
        };
        self.attr.charge(cid, bucket);
        if issued > 0 {
            return Ok(CoreCycle::Progress);
        }
        if stall.is_none() {
            wake = now + 1;
        }
        Ok(CoreCycle::Stalled { bucket, wake })
    }

    /// Decoded mirror of [`Machine::issue_terminator`].
    fn issue_terminator_dec(
        &mut self,
        cid: usize,
        dec: &DecodedProgram,
        term: DTerm,
    ) -> Result<bool, SimError> {
        let now = self.now;
        let from = self.cores[cid].thread.block;
        let event = self.step_functional_dec(cid, dec)?;
        let StepEvent::Flow { to, .. } = event else {
            // Return: the thread is finished.
            return Ok(true);
        };
        // Branch prediction.
        if term.kind == DTermKind::Branch {
            let taken = to == term.then_;
            let correct = self.cores[cid].predictor.update(from, taken);
            if !correct {
                self.cores[cid].fetch_stall_until = now + 1 + self.cfg.mispredict_penalty as u64;
            }
        }
        Ok(self.post_flow(cid, from, to))
    }

    /// Decoded mirror of [`Machine::step_functional`]: one functional
    /// micro-op step, feeding the race detector and live-out tracking.
    fn step_functional_dec(
        &mut self,
        cid: usize,
        dec: &DecodedProgram,
    ) -> Result<StepEvent, SimError> {
        self.sink.mem.clear();
        let event = dec.step(&mut self.cores[cid].thread, &mut self.env, &mut self.sink)?;
        if matches!(self.mode, Mode::Parallel(_)) {
            // Only defs matter for LastWriter; re-peek is impossible
            // (already stepped), so check the previous micro-op.
            let prev_def = if matches!(&self.mode, Mode::Parallel(ctx) if ctx.has_lastwriter) {
                let th = &self.cores[cid].thread;
                (th.ip > 0)
                    .then(|| dec.uop_at(th.block, th.ip - 1))
                    .flatten()
                    .map(|u| u.dst)
                    .filter(|&d| d != NO_REG)
            } else {
                None
            };
            self.post_step_parallel(cid, prev_def);
        }
        Ok(event)
    }

    /// Shared post-step bookkeeping for a functional step taken inside
    /// a parallel loop (both engines): feed the race detector with the
    /// step's memory accesses and track LastWriter live-out defs.
    fn post_step_parallel(&mut self, cid: usize, prev_def: Option<u32>) {
        let mem = std::mem::take(&mut self.sink.mem);
        for access in &mem {
            let in_window = access
                .shared
                .map(|t| {
                    self.cores[cid].granted.contains(&t.seg)
                        && !self.cores[cid].signaled.contains(&t.seg)
                })
                .unwrap_or(false);
            self.race.on_access(
                cid,
                access.addr,
                access.len,
                access.is_store,
                access.shared,
                in_window,
            );
        }
        // Hand the buffer back for reuse.
        self.sink.mem = mem;
        // LastWriter live-out tracking.
        if let Mode::Parallel(ctx) = &mut self.mode {
            if let Some(d) = prev_def {
                if ctx.lastwriter_regs[d as usize] {
                    if let RunState::Iter { iter, .. } = self.cores[cid].run {
                        let e = &mut ctx.last_writer[d as usize];
                        match e {
                            Some((last, core)) if iter >= *last => {
                                *last = iter;
                                *core = cid;
                            }
                            None => *e = Some((iter, cid)),
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    /// Whether `cid`'s program counter is inside a re-computation
    /// prologue block (everything there is parallelization overhead).
    fn in_prologue(&self, cid: usize) -> bool {
        if let Mode::Parallel(ctx) = &self.mode {
            self.cores[cid].thread.block == self.plans[ctx.plan].iteration_entry
        } else {
            false
        }
    }

    /// Execute the next instruction functionally, feeding the race
    /// detector.
    fn step_functional(&mut self, cid: usize) -> Result<StepEvent, SimError> {
        self.sink.mem.clear();
        let event = self.cores[cid]
            .thread
            .step(self.program, &mut self.env, &mut self.sink)?;
        if matches!(self.mode, Mode::Parallel(_)) {
            // Only defs matter for LastWriter; re-peek is impossible
            // (already stepped), so check the previous instruction.
            let prev_def = if matches!(&self.mode, Mode::Parallel(ctx) if ctx.has_lastwriter) {
                let th = &self.cores[cid].thread;
                (th.ip > 0)
                    .then(|| self.program.graph.block(th.block).insts.get(th.ip - 1))
                    .flatten()
                    .and_then(|i| i.def())
                    .map(|r| r.0)
            } else {
                None
            };
            self.post_step_parallel(cid, prev_def);
        }
        Ok(event)
    }

    /// Issue a terminator; returns `true` when the issue loop must stop
    /// (iteration boundary or parallel-loop entry).
    fn issue_terminator(&mut self, cid: usize, term: &Terminator) -> Result<bool, SimError> {
        let now = self.now;
        let from = self.cores[cid].thread.block;
        let event = self.step_functional(cid)?;
        let StepEvent::Flow { to, .. } = event else {
            // Return: the thread is finished.
            return Ok(true);
        };
        // Branch prediction.
        if let Terminator::Branch { then_, .. } = term {
            let taken = to == *then_;
            let correct = self.cores[cid].predictor.update(from, taken);
            if !correct {
                self.cores[cid].fetch_stall_until = now + 1 + self.cfg.mispredict_penalty as u64;
            }
        }
        Ok(self.post_flow(cid, from, to))
    }

    /// Out-of-order dispatch of up to `width` instructions into a
    /// `rob_cap`-entry window.
    fn tick_ooo(&mut self, cid: usize, width: u32, rob_cap: u32) -> Result<CoreCycle, SimError> {
        let now = self.now;
        // Retire completed entries in order.
        let mut retired = 0;
        while retired < width {
            match self.cores[cid].rob.front() {
                Some(e) if e.complete <= now => {
                    self.cores[cid].rob.pop_front();
                    retired += 1;
                }
                _ => break,
            }
        }

        let mut dispatched = 0u32;
        let mut any_original = false;
        let mut any_added = false;
        let mut stall: Option<Bucket> = None;
        let mut wake = u64::MAX;
        // Whatever else happens, the ROB head's completion re-checks the
        // pipe (retirement frees slots and fences).
        let rob_head_wake = self.cores[cid]
            .rob
            .front()
            .map(|e| e.complete.max(now + 1))
            .unwrap_or(u64::MAX);

        while dispatched < width {
            if now < self.cores[cid].fetch_stall_until {
                if dispatched == 0 {
                    stall = Some(Bucket::Computation);
                    wake = self.cores[cid].fetch_stall_until;
                }
                break;
            }
            if self.cores[cid].rob.len() >= rob_cap as usize {
                if dispatched == 0 {
                    stall = Some(
                        self.cores[cid]
                            .rob
                            .front()
                            .map(|e| e.class)
                            .unwrap_or(Bucket::Computation),
                    );
                    wake = rob_head_wake;
                }
                break;
            }
            if let Some(term) = self.cores[cid].thread.peek_terminator(self.program) {
                // Branch resolution happens when the condition is ready.
                let resolve_at = match term {
                    Terminator::Branch { cond, .. } => cond
                        .reg()
                        .map(|r| self.cores[cid].reg_ready[r.index()])
                        .unwrap_or(now)
                        .max(now),
                    _ => now,
                };
                if resolve_at == u64::MAX {
                    if dispatched == 0 {
                        stall = Some(Bucket::Communication);
                        wake = u64::MAX; // awaits an outstanding ring load
                    }
                    break;
                }
                let from = self.cores[cid].thread.block;
                let event = self.step_functional(cid)?;
                dispatched += 1;
                any_original = true;
                self.cores[cid].rob.push_back(RobEntry {
                    complete: resolve_at.saturating_add(1),
                    class: Bucket::Computation,
                });
                let StepEvent::Flow { to, .. } = event else {
                    break;
                };
                if let Terminator::Branch { then_, .. } = &term {
                    let taken = to == *then_;
                    let correct = self.cores[cid].predictor.update(from, taken);
                    if !correct {
                        self.cores[cid].fetch_stall_until =
                            resolve_at + 1 + self.cfg.mispredict_penalty as u64;
                    }
                }
                // Mode transitions (same rules as in-order).
                let stop = self.post_flow(cid, from, to);
                if stop {
                    break;
                }
                continue;
            }
            let Some(inst) = self.cores[cid].thread.peek(self.program) else {
                break;
            };
            match inst {
                Inst::Wait { .. } | Inst::Signal { .. } => {
                    // Fence: dispatch only with an empty window.
                    if !self.cores[cid].rob.is_empty() {
                        if dispatched == 0 {
                            stall = Some(
                                self.cores[cid]
                                    .rob
                                    .front()
                                    .map(|e| e.class)
                                    .unwrap_or(Bucket::Computation),
                            );
                            wake = rob_head_wake;
                        }
                        break;
                    }
                    // Reuse the in-order logic for grant/record by
                    // falling back to a single-instruction in-order step.
                    let before = self.cores[cid].thread.dyn_insts;
                    self.inorder_sync_step(cid, inst, &mut stall, &mut wake, dispatched)?;
                    if self.cores[cid].thread.dyn_insts == before {
                        break; // blocked
                    }
                    dispatched += 1;
                }
                Inst::Load {
                    addr, shared, dst, ..
                } => {
                    let ops_ready = self.cores[cid].operands_ready_for(inst).max(now);
                    if ops_ready == u64::MAX {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // awaits an outstanding ring load
                        }
                        break; // operand awaits an outstanding ring load
                    }
                    let a = self.cores[cid].thread.eval_addr(addr, &self.env.mem);
                    let Some((done, class)) = self.route_load(cid, a, *shared, *dst, ops_ready)
                    else {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // ring backpressure
                        }
                        break;
                    };
                    self.step_functional(cid)?;
                    let core = &mut self.cores[cid];
                    core.reg_ready[dst.index()] = done; // u64::MAX while pending
                    core.reg_class[dst.index()] = class;
                    let complete = if done == u64::MAX { now + 1 } else { done };
                    core.rob.push_back(RobEntry { complete, class });
                    dispatched += 1;
                    if inst.is_added() {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
                Inst::Store { addr, shared, .. } => {
                    let ops_ready = self.cores[cid].operands_ready_for(inst).max(now);
                    if ops_ready == u64::MAX {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // awaits an outstanding ring load
                        }
                        break;
                    }
                    let a = self.cores[cid].thread.eval_addr(addr, &self.env.mem);
                    if !self.route_store(cid, a, *shared, ops_ready) {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // ring backpressure
                        }
                        break;
                    }
                    self.step_functional(cid)?;
                    self.cores[cid].rob.push_back(RobEntry {
                        complete: ops_ready.saturating_add(1),
                        class: Bucket::Memory,
                    });
                    dispatched += 1;
                    if inst.is_added() {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
                _ => {
                    let ops_ready = self.cores[cid].operands_ready_for(inst).max(now);
                    if ops_ready == u64::MAX {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // awaits an outstanding ring load
                        }
                        break;
                    }
                    let lat = inst_latency(inst) as u64;
                    let dst = inst.def();
                    self.step_functional(cid)?;
                    let complete = ops_ready.saturating_add(lat);
                    let core = &mut self.cores[cid];
                    if let Some(d) = dst {
                        core.reg_ready[d.index()] = complete;
                        core.reg_class[d.index()] = Bucket::Computation;
                    }
                    core.rob.push_back(RobEntry {
                        complete,
                        class: Bucket::Computation,
                    });
                    dispatched += 1;
                    if self.in_prologue(cid) || inst.is_added() {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
            }
        }

        let bucket = if dispatched > 0 {
            if any_original {
                Bucket::Computation
            } else if any_added {
                Bucket::AdditionalInsts
            } else {
                Bucket::WaitSignal
            }
        } else {
            stall.unwrap_or(Bucket::Computation)
        };
        self.attr.charge(cid, bucket);
        if dispatched > 0 || retired > 0 {
            return Ok(CoreCycle::Progress);
        }
        if stall.is_none() {
            wake = now + 1; // unexpected shape: stay conservative
        }
        // Retirement of the ROB head is always a wake source (it can
        // unblock fences and the window) even when the recorded stall is
        // something else.
        Ok(CoreCycle::Stalled {
            bucket,
            wake: wake.min(rob_head_wake),
        })
    }

    /// Shared wait/signal semantics used by the OoO model.
    fn inorder_sync_step(
        &mut self,
        cid: usize,
        inst: &Inst,
        stall: &mut Option<Bucket>,
        wake: &mut u64,
        dispatched: u32,
    ) -> Result<(), SimError> {
        match inst {
            Inst::Wait { seg } => {
                if !self.cores[cid].granted.contains(seg) {
                    let iter = match self.cores[cid].run {
                        RunState::Iter { iter, .. } => iter,
                        _ => 0,
                    };
                    if matches!(self.mode, Mode::Parallel(_)) {
                        match self.check_wait(cid, *seg, iter) {
                            Ok(()) => {
                                self.cores[cid].granted.insert(*seg);
                            }
                            Err((block, observe_at)) => {
                                if dispatched == 0 {
                                    *stall = Some(match block {
                                        WaitBlock::Dependence => Bucket::DependenceWaiting,
                                        WaitBlock::Communication => Bucket::Communication,
                                    });
                                    *wake = observe_at;
                                }
                                return Ok(());
                            }
                        }
                    } else {
                        self.cores[cid].granted.insert(*seg);
                    }
                }
                self.step_functional(cid)?;
                self.cores[cid].rob.push_back(RobEntry {
                    complete: self.now + 1,
                    class: Bucket::WaitSignal,
                });
            }
            Inst::Signal { seg } => {
                let seg = *seg;
                if !self.cores[cid].signaled.contains(&seg)
                    && matches!(self.mode, Mode::Parallel(_))
                {
                    if self.cfg.decouple.synch {
                        let ring = self.ring.as_mut().expect("ring");
                        if !ring.signal(cid, seg) {
                            if dispatched == 0 {
                                *stall = Some(Bucket::Communication);
                                *wake = u64::MAX; // drains at a ring event
                            }
                            return Ok(());
                        }
                    }
                    self.sync.record_signal(seg, cid, self.now);
                    // Wake exactly the sleepers dependence-blocked on
                    // this core's signals.
                    self.wake_bits |= self.dep_mask[cid];
                    self.cores[cid].signaled.insert(seg);
                }
                self.step_functional(cid)?;
                self.cores[cid].rob.push_back(RobEntry {
                    complete: self.now + 1,
                    class: Bucket::WaitSignal,
                });
            }
            _ => unreachable!("sync step on non-sync instruction"),
        }
        Ok(())
    }

    /// Decoded mirror of [`Machine::tick_ooo`]: out-of-order dispatch
    /// over the pre-decoded micro-op tables.
    fn tick_ooo_dec(
        &mut self,
        cid: usize,
        width: u32,
        rob_cap: u32,
        dec: &DecodedProgram,
    ) -> Result<CoreCycle, SimError> {
        let now = self.now;
        // Retire completed entries in order.
        let mut retired = 0;
        while retired < width {
            match self.cores[cid].rob.front() {
                Some(e) if e.complete <= now => {
                    self.cores[cid].rob.pop_front();
                    retired += 1;
                }
                _ => break,
            }
        }

        let mut dispatched = 0u32;
        let mut any_original = false;
        let mut any_added = false;
        let mut stall: Option<Bucket> = None;
        let mut wake = u64::MAX;
        let rob_head_wake = self.cores[cid]
            .rob
            .front()
            .map(|e| e.complete.max(now + 1))
            .unwrap_or(u64::MAX);

        while dispatched < width {
            if now < self.cores[cid].fetch_stall_until {
                if dispatched == 0 {
                    stall = Some(Bucket::Computation);
                    wake = self.cores[cid].fetch_stall_until;
                }
                break;
            }
            if self.cores[cid].rob.len() >= rob_cap as usize {
                if dispatched == 0 {
                    stall = Some(
                        self.cores[cid]
                            .rob
                            .front()
                            .map(|e| e.class)
                            .unwrap_or(Bucket::Computation),
                    );
                    wake = rob_head_wake;
                }
                break;
            }
            let th = &self.cores[cid].thread;
            if th.finished {
                break;
            }
            let meta = dec.block(th.block);
            if th.ip >= meta.len as usize {
                let term = meta.term;
                // Branch resolution happens when the condition is ready.
                let resolve_at = if term.kind == DTermKind::Branch && term.cond.reg != NO_REG {
                    self.cores[cid].reg_ready[term.cond.reg as usize].max(now)
                } else {
                    now
                };
                if resolve_at == u64::MAX {
                    if dispatched == 0 {
                        stall = Some(Bucket::Communication);
                        wake = u64::MAX; // awaits an outstanding ring load
                    }
                    break;
                }
                let from = self.cores[cid].thread.block;
                let event = self.step_functional_dec(cid, dec)?;
                dispatched += 1;
                any_original = true;
                self.cores[cid].rob.push_back(RobEntry {
                    complete: resolve_at.saturating_add(1),
                    class: Bucket::Computation,
                });
                let StepEvent::Flow { to, .. } = event else {
                    break;
                };
                if term.kind == DTermKind::Branch {
                    let taken = to == term.then_;
                    let correct = self.cores[cid].predictor.update(from, taken);
                    if !correct {
                        self.cores[cid].fetch_stall_until =
                            resolve_at + 1 + self.cfg.mispredict_penalty as u64;
                    }
                }
                let stop = self.post_flow(cid, from, to);
                if stop {
                    break;
                }
                continue;
            }
            let pc = meta.start as usize + th.ip;
            let u = &dec.uops[pc];
            match u.kind {
                UOpKind::Wait { .. } | UOpKind::Signal { .. } => {
                    // Fence: dispatch only with an empty window.
                    if !self.cores[cid].rob.is_empty() {
                        if dispatched == 0 {
                            stall = Some(
                                self.cores[cid]
                                    .rob
                                    .front()
                                    .map(|e| e.class)
                                    .unwrap_or(Bucket::Computation),
                            );
                            wake = rob_head_wake;
                        }
                        break;
                    }
                    let before = self.cores[cid].thread.dyn_insts;
                    self.sync_step_dec(cid, dec, u.kind, &mut stall, &mut wake, dispatched)?;
                    if self.cores[cid].thread.dyn_insts == before {
                        break; // blocked
                    }
                    dispatched += 1;
                }
                UOpKind::Load { dst, .. } => {
                    let ops_ready = self.cores[cid].slots_ready(dec.uses(u)).max(now);
                    if ops_ready == u64::MAX {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // awaits an outstanding ring load
                        }
                        break;
                    }
                    let a = u.eval_addr(&self.cores[cid].thread.regs);
                    let Some((done, class)) =
                        self.route_load(cid, a, u.shared, Reg(dst), ops_ready)
                    else {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // ring backpressure
                        }
                        break;
                    };
                    let is_added = u.is_added;
                    self.step_functional_dec(cid, dec)?;
                    let core = &mut self.cores[cid];
                    core.reg_ready[dst as usize] = done; // u64::MAX while pending
                    core.reg_class[dst as usize] = class;
                    let complete = if done == u64::MAX { now + 1 } else { done };
                    core.rob.push_back(RobEntry { complete, class });
                    dispatched += 1;
                    if is_added {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
                UOpKind::Store { .. } => {
                    let ops_ready = self.cores[cid].slots_ready(dec.uses(u)).max(now);
                    if ops_ready == u64::MAX {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // awaits an outstanding ring load
                        }
                        break;
                    }
                    let a = u.eval_addr(&self.cores[cid].thread.regs);
                    if !self.route_store(cid, a, u.shared, ops_ready) {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // ring backpressure
                        }
                        break;
                    }
                    let is_added = u.is_added;
                    self.step_functional_dec(cid, dec)?;
                    self.cores[cid].rob.push_back(RobEntry {
                        complete: ops_ready.saturating_add(1),
                        class: Bucket::Memory,
                    });
                    dispatched += 1;
                    if is_added {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
                _ => {
                    let ops_ready = self.cores[cid].slots_ready(dec.uses(u)).max(now);
                    if ops_ready == u64::MAX {
                        if dispatched == 0 {
                            stall = Some(Bucket::Communication);
                            wake = u64::MAX; // awaits an outstanding ring load
                        }
                        break;
                    }
                    let lat = self.uop_lat[pc] as u64;
                    let dst = u.dst;
                    let is_added = u.is_added;
                    self.step_functional_dec(cid, dec)?;
                    let complete = ops_ready.saturating_add(lat);
                    let core = &mut self.cores[cid];
                    if dst != NO_REG {
                        core.reg_ready[dst as usize] = complete;
                        core.reg_class[dst as usize] = Bucket::Computation;
                    }
                    core.rob.push_back(RobEntry {
                        complete,
                        class: Bucket::Computation,
                    });
                    dispatched += 1;
                    if self.in_prologue(cid) || is_added {
                        any_added = true;
                    } else {
                        any_original = true;
                    }
                }
            }
        }

        let bucket = if dispatched > 0 {
            if any_original {
                Bucket::Computation
            } else if any_added {
                Bucket::AdditionalInsts
            } else {
                Bucket::WaitSignal
            }
        } else {
            stall.unwrap_or(Bucket::Computation)
        };
        self.attr.charge(cid, bucket);
        if dispatched > 0 || retired > 0 {
            return Ok(CoreCycle::Progress);
        }
        if stall.is_none() {
            wake = now + 1; // unexpected shape: stay conservative
        }
        Ok(CoreCycle::Stalled {
            bucket,
            wake: wake.min(rob_head_wake),
        })
    }

    /// Decoded mirror of [`Machine::inorder_sync_step`].
    fn sync_step_dec(
        &mut self,
        cid: usize,
        dec: &DecodedProgram,
        kind: UOpKind,
        stall: &mut Option<Bucket>,
        wake: &mut u64,
        dispatched: u32,
    ) -> Result<(), SimError> {
        match kind {
            UOpKind::Wait { seg } => {
                if !self.cores[cid].granted.contains(&seg) {
                    let iter = match self.cores[cid].run {
                        RunState::Iter { iter, .. } => iter,
                        _ => 0,
                    };
                    if matches!(self.mode, Mode::Parallel(_)) {
                        match self.check_wait(cid, seg, iter) {
                            Ok(()) => {
                                self.cores[cid].granted.insert(seg);
                            }
                            Err((block, observe_at)) => {
                                if dispatched == 0 {
                                    *stall = Some(match block {
                                        WaitBlock::Dependence => Bucket::DependenceWaiting,
                                        WaitBlock::Communication => Bucket::Communication,
                                    });
                                    *wake = observe_at;
                                }
                                return Ok(());
                            }
                        }
                    } else {
                        self.cores[cid].granted.insert(seg);
                    }
                }
                self.step_functional_dec(cid, dec)?;
                self.cores[cid].rob.push_back(RobEntry {
                    complete: self.now + 1,
                    class: Bucket::WaitSignal,
                });
            }
            UOpKind::Signal { seg } => {
                if !self.cores[cid].signaled.contains(&seg)
                    && matches!(self.mode, Mode::Parallel(_))
                {
                    if self.cfg.decouple.synch {
                        let ring = self.ring.as_mut().expect("ring");
                        if !ring.signal(cid, seg) {
                            if dispatched == 0 {
                                *stall = Some(Bucket::Communication);
                                *wake = u64::MAX; // drains at a ring event
                            }
                            return Ok(());
                        }
                    }
                    self.sync.record_signal(seg, cid, self.now);
                    // Wake exactly the sleepers dependence-blocked on
                    // this core's signals.
                    self.wake_bits |= self.dep_mask[cid];
                    self.cores[cid].signaled.insert(seg);
                }
                self.step_functional_dec(cid, dec)?;
                self.cores[cid].rob.push_back(RobEntry {
                    complete: self.now + 1,
                    class: Bucket::WaitSignal,
                });
            }
            _ => unreachable!("sync step on non-sync micro-op"),
        }
        Ok(())
    }

    /// Mode-transition handling after a control transfer (shared by both
    /// core models). Returns whether the issue loop must stop.
    fn post_flow(&mut self, cid: usize, from: BlockId, to: BlockId) -> bool {
        match &self.mode {
            Mode::Serial => {
                if cid == 0 {
                    if let Some(pidx) = self.plan_by_header.get(to.index()).copied().flatten() {
                        let plan = &self.plans[pidx];
                        let regs = &self.cores[0].thread.regs;
                        let counter = regs[plan.counter.index()].as_int();
                        let bound = match plan.bound {
                            helix_ir::Operand::Reg(r) => regs[r.index()].as_int(),
                            helix_ir::Operand::Imm(v) => v.as_int(),
                        };
                        if plan.trip_count(counter, bound) >= 1 {
                            self.pending_enter = Some(pidx);
                            return true;
                        }
                    }
                }
                false
            }
            Mode::Parallel(ctx) => {
                let plan = &self.plans[ctx.plan];
                if to == plan.header && from != plan.iteration_entry {
                    self.end_iteration(cid);
                    return true;
                }
                if !self.plan_blocks[ctx.plan][to.index()] && to != plan.header {
                    self.protocol_errors
                        .push(format!("core {cid} escaped the loop to {to}"));
                    self.cores[cid].run = RunState::FinishedLoop;
                    self.done_cores += 1;
                    self.min_iter_dirty = true;
                    return true;
                }
                false
            }
        }
    }
}

/// Simulate a compiled program on `cfg`.
///
/// # Errors
///
/// Propagates functional faults; fails when `fuel` cycles elapse without
/// completion.
pub fn simulate(
    compiled: &helix_hcc::CompiledProgram,
    cfg: &MachineConfig,
    fuel: u64,
) -> Result<RunReport, SimError> {
    Machine::new(&compiled.program, &compiled.plans, cfg.clone()).run(fuel)
}

/// Simulate `program` sequentially (no parallel plans) on `cfg`.
///
/// # Errors
///
/// Propagates functional faults; fails when `fuel` cycles elapse without
/// completion.
pub fn simulate_sequential(
    program: &Program,
    cfg: &MachineConfig,
    fuel: u64,
) -> Result<RunReport, SimError> {
    Machine::new(program, &[], cfg.clone()).run(fuel)
}
