//! Region-based flat memory model.
//!
//! Every [`Program`] region is mapped at a fixed base
//! address; runtime allocations (`Alloc` intrinsic) extend the region
//! table. Addresses are plain `u64` byte addresses, so the simulator's
//! caches and the ring cache see a conventional flat address space.

use crate::program::Program;
use crate::types::{RegionId, Ty, Value};
use std::fmt;

/// Byte distance between consecutive region bases.
///
/// Large enough that no region can overflow into its neighbour (regions
/// are capped at this size on allocation).
pub const REGION_STRIDE: u64 = 1 << 28;

/// Base address of the first region (kept away from 0 so null pointers
/// fault).
pub const FIRST_BASE: u64 = REGION_STRIDE;

/// Memory access failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Address does not fall inside any mapped region.
    Unmapped {
        /// Faulting address.
        addr: u64,
    },
    /// Address is inside a region but the access overruns its size.
    OutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Region the address resolved to.
        region: RegionId,
    },
    /// Allocation request was larger than [`REGION_STRIDE`].
    AllocTooLarge {
        /// Requested size.
        size: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemError::OutOfBounds { addr, region } => {
                write!(f, "address {addr:#x} overruns region {region}")
            }
            MemError::AllocTooLarge { size } => write!(f, "allocation of {size} bytes too large"),
        }
    }
}

impl std::error::Error for MemError {}

/// One mapped region's storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMem {
    /// Base address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// Declared element type.
    pub elem: Ty,
    /// Region name (static declarations keep their program name; heap
    /// allocations are named `heap#<n>`).
    pub name: String,
    data: Vec<u8>,
}

/// The machine's memory: an ordered collection of regions.
///
/// Regions are laid out at a fixed [`REGION_STRIDE`], so resolving an
/// address to its region is pure arithmetic — no search structure. This
/// sits on the simulator's per-instruction hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    regions: Vec<RegionMem>,
    next_base: u64,
    n_static: usize,
}

impl Memory {
    /// Create a memory image with all of `program`'s static regions mapped
    /// and zero-initialized.
    pub fn for_program(program: &Program) -> Memory {
        let mut mem = Memory {
            regions: Vec::new(),
            next_base: FIRST_BASE,
            n_static: 0,
        };
        for decl in &program.regions {
            mem.map_region(decl.name.clone(), decl.size, decl.elem);
        }
        mem.n_static = mem.regions.len();
        mem
    }

    fn map_region(&mut self, name: String, size: u64, elem: Ty) -> RegionId {
        assert!(size <= REGION_STRIDE, "region {name} too large");
        let id = RegionId(self.regions.len() as u32);
        let base = self.next_base;
        self.next_base += REGION_STRIDE;
        self.regions.push(RegionMem {
            base,
            size,
            elem,
            name,
            data: vec![0; size as usize],
        });
        debug_assert_eq!(base, (id.index() as u64 + 1) * REGION_STRIDE);
        id
    }

    /// Allocate a fresh heap region of `size` bytes; returns its base
    /// address. Backs the `Alloc` intrinsic.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AllocTooLarge`] if `size > REGION_STRIDE`.
    pub fn alloc(&mut self, size: u64) -> Result<u64, MemError> {
        if size > REGION_STRIDE {
            return Err(MemError::AllocTooLarge { size });
        }
        let n = self.regions.len();
        let id = self.map_region(format!("heap#{n}"), size, Ty::I64);
        Ok(self.regions[id.index()].base)
    }

    /// Base address of a region.
    ///
    /// # Panics
    ///
    /// Panics if the region id is unmapped.
    pub fn base_of(&self, region: RegionId) -> u64 {
        self.regions[region.index()].base
    }

    /// The region containing `addr`, if any. O(1): the region index is
    /// the address's stride slot.
    pub fn region_containing(&self, addr: u64) -> Option<RegionId> {
        let slot = (addr / REGION_STRIDE).checked_sub(1)?;
        let r = self.regions.get(slot as usize)?;
        if addr < r.base + r.size {
            Some(RegionId(slot as u32))
        } else {
            None
        }
    }

    /// Number of mapped regions (static + heap).
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of regions declared statically by the program.
    pub fn static_region_count(&self) -> usize {
        self.n_static
    }

    /// Access a region's metadata.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn region(&self, id: RegionId) -> &RegionMem {
        &self.regions[id.index()]
    }

    fn slot(&mut self, addr: u64, len: u64) -> Result<&mut [u8], MemError> {
        let id = self
            .region_containing(addr)
            .ok_or(MemError::Unmapped { addr })?;
        let r = &mut self.regions[id.index()];
        let off = (addr - r.base) as usize;
        if addr + len > r.base + r.size {
            return Err(MemError::OutOfBounds { addr, region: id });
        }
        Ok(&mut r.data[off..off + len as usize])
    }

    fn slot_ref(&self, addr: u64, len: u64) -> Result<&[u8], MemError> {
        let id = self
            .region_containing(addr)
            .ok_or(MemError::Unmapped { addr })?;
        let r = &self.regions[id.index()];
        let off = (addr - r.base) as usize;
        if addr + len > r.base + r.size {
            return Err(MemError::OutOfBounds { addr, region: id });
        }
        Ok(&r.data[off..off + len as usize])
    }

    /// Load a typed value from `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the address is unmapped or the access overruns its region.
    pub fn load(&self, addr: u64, ty: Ty) -> Result<Value, MemError> {
        let bytes = self.slot_ref(addr, ty.size())?;
        let mut raw = [0u8; 8];
        raw[..bytes.len()].copy_from_slice(bytes);
        Ok(Value::from_bits(u64::from_le_bytes(raw), ty))
    }

    /// Store a typed value to `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the address is unmapped or the access overruns its region.
    pub fn store(&mut self, addr: u64, ty: Ty, value: Value) -> Result<(), MemError> {
        let raw = value.to_bits().to_le_bytes();
        let n = ty.size() as usize;
        let bytes = self.slot(addr, ty.size())?;
        bytes.copy_from_slice(&raw[..n]);
        Ok(())
    }

    /// Copy `len` bytes from `src` to `dst` (backs the `Memcpy`
    /// intrinsic; regions may not overlap partially).
    ///
    /// # Errors
    ///
    /// Fails if either range is invalid.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) -> Result<(), MemError> {
        let data = self.slot_ref(src, len)?.to_vec();
        self.slot(dst, len)?.copy_from_slice(&data);
        Ok(())
    }

    /// Fill `len` bytes at `dst` with `byte` (backs `Memset`).
    ///
    /// # Errors
    ///
    /// Fails if the range is invalid.
    pub fn fill(&mut self, dst: u64, byte: u8, len: u64) -> Result<(), MemError> {
        self.slot(dst, len)?.fill(byte);
        Ok(())
    }

    /// Order-independent digest of all region contents, for equivalence
    /// testing between sequential and parallel executions.
    pub fn digest(&self) -> u64 {
        // FNV-1a over (base, size, data) of each region in address order.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for r in &self.regions {
            for b in r.base.to_le_bytes() {
                mix(b);
            }
            for b in &r.data {
                mix(*b);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn mem_with_one_region() -> (Memory, RegionId) {
        let mut b = ProgramBuilder::new("m");
        let r = b.region("buf", 256, Ty::I64);
        let p = b.finish();
        (Memory::for_program(&p), r)
    }

    #[test]
    fn load_store_round_trip_all_types() {
        let (mut m, r) = mem_with_one_region();
        let base = m.base_of(r);
        for (ty, v) in [
            (Ty::I8, Value::Int(-5)),
            (Ty::I16, Value::Int(-300)),
            (Ty::I32, Value::Int(1 << 20)),
            (Ty::I64, Value::Int(i64::MIN / 3)),
            (Ty::F64, Value::Float(2.5)),
        ] {
            m.store(base + 16, ty, v).unwrap();
            assert_eq!(m.load(base + 16, ty).unwrap(), v);
        }
    }

    #[test]
    fn unmapped_address_fails() {
        let (m, _) = mem_with_one_region();
        assert_eq!(m.load(3, Ty::I64), Err(MemError::Unmapped { addr: 3 }));
    }

    #[test]
    fn out_of_bounds_fails() {
        let (mut m, r) = mem_with_one_region();
        let base = m.base_of(r);
        assert!(matches!(
            m.store(base + 250, Ty::I64, Value::Int(1)),
            Err(MemError::OutOfBounds { .. })
        ));
        // Exactly at the edge is fine.
        assert!(m.store(base + 248, Ty::I64, Value::Int(1)).is_ok());
    }

    #[test]
    fn alloc_creates_disjoint_regions() {
        let (mut m, r) = mem_with_one_region();
        let a = m.alloc(64).unwrap();
        let b = m.alloc(64).unwrap();
        assert_ne!(a, b);
        assert_ne!(m.region_containing(a), m.region_containing(b));
        assert_ne!(m.region_containing(a).unwrap(), r);
        assert_eq!(m.region_count(), 3);
        assert_eq!(m.static_region_count(), 1);
    }

    #[test]
    fn alloc_too_large_fails() {
        let (mut m, _) = mem_with_one_region();
        assert!(matches!(
            m.alloc(REGION_STRIDE + 1),
            Err(MemError::AllocTooLarge { .. })
        ));
    }

    #[test]
    fn copy_and_fill() {
        let (mut m, r) = mem_with_one_region();
        let base = m.base_of(r);
        m.store(base, Ty::I64, Value::Int(0x1122_3344)).unwrap();
        m.copy(base + 64, base, 8).unwrap();
        assert_eq!(m.load(base + 64, Ty::I64).unwrap(), Value::Int(0x1122_3344));
        m.fill(base + 64, 0xFF, 8).unwrap();
        assert_eq!(m.load(base + 64, Ty::I64).unwrap(), Value::Int(-1));
    }

    #[test]
    fn digest_changes_with_contents() {
        let (mut m, r) = mem_with_one_region();
        let d0 = m.digest();
        m.store(m.base_of(r), Ty::I8, Value::Int(1)).unwrap();
        assert_ne!(m.digest(), d0);
    }

    #[test]
    fn region_containing_boundary() {
        let (m, r) = mem_with_one_region();
        let base = m.base_of(r);
        assert_eq!(m.region_containing(base), Some(r));
        assert_eq!(m.region_containing(base + 255), Some(r));
        assert_eq!(m.region_containing(base + 256), None);
    }
}
