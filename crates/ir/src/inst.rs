//! Instruction set of the loop-level IR.
//!
//! The instruction set is deliberately small: enough to express the
//! integer/float arithmetic, irregular control flow, and pointer-based
//! memory traffic of the paper's workloads, plus the `wait`/`signal`
//! pair that HELIX-RC adds to the ISA (paper §3.1).

use crate::types::{BlockId, Reg, RegionId, SegmentId, Ty, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An instruction operand: either a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Read the named register.
    Reg(Reg),
    /// A constant value.
    Imm(Value),
}

impl Operand {
    /// Convenience constructor for an integer immediate.
    pub fn imm(v: i64) -> Operand {
        Operand::Imm(Value::Int(v))
    }

    /// Convenience constructor for a float immediate.
    pub fn fimm(v: f64) -> Operand {
        Operand::Imm(Value::Float(v))
    }

    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(Value::Int(v))
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::Imm(Value::Float(v))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Base of an address expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddrBase {
    /// A statically declared region; the address starts at its base.
    Region(RegionId),
    /// A register holding a pointer (e.g. loaded from memory).
    Reg(Reg),
}

impl fmt::Display for AddrBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrBase::Region(r) => write!(f, "{r}"),
            AddrBase::Reg(r) => write!(f, "{r}"),
        }
    }
}

/// An `x86`-style address expression: `base + index * scale + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddrExpr {
    /// Base of the address.
    pub base: AddrBase,
    /// Optional scaled index register.
    pub index: Option<(Reg, i64)>,
    /// Constant byte offset.
    pub offset: i64,
}

impl AddrExpr {
    /// Address `region + offset`.
    pub fn region(region: RegionId, offset: i64) -> AddrExpr {
        AddrExpr {
            base: AddrBase::Region(region),
            index: None,
            offset,
        }
    }

    /// Address `region + index * scale + offset`.
    pub fn region_indexed(region: RegionId, index: Reg, scale: i64, offset: i64) -> AddrExpr {
        AddrExpr {
            base: AddrBase::Region(region),
            index: Some((index, scale)),
            offset,
        }
    }

    /// Address `*ptr + offset` for a pointer held in a register.
    pub fn ptr(ptr: Reg, offset: i64) -> AddrExpr {
        AddrExpr {
            base: AddrBase::Reg(ptr),
            index: None,
            offset,
        }
    }

    /// Address `*ptr + index * scale + offset`.
    pub fn ptr_indexed(ptr: Reg, index: Reg, scale: i64, offset: i64) -> AddrExpr {
        AddrExpr {
            base: AddrBase::Reg(ptr),
            index: Some((index, scale)),
            offset,
        }
    }

    /// Registers read when evaluating this address.
    pub fn reg_uses(&self) -> impl Iterator<Item = Reg> + '_ {
        let base = match self.base {
            AddrBase::Reg(r) => Some(r),
            AddrBase::Region(_) => None,
        };
        base.into_iter().chain(self.index.map(|(r, _)| r))
    }
}

impl fmt::Display for AddrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.base)?;
        if let Some((r, s)) = self.index {
            write!(f, " + {r}*{s}")?;
        }
        if self.offset != 0 {
            write!(f, " + {}", self.offset)?;
        }
        write!(f, "]")
    }
}

/// Binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide (division by zero yields zero, like a trap handler
    /// returning a default).
    Div,
    /// Integer remainder (by zero yields zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (masked to 63 bits).
    Shl,
    /// Arithmetic shift right (masked to 63 bits).
    Shr,
    /// Integer equality; yields 0 or 1.
    CmpEq,
    /// Integer inequality.
    CmpNe,
    /// Signed less-than.
    CmpLt,
    /// Signed less-or-equal.
    CmpLe,
    /// Signed greater-than.
    CmpGt,
    /// Signed greater-or-equal.
    CmpGe,
    /// Signed minimum.
    MinI,
    /// Signed maximum.
    MaxI,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
    /// Float less-than; yields integer 0 or 1.
    FCmpLt,
    /// Float greater-than; yields integer 0 or 1.
    FCmpGt,
    /// Float minimum.
    FMin,
    /// Float maximum.
    FMax,
}

impl BinOp {
    /// Whether the operation produces/consumes floats.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd
                | BinOp::FSub
                | BinOp::FMul
                | BinOp::FDiv
                | BinOp::FCmpLt
                | BinOp::FCmpGt
                | BinOp::FMin
                | BinOp::FMax
        )
    }

    /// Evaluate the operation on two values.
    pub fn eval(self, a: Value, b: Value) -> Value {
        use BinOp::*;
        match self {
            Add => Value::Int(a.as_int().wrapping_add(b.as_int())),
            Sub => Value::Int(a.as_int().wrapping_sub(b.as_int())),
            Mul => Value::Int(a.as_int().wrapping_mul(b.as_int())),
            Div => {
                let d = b.as_int();
                Value::Int(if d == 0 {
                    0
                } else {
                    a.as_int().wrapping_div(d)
                })
            }
            Rem => {
                let d = b.as_int();
                Value::Int(if d == 0 {
                    0
                } else {
                    a.as_int().wrapping_rem(d)
                })
            }
            And => Value::Int(a.as_int() & b.as_int()),
            Or => Value::Int(a.as_int() | b.as_int()),
            Xor => Value::Int(a.as_int() ^ b.as_int()),
            Shl => Value::Int(a.as_int().wrapping_shl((b.as_int() & 63) as u32)),
            Shr => Value::Int(a.as_int().wrapping_shr((b.as_int() & 63) as u32)),
            CmpEq => Value::Int((a.as_int() == b.as_int()) as i64),
            CmpNe => Value::Int((a.as_int() != b.as_int()) as i64),
            CmpLt => Value::Int((a.as_int() < b.as_int()) as i64),
            CmpLe => Value::Int((a.as_int() <= b.as_int()) as i64),
            CmpGt => Value::Int((a.as_int() > b.as_int()) as i64),
            CmpGe => Value::Int((a.as_int() >= b.as_int()) as i64),
            MinI => Value::Int(a.as_int().min(b.as_int())),
            MaxI => Value::Int(a.as_int().max(b.as_int())),
            FAdd => Value::Float(a.as_float() + b.as_float()),
            FSub => Value::Float(a.as_float() - b.as_float()),
            FMul => Value::Float(a.as_float() * b.as_float()),
            FDiv => Value::Float(a.as_float() / b.as_float()),
            FCmpLt => Value::Int((a.as_float() < b.as_float()) as i64),
            FCmpGt => Value::Int((a.as_float() > b.as_float()) as i64),
            FMin => Value::Float(a.as_float().min(b.as_float())),
            FMax => Value::Float(a.as_float().max(b.as_float())),
        }
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Integer negate.
    Neg,
    /// Bitwise not.
    Not,
    /// Float negate.
    FNeg,
    /// Float square root.
    FSqrt,
    /// Float absolute value.
    FAbs,
    /// Convert integer to float.
    IntToF,
    /// Convert float to integer (truncating).
    FToInt,
}

impl UnOp {
    /// Evaluate the operation.
    pub fn eval(self, v: Value) -> Value {
        match self {
            UnOp::Neg => Value::Int(v.as_int().wrapping_neg()),
            UnOp::Not => Value::Int(!v.as_int()),
            UnOp::FNeg => Value::Float(-v.as_float()),
            UnOp::FSqrt => Value::Float(v.as_float().max(0.0).sqrt()),
            UnOp::FAbs => Value::Float(v.as_float().abs()),
            UnOp::IntToF => Value::Float(v.as_int() as f64),
            UnOp::FToInt => Value::Int(v.as_float() as i64),
        }
    }

    /// Whether the result is a float.
    pub fn is_float(self) -> bool {
        matches!(self, UnOp::FNeg | UnOp::FSqrt | UnOp::FAbs | UnOp::IntToF)
    }
}

/// Library-call intrinsics with known semantics.
///
/// These model the "standard library call semantics" the paper's extended
/// alias analysis exploits (§2.2 extension iv): the analysis knows exactly
/// which memory each intrinsic may read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intrinsic {
    /// `Alloc(size) -> ptr`: allocate a fresh region; never aliases
    /// existing memory.
    Alloc,
    /// `Rand() -> i64`: deterministic pseudo-random stream. Carries hidden
    /// internal state, i.e. an actual loop-carried dependence.
    Rand,
    /// `Memcpy(dst, src, len)`: copies bytes; reads `[src, src+len)`,
    /// writes `[dst, dst+len)`.
    Memcpy,
    /// `Memset(dst, byte, len)`: writes `[dst, dst+len)`.
    Memset,
    /// `PureHash(x) -> i64`: pure function of its argument; touches no
    /// memory (models `abs`, `strlen`-of-constant, math calls, ...).
    PureHash,
    /// `SinApprox(x) -> f64`: pure float function (models libm calls).
    SinApprox,
    /// `Free(ptr)`: releases an allocation (semantically a no-op here).
    Free,
}

impl Intrinsic {
    /// Whether the intrinsic is pure (no memory effects, no hidden state).
    pub fn is_pure(self) -> bool {
        matches!(self, Intrinsic::PureHash | Intrinsic::SinApprox)
    }

    /// Whether the intrinsic carries hidden internal state that orders
    /// calls (an actual dependence between iterations that call it).
    pub fn has_hidden_state(self) -> bool {
        matches!(self, Intrinsic::Rand | Intrinsic::Alloc)
    }

    /// Latency class in cycles used by the timing models.
    pub fn latency(self) -> u32 {
        match self {
            Intrinsic::Alloc => 30,
            Intrinsic::Rand => 8,
            Intrinsic::Memcpy | Intrinsic::Memset => 20,
            Intrinsic::PureHash => 6,
            Intrinsic::SinApprox => 18,
            Intrinsic::Free => 10,
        }
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Intrinsic::Alloc => "alloc",
            Intrinsic::Rand => "rand",
            Intrinsic::Memcpy => "memcpy",
            Intrinsic::Memset => "memset",
            Intrinsic::PureHash => "pure_hash",
            Intrinsic::SinApprox => "sin_approx",
            Intrinsic::Free => "free",
        };
        f.write_str(s)
    }
}

/// Traffic class of a shared access, set by the compiler.
///
/// Distinguishes the paper's two communication kinds (Fig. 3/Fig. 8):
/// dependences that were register-allocated in sequential code and were
/// demoted to memory by HCC, versus dependences already mediated by memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// A shared scalar that lived in a register in the sequential program.
    RegisterCarried,
    /// A memory location shared between iterations in the original program.
    MemoryCarried,
}

/// Compiler-attached tag marking a memory access as shared.
///
/// Accesses bearing a tag must execute within the named sequential segment
/// and are routed to the ring cache (when decoupling is enabled for their
/// traffic class) instead of the private L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedTag {
    /// The sequential segment that owns this access.
    pub seg: SegmentId,
    /// Which kind of dependence the access mediates.
    pub class: TrafficClass,
}

/// Why an instruction exists, for overhead attribution (paper Fig. 12).
///
/// Instructions in the original sequential program are `Original`;
/// everything the parallelizer adds is labelled so the simulator can
/// attribute its cycles to the right overhead bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum InstOrigin {
    /// Present in the sequential program.
    #[default]
    Original,
    /// Added by parallelization (induction re-computation, shared-variable
    /// addressing, reduction bookkeeping, ...): the paper's "additional
    /// instructions" overhead category.
    Added,
}

/// A single IR instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = value`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Constant value.
        value: Value,
    },
    /// `dst = op src`.
    Un {
        /// Destination register.
        dst: Reg,
        /// Operation.
        op: UnOp,
        /// Operand.
        src: Operand,
    },
    /// `dst = lhs op rhs`.
    Bin {
        /// Destination register.
        dst: Reg,
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = load ty, [addr]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address expression.
        addr: AddrExpr,
        /// Access type (width).
        ty: Ty,
        /// Shared-access tag, set by the compiler for ring-routed accesses.
        shared: Option<SharedTag>,
        /// Provenance for overhead attribution.
        origin: InstOrigin,
    },
    /// `store ty, src -> [addr]`.
    Store {
        /// Value to store.
        src: Operand,
        /// Address expression.
        addr: AddrExpr,
        /// Access type (width).
        ty: Ty,
        /// Shared-access tag, set by the compiler for ring-routed accesses.
        shared: Option<SharedTag>,
        /// Provenance for overhead attribution.
        origin: InstOrigin,
    },
    /// `dst = intrinsic(args...)`.
    Call {
        /// Destination register (if the intrinsic returns a value).
        dst: Option<Reg>,
        /// The intrinsic to invoke.
        intrinsic: Intrinsic,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// HELIX-RC `wait seg`: block until all predecessor iterations have
    /// signalled this segment. Idempotent within an iteration.
    Wait {
        /// Segment to synchronize on.
        seg: SegmentId,
    },
    /// HELIX-RC `signal seg`: mark this iteration's segment as done and
    /// proactively broadcast. Idempotent within an iteration (a duplicate
    /// signal is squashed by the core's segment counters).
    Signal {
        /// Segment to signal.
        seg: SegmentId,
    },
    /// No operation; used to model added bookkeeping work.
    Nop {
        /// Provenance for overhead attribution.
        origin: InstOrigin,
    },
}

impl Inst {
    /// Destination register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. } | Inst::Un { dst, .. } | Inst::Bin { dst, .. } => Some(*dst),
            Inst::Load { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        self.for_each_use(|r| out.push(r));
        out
    }

    /// Visit every register this instruction reads, without allocating
    /// (the simulator's issue loops call this once per instruction).
    pub fn for_each_use<F: FnMut(Reg)>(&self, mut f: F) {
        match self {
            Inst::Const { .. } | Inst::Wait { .. } | Inst::Signal { .. } | Inst::Nop { .. } => {}
            Inst::Un { src, .. } => {
                if let Operand::Reg(r) = src {
                    f(*r);
                }
            }
            Inst::Bin { lhs, rhs, .. } => {
                for o in [lhs, rhs] {
                    if let Operand::Reg(r) = o {
                        f(*r);
                    }
                }
            }
            Inst::Load { addr, .. } => addr.reg_uses().for_each(f),
            Inst::Store { src, addr, .. } => {
                if let Operand::Reg(r) = src {
                    f(*r);
                }
                addr.reg_uses().for_each(f);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    if let Operand::Reg(r) = a {
                        f(*r);
                    }
                }
            }
        }
    }

    /// Whether the instruction accesses memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
            || matches!(
                self,
                Inst::Call {
                    intrinsic: Intrinsic::Memcpy | Intrinsic::Memset,
                    ..
                }
            )
    }

    /// The shared tag of the access, if it is a tagged load/store.
    pub fn shared_tag(&self) -> Option<SharedTag> {
        match self {
            Inst::Load { shared, .. } | Inst::Store { shared, .. } => *shared,
            _ => None,
        }
    }

    /// Whether the instruction was added by the parallelizer.
    pub fn is_added(&self) -> bool {
        match self {
            Inst::Load { origin, .. } | Inst::Store { origin, .. } | Inst::Nop { origin } => {
                *origin == InstOrigin::Added
            }
            _ => false,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Const { dst, value } => write!(f, "{dst} = {value}"),
            Inst::Un { dst, op, src } => write!(f, "{dst} = {op:?} {src}"),
            Inst::Bin { dst, op, lhs, rhs } => write!(f, "{dst} = {op:?} {lhs}, {rhs}"),
            Inst::Load {
                dst,
                addr,
                ty,
                shared,
                ..
            } => {
                write!(f, "{dst} = load.{ty} {addr}")?;
                if let Some(tag) = shared {
                    write!(f, " !shared({})", tag.seg)?;
                }
                Ok(())
            }
            Inst::Store {
                src,
                addr,
                ty,
                shared,
                ..
            } => {
                write!(f, "store.{ty} {src} -> {addr}")?;
                if let Some(tag) = shared {
                    write!(f, " !shared({})", tag.seg)?;
                }
                Ok(())
            }
            Inst::Call {
                dst,
                intrinsic,
                args,
            } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "call {intrinsic}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Wait { seg } => write!(f, "wait {seg}"),
            Inst::Signal { seg } => write!(f, "signal {seg}"),
            Inst::Nop { .. } => write!(f, "nop"),
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on a truthy operand.
    Branch {
        /// Condition operand (non-zero = taken).
        cond: Operand,
        /// Target when the condition is non-zero.
        then_: BlockId,
        /// Target when the condition is zero.
        else_: BlockId,
    },
    /// Leave the graph (end of program, or end of one loop iteration when
    /// executing a loop body in isolation).
    Return,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch { then_, else_, .. } => vec![*then_, *else_],
            Terminator::Return => vec![],
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self) -> Option<Reg> {
        match self {
            Terminator::Branch {
                cond: Operand::Reg(r),
                ..
            } => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "jump {t}"),
            Terminator::Branch { cond, then_, else_ } => {
                write!(f, "br {cond} ? {then_} : {else_}")
            }
            Terminator::Return => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_integer_arithmetic() {
        assert_eq!(BinOp::Add.eval(3.into(), 4.into()), Value::Int(7));
        assert_eq!(BinOp::Sub.eval(3.into(), 4.into()), Value::Int(-1));
        assert_eq!(BinOp::Mul.eval(3.into(), 4.into()), Value::Int(12));
        assert_eq!(BinOp::Div.eval(9.into(), 2.into()), Value::Int(4));
        assert_eq!(BinOp::Rem.eval(9.into(), 4.into()), Value::Int(1));
    }

    #[test]
    fn binop_division_by_zero_is_total() {
        assert_eq!(BinOp::Div.eval(9.into(), 0.into()), Value::Int(0));
        assert_eq!(BinOp::Rem.eval(9.into(), 0.into()), Value::Int(0));
    }

    #[test]
    fn binop_comparisons_yield_bool_ints() {
        assert_eq!(BinOp::CmpLt.eval(1.into(), 2.into()), Value::Int(1));
        assert_eq!(BinOp::CmpGe.eval(1.into(), 2.into()), Value::Int(0));
        assert_eq!(BinOp::CmpEq.eval(5.into(), 5.into()), Value::Int(1));
    }

    #[test]
    fn binop_shift_masks_amount() {
        assert_eq!(BinOp::Shl.eval(1.into(), 64.into()), Value::Int(1));
        assert_eq!(BinOp::Shl.eval(1.into(), 3.into()), Value::Int(8));
    }

    #[test]
    fn binop_float_arithmetic() {
        assert_eq!(
            BinOp::FAdd.eval(Value::Float(1.5), Value::Float(2.0)),
            Value::Float(3.5)
        );
        assert_eq!(
            BinOp::FMax.eval(Value::Float(1.5), Value::Float(2.0)),
            Value::Float(2.0)
        );
        assert!(BinOp::FAdd.is_float());
        assert!(!BinOp::Add.is_float());
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(5.into()), Value::Int(-5));
        assert_eq!(UnOp::FSqrt.eval(Value::Float(9.0)), Value::Float(3.0));
        assert_eq!(UnOp::FSqrt.eval(Value::Float(-1.0)), Value::Float(0.0));
        assert_eq!(UnOp::IntToF.eval(2.into()), Value::Float(2.0));
        assert_eq!(UnOp::FToInt.eval(Value::Float(2.9)), Value::Int(2));
    }

    #[test]
    fn inst_def_use() {
        let inst = Inst::Bin {
            dst: Reg(0),
            op: BinOp::Add,
            lhs: Operand::Reg(Reg(1)),
            rhs: Operand::imm(3),
        };
        assert_eq!(inst.def(), Some(Reg(0)));
        assert_eq!(inst.uses(), vec![Reg(1)]);
    }

    #[test]
    fn load_uses_address_registers() {
        let inst = Inst::Load {
            dst: Reg(0),
            addr: AddrExpr::ptr_indexed(Reg(1), Reg(2), 8, 16),
            ty: Ty::I64,
            shared: None,
            origin: InstOrigin::Original,
        };
        assert_eq!(inst.uses(), vec![Reg(1), Reg(2)]);
        assert!(inst.is_mem());
        assert!(inst.shared_tag().is_none());
    }

    #[test]
    fn store_uses_value_and_address() {
        let inst = Inst::Store {
            src: Operand::Reg(Reg(3)),
            addr: AddrExpr::region_indexed(RegionId(0), Reg(4), 4, 0),
            ty: Ty::I32,
            shared: Some(SharedTag {
                seg: SegmentId(1),
                class: TrafficClass::MemoryCarried,
            }),
            origin: InstOrigin::Original,
        };
        assert_eq!(inst.uses(), vec![Reg(3), Reg(4)]);
        assert_eq!(inst.shared_tag().map(|t| t.seg), Some(SegmentId(1)));
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(Terminator::Return.successors(), vec![]);
        let br = Terminator::Branch {
            cond: Operand::Reg(Reg(0)),
            then_: BlockId(1),
            else_: BlockId(2),
        };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(br.uses(), Some(Reg(0)));
    }

    #[test]
    fn intrinsic_properties() {
        assert!(Intrinsic::PureHash.is_pure());
        assert!(!Intrinsic::Memcpy.is_pure());
        assert!(Intrinsic::Rand.has_hidden_state());
        assert!(Intrinsic::Alloc.has_hidden_state());
        assert!(!Intrinsic::PureHash.has_hidden_state());
        assert!(Intrinsic::Alloc.latency() > 0);
    }

    #[test]
    fn display_forms() {
        let inst = Inst::Load {
            dst: Reg(0),
            addr: AddrExpr::region(RegionId(2), 8),
            ty: Ty::I32,
            shared: None,
            origin: InstOrigin::Original,
        };
        assert_eq!(inst.to_string(), "r0 = load.i32 [@2 + 8]");
        assert_eq!(Inst::Wait { seg: SegmentId(3) }.to_string(), "wait seg3");
    }
}
