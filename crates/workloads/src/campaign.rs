//! Declarative cross-scenario sweep campaigns.
//!
//! A [`CampaignSpec`] is one TOML file that names a *set* of scenario
//! specs (glob patterns over `scenarios/`) plus a grid of machine/
//! compiler axes — core counts, ring settings, decoupling points, the
//! problem scale — and the experiments to run per grid cell. The
//! campaign runner in `helix-rc` lowers every cell onto the existing
//! experiment functions and aggregates the results into a single
//! report, so a paper-style cross-benchmark sweep (Figs. 7–12) is one
//! config file instead of one hand-written harness per figure.
//!
//! ```toml
//! name = "smoke"
//! description = "Fast CI subset"
//! scenarios = ["../scenarios/175.vpr.toml", "../scenarios/9*.toml"]
//! scale = "test"
//! seed = 0
//!
//! [grid]
//! cores = [8]
//! experiments = ["generations", "coupled_vs_ring"]
//! ```
//!
//! Scenario patterns resolve relative to the campaign file's directory,
//! so a committed campaign works from any working directory.

use crate::common::Scale;
use crate::spec::SpecError;
use crate::toml::{self, Table, Value};
use std::path::{Path, PathBuf};

type Result<T> = std::result::Result<T, SpecError>;

/// One experiment family to run per (scenario × cores) grid cell. Each
/// variant lowers onto exactly one `helix_rc::experiment` function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignExperiment {
    /// Sequential baseline + HCCv1/v2 on conventional hardware + HCCv3
    /// on the ring (Figs. 1/7): the headline per-scenario speedups.
    Generations,
    /// HCCv3 code on conventional vs ring-cache hardware with the
    /// communication-fraction split (Fig. 9).
    CoupledVsRing,
    /// The overhead taxonomy of the HELIX-RC run (Fig. 12).
    Overheads,
    /// The five decoupling points of Fig. 8 (nothing / registers /
    /// +synchronization / +memory / everything).
    Lattice,
    /// HELIX-RC speedup at every core count in the grid (Fig. 11a).
    CoreSweep,
    /// Ring sweep over adjacent-node link latencies (Fig. 11b).
    RingLatency,
    /// Ring sweep over signal bandwidths (Fig. 11c).
    RingBandwidth,
    /// Ring sweep over node memory sizes (Fig. 11d).
    RingMemory,
}

impl CampaignExperiment {
    /// Every experiment, in report order.
    pub const ALL: [CampaignExperiment; 8] = [
        CampaignExperiment::Generations,
        CampaignExperiment::CoupledVsRing,
        CampaignExperiment::Overheads,
        CampaignExperiment::Lattice,
        CampaignExperiment::CoreSweep,
        CampaignExperiment::RingLatency,
        CampaignExperiment::RingBandwidth,
        CampaignExperiment::RingMemory,
    ];

    /// Stable spelling used in campaign files and reports.
    pub fn render(self) -> &'static str {
        match self {
            CampaignExperiment::Generations => "generations",
            CampaignExperiment::CoupledVsRing => "coupled_vs_ring",
            CampaignExperiment::Overheads => "overheads",
            CampaignExperiment::Lattice => "lattice",
            CampaignExperiment::CoreSweep => "core_sweep",
            CampaignExperiment::RingLatency => "ring_latency",
            CampaignExperiment::RingBandwidth => "ring_bandwidth",
            CampaignExperiment::RingMemory => "ring_memory",
        }
    }

    fn parse(s: &str) -> Result<CampaignExperiment> {
        CampaignExperiment::ALL
            .into_iter()
            .find(|e| e.render() == s)
            .ok_or_else(|| {
                SpecError::new(format!(
                    "unknown experiment '{s}' (expected one of: {})",
                    CampaignExperiment::ALL.map(|e| e.render()).join(", ")
                ))
            })
    }
}

/// Per-nest campaign override (the optional `[grid.nest_override]`
/// table): sweep one named nest's serial-glue length from the campaign
/// file. Every matching scenario is expanded into one variant per glue
/// value, so a single campaign run measures how the nest's sequential
/// fraction moves the derived speedup-vs-coverage rows — without
/// editing the scenario specs themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestOverride {
    /// Nest name the override applies to. At least one scenario in the
    /// campaign must declare a nest with this name.
    pub nest: String,
    /// Glue values to sweep (each pins the nest's glue count to a
    /// constant; `0..=2^20`, at least one value, no duplicates).
    pub glue: Vec<i64>,
}

/// The machine/compiler grid of a campaign: which core counts to run,
/// and which experiments to lower per (scenario × cores) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignGrid {
    /// Core counts: one cell per count for every per-cell experiment.
    pub cores: Vec<i64>,
    /// Core counts for [`CampaignExperiment::CoreSweep`], which
    /// consumes the whole list as a single sweep cell per scenario.
    /// Empty means "use `cores`".
    pub sweep_cores: Vec<i64>,
    /// Experiments per cell, in file order.
    pub experiments: Vec<CampaignExperiment>,
    /// Optional per-nest glue sweep (see [`NestOverride`]).
    pub nest_override: Option<NestOverride>,
}

impl Default for CampaignGrid {
    fn default() -> Self {
        CampaignGrid {
            cores: vec![16],
            sweep_cores: Vec::new(),
            experiments: vec![CampaignExperiment::Generations],
            nest_override: None,
        }
    }
}

/// Per-cell execution limits and retry policy for the resilient
/// campaign runtime (the optional `[resilience]` table).
///
/// The cycle budget is enforced through the simulator's fuel mechanism,
/// so budget-exceeded terminations are deterministic: the same cell
/// fails at the same simulated cycle on every run, and reports stay
/// byte-identical. The wall-clock budget is a cooperative watchdog — a
/// cell that overruns is flagged (and its result discarded) after it
/// returns rather than preempted — and is therefore timing-dependent;
/// leave it at 0 (disabled, the default) for runs whose reports are
/// compared byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Retries granted per cell after a transient failure (panic or
    /// wall-budget overrun); deterministic errors are never retried.
    pub max_retries: i64,
    /// Per-cell simulated-cycle budget; 0 means the experiment default.
    pub cycle_budget: i64,
    /// Per-cell wall-clock budget in milliseconds; 0 disables the
    /// watchdog.
    pub wall_budget_ms: i64,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_retries: 1,
            cycle_budget: 0,
            wall_budget_ms: 0,
        }
    }
}

/// A complete declarative campaign: scenario set + grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign name (report title).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Glob patterns over scenario spec files, relative to the campaign
    /// file's directory. Only the final path component may contain `*`.
    pub scenarios: Vec<String>,
    /// Problem scale for every run.
    pub scale: Scale,
    /// Seed offset added to every scenario's own seed, so one knob
    /// re-rolls all distribution-baked work tables of the whole sweep.
    pub seed: i64,
    /// The machine/compiler grid.
    pub grid: CampaignGrid,
    /// Per-cell budgets and retry policy.
    pub resilience: ResiliencePolicy,
}

fn scale_render(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Full => "full",
    }
}

fn scale_parse(s: &str) -> Result<Scale> {
    match s {
        "test" => Ok(Scale::Test),
        "full" => Ok(Scale::Full),
        other => Err(SpecError::new(format!(
            "unknown scale '{other}' (expected \"test\" or \"full\")"
        ))),
    }
}

/// Render a TOML value for an error message: literals verbatim,
/// aggregates by shape, so "expected X, got Y" names the offender.
fn describe(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("\"{s}\""),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Bool(b) => b.to_string(),
        Value::Array(a) => format!("an array of {} value(s)", a.len()),
        Value::Table(_) => "a table".to_string(),
    }
}

/// Match one path component against a `*`-glob (no separators; `*`
/// matches any possibly-empty substring).
pub fn glob_match(name: &str, pattern: &str) -> bool {
    fn rec(name: &[u8], pat: &[u8]) -> bool {
        match pat.iter().position(|&c| c == b'*') {
            None => name == pat,
            Some(ix) => {
                let (pre, rest) = (&pat[..ix], &pat[ix + 1..]);
                if name.len() < pre.len() || &name[..pre.len()] != pre {
                    return false;
                }
                let name = &name[pre.len()..];
                (0..=name.len()).any(|k| rec(&name[k..], rest))
            }
        }
    }
    rec(name.as_bytes(), pattern.as_bytes())
}

impl CampaignSpec {
    /// Check internal consistency (names present, grid sane).
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(SpecError::new("campaign name must not be empty"));
        }
        if self.scenarios.is_empty() {
            return Err(SpecError::new(format!(
                "{}: campaign names no scenario patterns",
                self.name
            )));
        }
        if self.grid.cores.is_empty() || self.grid.experiments.is_empty() {
            return Err(SpecError::new(format!(
                "{}: grid needs at least one core count and one experiment",
                self.name
            )));
        }
        for &cores in self.grid.cores.iter().chain(&self.grid.sweep_cores) {
            if !(1..=4096).contains(&cores) {
                return Err(SpecError::new(format!(
                    "{}: grid cores must be in 1..=4096, got {cores}",
                    self.name
                )));
            }
        }
        for (i, e) in self.grid.experiments.iter().enumerate() {
            if self.grid.experiments[..i].contains(e) {
                return Err(SpecError::new(format!(
                    "{}: duplicate experiment '{}'",
                    self.name,
                    e.render()
                )));
            }
        }
        if let Some(ov) = &self.grid.nest_override {
            if ov.nest.is_empty() {
                return Err(SpecError::new(format!(
                    "{}: grid.nest_override.nest must not be empty",
                    self.name
                )));
            }
            if ov.glue.is_empty() {
                return Err(SpecError::new(format!(
                    "{}: grid.nest_override.glue needs at least one value",
                    self.name
                )));
            }
            for (i, &g) in ov.glue.iter().enumerate() {
                if !(0..=(1i64 << 20)).contains(&g) {
                    return Err(SpecError::new(format!(
                        "{}: grid.nest_override.glue must be in 0..=2^20, got {g}",
                        self.name
                    )));
                }
                if ov.glue[..i].contains(&g) {
                    return Err(SpecError::new(format!(
                        "{}: duplicate glue value {g} in grid.nest_override",
                        self.name
                    )));
                }
            }
        }
        let r = &self.resilience;
        if !(0..=8).contains(&r.max_retries) {
            return Err(SpecError::new(format!(
                "{}: resilience.max_retries must be in 0..=8, got {}",
                self.name, r.max_retries
            )));
        }
        if !(0..=(1i64 << 40)).contains(&r.cycle_budget) {
            return Err(SpecError::new(format!(
                "{}: resilience.cycle_budget must be in 0..=2^40 cycles, got {}",
                self.name, r.cycle_budget
            )));
        }
        if !(0..=86_400_000).contains(&r.wall_budget_ms) {
            return Err(SpecError::new(format!(
                "{}: resilience.wall_budget_ms must be in 0..=86400000 (one day), got {}",
                self.name, r.wall_budget_ms
            )));
        }
        Ok(())
    }

    /// Expand the scenario patterns against the filesystem, relative to
    /// `base_dir` (the campaign file's directory). The result is sorted
    /// and deduplicated, so campaign cell order never depends on
    /// directory-iteration order. Every pattern must match at least one
    /// file — a sweep silently missing its workloads is a config bug.
    pub fn resolve_scenarios(&self, base_dir: &Path) -> Result<Vec<PathBuf>> {
        let mut files: Vec<PathBuf> = Vec::new();
        for pattern in &self.scenarios {
            let mut dir = base_dir.to_path_buf();
            let components: Vec<&str> = pattern.split('/').filter(|c| !c.is_empty()).collect();
            let Some((last, parents)) = components.split_last() else {
                return Err(SpecError::new(format!(
                    "{}: empty scenario pattern",
                    self.name
                )));
            };
            for parent in parents {
                if parent.contains('*') {
                    return Err(SpecError::new(format!(
                        "{}: pattern '{pattern}': '*' is only supported in the file name",
                        self.name
                    )));
                }
                dir.push(parent);
            }
            if last.contains('*') {
                let entries = std::fs::read_dir(&dir).map_err(|e| {
                    SpecError::new(format!(
                        "{}: pattern '{pattern}': cannot read '{}': {e}",
                        self.name,
                        dir.display()
                    ))
                })?;
                let mut matched = false;
                for entry in entries.filter_map(|e| e.ok()) {
                    let name = entry.file_name();
                    let Some(name) = name.to_str() else { continue };
                    if glob_match(name, last) && entry.path().is_file() {
                        files.push(entry.path());
                        matched = true;
                    }
                }
                if !matched {
                    return Err(SpecError::new(format!(
                        "{}: pattern '{pattern}' matched no files under '{}'",
                        self.name,
                        dir.display()
                    )));
                }
            } else {
                let path = dir.join(last);
                if !path.is_file() {
                    return Err(SpecError::new(format!(
                        "{}: scenario spec '{}' does not exist",
                        self.name,
                        path.display()
                    )));
                }
                files.push(path);
            }
        }
        files.sort();
        files.dedup();
        Ok(files)
    }

    /// Serialize to the TOML subset of [`crate::toml`].
    pub fn to_toml(&self) -> String {
        let mut root = Table::new();
        root.set("name", Value::Str(self.name.clone()));
        root.set("description", Value::Str(self.description.clone()));
        root.set(
            "scenarios",
            Value::Array(self.scenarios.iter().cloned().map(Value::Str).collect()),
        );
        root.set("scale", Value::Str(scale_render(self.scale).into()));
        root.set("seed", Value::Int(self.seed));
        let mut grid = Table::new();
        grid.set(
            "cores",
            Value::Array(self.grid.cores.iter().map(|&c| Value::Int(c)).collect()),
        );
        if !self.grid.sweep_cores.is_empty() {
            grid.set(
                "sweep_cores",
                Value::Array(
                    self.grid
                        .sweep_cores
                        .iter()
                        .map(|&c| Value::Int(c))
                        .collect(),
                ),
            );
        }
        grid.set(
            "experiments",
            Value::Array(
                self.grid
                    .experiments
                    .iter()
                    .map(|e| Value::Str(e.render().into()))
                    .collect(),
            ),
        );
        if let Some(ov) = &self.grid.nest_override {
            let mut t = Table::new();
            t.set("nest", Value::Str(ov.nest.clone()));
            t.set(
                "glue",
                Value::Array(ov.glue.iter().map(|&g| Value::Int(g)).collect()),
            );
            grid.set("nest_override", Value::Table(t));
        }
        root.set("grid", Value::Table(grid));
        if self.resilience != ResiliencePolicy::default() {
            let mut res = Table::new();
            res.set("max_retries", Value::Int(self.resilience.max_retries));
            res.set("cycle_budget", Value::Int(self.resilience.cycle_budget));
            res.set("wall_budget_ms", Value::Int(self.resilience.wall_budget_ms));
            root.set("resilience", Value::Table(res));
        }
        toml::write(&root)
    }

    /// Parse a campaign from TOML text. The result is validated.
    pub fn from_toml(text: &str) -> Result<CampaignSpec> {
        let root = toml::parse(text).map_err(|e| SpecError::new(e.to_string()))?;
        let what = "campaign";
        let req_str = |key: &str| -> Result<String> {
            match root.get(key) {
                None => Err(SpecError::new(format!(
                    "{what}: missing string key '{key}'"
                ))),
                Some(v) => v.as_str().map(str::to_string).ok_or_else(|| {
                    SpecError::new(format!(
                        "{what}: '{key}' must be a string, got {}",
                        describe(v)
                    ))
                }),
            }
        };
        // Fields like `seed` are optional, but a present value of the
        // wrong type is a config bug, not something to silently default.
        // `key` is the lookup name inside `owner`; `label` is the
        // fully-qualified name used in error messages (e.g. "grid.cores").
        let opt_int = |owner: &Table, key: &str, label: &str| -> Result<Option<i64>> {
            match owner.get(key) {
                None => Ok(None),
                Some(v) => v.as_int().map(Some).ok_or_else(|| {
                    SpecError::new(format!(
                        "{what}: '{label}' must be an integer, got {}",
                        describe(v)
                    ))
                }),
            }
        };
        let int_array = |owner: &Table, key: &str, label: &str| -> Result<Option<Vec<i64>>> {
            match owner.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| {
                        SpecError::new(format!(
                            "{what}: '{label}' must be an array of integers, got {}",
                            describe(v)
                        ))
                    })?
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        c.as_int().ok_or_else(|| {
                            SpecError::new(format!(
                                "{what}: '{label}[{i}]' must be an integer, got {}",
                                describe(c)
                            ))
                        })
                    })
                    .collect::<Result<Vec<_>>>()
                    .map(Some),
            }
        };
        let scenarios = match root.get("scenarios") {
            None => {
                return Err(SpecError::new(format!(
                    "{what}: missing key 'scenarios' (array of scenario patterns)"
                )))
            }
            Some(v) => v
                .as_array()
                .ok_or_else(|| {
                    SpecError::new(format!(
                        "{what}: 'scenarios' must be an array of strings, got {}",
                        describe(v)
                    ))
                })?
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    p.as_str().map(str::to_string).ok_or_else(|| {
                        SpecError::new(format!(
                            "{what}: 'scenarios[{i}]' must be a string pattern, got {}",
                            describe(p)
                        ))
                    })
                })
                .collect::<Result<Vec<_>>>()?,
        };
        let grid = match root.get("grid") {
            None => CampaignGrid::default(),
            Some(v) => {
                let t = v.as_table().ok_or_else(|| {
                    SpecError::new(format!(
                        "{what}: 'grid' must be a table, got {}",
                        describe(v)
                    ))
                })?;
                let defaults = CampaignGrid::default();
                CampaignGrid {
                    cores: int_array(t, "cores", "grid.cores")?.unwrap_or(defaults.cores),
                    sweep_cores: int_array(t, "sweep_cores", "grid.sweep_cores")?
                        .unwrap_or(defaults.sweep_cores),
                    experiments: match t.get("experiments") {
                        None => defaults.experiments,
                        Some(v) => v
                            .as_array()
                            .ok_or_else(|| {
                                SpecError::new(format!(
                                    "{what}: 'grid.experiments' must be an array of strings, got {}",
                                    describe(v)
                                ))
                            })?
                            .iter()
                            .enumerate()
                            .map(|(i, e)| {
                                e.as_str()
                                    .ok_or_else(|| {
                                        SpecError::new(format!(
                                            "{what}: 'grid.experiments[{i}]' must be a string, got {}",
                                            describe(e)
                                        ))
                                    })
                                    .and_then(CampaignExperiment::parse)
                            })
                            .collect::<Result<Vec<_>>>()?,
                    },
                    nest_override: match t.get("nest_override") {
                        None => None,
                        Some(v) => {
                            let ov = v.as_table().ok_or_else(|| {
                                SpecError::new(format!(
                                    "{what}: 'grid.nest_override' must be a table, got {}",
                                    describe(v)
                                ))
                            })?;
                            let nest = match ov.get("nest") {
                                None => {
                                    return Err(SpecError::new(format!(
                                        "{what}: 'grid.nest_override' is missing string key 'nest'"
                                    )))
                                }
                                Some(v) => v.as_str().map(str::to_string).ok_or_else(|| {
                                    SpecError::new(format!(
                                        "{what}: 'grid.nest_override.nest' must be a string, got {}",
                                        describe(v)
                                    ))
                                })?,
                            };
                            let glue = int_array(ov, "glue", "grid.nest_override.glue")?
                                .ok_or_else(|| {
                                    SpecError::new(format!(
                                        "{what}: 'grid.nest_override' is missing integer array 'glue'"
                                    ))
                                })?;
                            Some(NestOverride { nest, glue })
                        }
                    },
                }
            }
        };
        let resilience = match root.get("resilience") {
            None => ResiliencePolicy::default(),
            Some(v) => {
                let t = v.as_table().ok_or_else(|| {
                    SpecError::new(format!(
                        "{what}: 'resilience' must be a table, got {}",
                        describe(v)
                    ))
                })?;
                let defaults = ResiliencePolicy::default();
                ResiliencePolicy {
                    max_retries: opt_int(t, "max_retries", "resilience.max_retries")?
                        .unwrap_or(defaults.max_retries),
                    cycle_budget: opt_int(t, "cycle_budget", "resilience.cycle_budget")?
                        .unwrap_or(defaults.cycle_budget),
                    wall_budget_ms: opt_int(t, "wall_budget_ms", "resilience.wall_budget_ms")?
                        .unwrap_or(defaults.wall_budget_ms),
                }
            }
        };
        let spec = CampaignSpec {
            name: req_str("name")?,
            description: root
                .get("description")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            scenarios,
            scale: match root.get("scale") {
                None => Scale::Test,
                Some(v) => scale_parse(v.as_str().ok_or_else(|| {
                    SpecError::new(format!(
                        "{what}: 'scale' must be a string, got {}",
                        describe(v)
                    ))
                })?)?,
            },
            seed: opt_int(&root, "seed", "seed")?.unwrap_or(0),
            grid,
            resilience,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Build a campaign and its scenario set from *inline TOML payloads*
/// instead of filesystem patterns — the shape a service submission
/// carries, where the client ships the spec contents over the wire and
/// the server never touches the client's filesystem.
///
/// The campaign's `scenarios` patterns are ignored (the payloads *are*
/// the scenario set); everything else — grid, scale, seed, resilience —
/// parses and validates exactly as [`CampaignSpec::from_toml`] does.
/// Scenarios are sorted by name and duplicates rejected, mirroring the
/// file-loading path, so an inline submission and a file-based run of
/// the same specs enumerate identical cells.
pub fn campaign_from_inline(
    campaign_toml: &str,
    scenario_tomls: &[String],
) -> Result<(CampaignSpec, Vec<crate::ScenarioSpec>)> {
    let spec = CampaignSpec::from_toml(campaign_toml)?;
    if scenario_tomls.is_empty() {
        return Err(SpecError::new(format!(
            "campaign '{}': inline submission carries no scenario payloads",
            spec.name
        )));
    }
    let mut scenarios = Vec::new();
    for (i, text) in scenario_tomls.iter().enumerate() {
        let scenario = crate::ScenarioSpec::from_toml(text)
            .map_err(|e| SpecError::new(format!("inline scenario [{i}]: {e}")))?;
        scenarios.push(scenario);
    }
    scenarios.sort_by(|a, b| a.name.cmp(&b.name));
    for pair in scenarios.windows(2) {
        if pair[0].name == pair[1].name {
            return Err(SpecError::new(format!(
                "campaign '{}': scenario '{}' is submitted more than once",
                spec.name, pair[0].name
            )));
        }
    }
    Ok((spec, scenarios))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> CampaignSpec {
        CampaignSpec {
            name: "demo".into(),
            description: "round-trip fixture".into(),
            scenarios: vec![
                "../scenarios/*.toml".into(),
                "../scenarios/175.vpr.toml".into(),
            ],
            scale: Scale::Test,
            seed: 3,
            grid: CampaignGrid {
                cores: vec![4, 8],
                sweep_cores: vec![2, 4, 8, 16],
                experiments: vec![
                    CampaignExperiment::Generations,
                    CampaignExperiment::CoupledVsRing,
                    CampaignExperiment::CoreSweep,
                ],
                nest_override: Some(NestOverride {
                    nest: "inner".into(),
                    glue: vec![0, 64, 256],
                }),
            },
            resilience: ResiliencePolicy {
                max_retries: 2,
                cycle_budget: 1 << 20,
                wall_budget_ms: 0,
            },
        }
    }

    #[test]
    fn campaign_round_trips_through_toml() {
        let spec = demo();
        let text = spec.to_toml();
        let parsed = CampaignSpec::from_toml(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(parsed, spec);
    }

    #[test]
    fn parse_rejects_bad_campaigns() {
        assert!(CampaignSpec::from_toml("description = \"no name\"\n").is_err());
        let no_scenarios = "name = \"x\"\nscenarios = []\n";
        assert!(CampaignSpec::from_toml(no_scenarios).is_err());
        let bad_exp = "name = \"x\"\nscenarios = [\"a.toml\"]\n[grid]\nexperiments = [\"warp\"]\n";
        let err = CampaignSpec::from_toml(bad_exp).unwrap_err();
        assert!(err.message.contains("warp"), "{err}");
        let bad_scale = "name = \"x\"\nscenarios = [\"a.toml\"]\nscale = \"huge\"\n";
        assert!(CampaignSpec::from_toml(bad_scale).is_err());
        let dup = "name = \"x\"\nscenarios = [\"a.toml\"]\n[grid]\nexperiments = [\"lattice\", \"lattice\"]\n";
        assert!(CampaignSpec::from_toml(dup).is_err());
    }

    #[test]
    fn defaults_fill_in() {
        let spec = CampaignSpec::from_toml("name = \"x\"\nscenarios = [\"a.toml\"]\n").unwrap();
        assert_eq!(spec.scale, Scale::Test);
        assert_eq!(spec.seed, 0);
        assert_eq!(spec.grid, CampaignGrid::default());
        assert_eq!(spec.resilience, ResiliencePolicy::default());
        // A default policy leaves no [resilience] table behind.
        assert!(!spec.to_toml().contains("resilience"));
    }

    /// Type errors name the field and the offending value, not just
    /// the expected shape.
    #[test]
    fn parse_errors_name_field_and_value() {
        let cases: &[(&str, &[&str])] = &[
            (
                "name = 7\nscenarios = [\"a.toml\"]\n",
                &["'name'", "string", "7"],
            ),
            (
                "name = \"x\"\nscenarios = \"a.toml\"\n",
                &["'scenarios'", "\"a.toml\""],
            ),
            (
                "name = \"x\"\nscenarios = [\"a.toml\", 9]\n",
                &["'scenarios[1]'", "9"],
            ),
            (
                "name = \"x\"\nscenarios = [\"a.toml\"]\nseed = \"five\"\n",
                &["'seed'", "integer", "\"five\""],
            ),
            (
                "name = \"x\"\nscenarios = [\"a.toml\"]\nscale = 2\n",
                &["'scale'", "string", "2"],
            ),
            (
                "name = \"x\"\nscenarios = [\"a.toml\"]\n[grid]\ncores = [8, \"many\"]\n",
                &["'grid.cores[1]'", "\"many\""],
            ),
            (
                "name = \"x\"\nscenarios = [\"a.toml\"]\n[grid]\ncores = true\n",
                &["'grid.cores'", "array of integers", "true"],
            ),
            (
                "name = \"x\"\nscenarios = [\"a.toml\"]\n[grid]\nexperiments = [3]\n",
                &["'grid.experiments[0]'", "3"],
            ),
            (
                "name = \"x\"\nscenarios = [\"a.toml\"]\n[resilience]\nmax_retries = \"lots\"\n",
                &["'resilience.max_retries'", "\"lots\""],
            ),
            (
                "name = \"x\"\nscenarios = [\"a.toml\"]\nresilience = 4\n",
                &["'resilience'", "table", "4"],
            ),
        ];
        for (text, needles) in cases {
            let err = CampaignSpec::from_toml(text).unwrap_err();
            for needle in *needles {
                assert!(
                    err.message.contains(needle),
                    "error for {text:?} should mention {needle:?}: {err}"
                );
            }
        }
    }

    /// Out-of-range resilience settings are rejected with the value.
    #[test]
    fn validate_rejects_bad_resilience() {
        let base = "name = \"x\"\nscenarios = [\"a.toml\"]\n[resilience]\n";
        let err = CampaignSpec::from_toml(&format!("{base}max_retries = 99\n")).unwrap_err();
        assert!(err.message.contains("99"), "{err}");
        let err = CampaignSpec::from_toml(&format!("{base}cycle_budget = -1\n")).unwrap_err();
        assert!(err.message.contains("-1"), "{err}");
        let err =
            CampaignSpec::from_toml(&format!("{base}wall_budget_ms = 99999999999\n")).unwrap_err();
        assert!(err.message.contains("99999999999"), "{err}");
    }

    #[test]
    fn resilience_round_trips_through_toml() {
        let text = "name = \"x\"\nscenarios = [\"a.toml\"]\n[resilience]\nmax_retries = 0\ncycle_budget = 4096\nwall_budget_ms = 1500\n";
        let spec = CampaignSpec::from_toml(text).unwrap();
        assert_eq!(
            spec.resilience,
            ResiliencePolicy {
                max_retries: 0,
                cycle_budget: 4096,
                wall_budget_ms: 1500
            }
        );
        let reparsed = CampaignSpec::from_toml(&spec.to_toml()).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("175.vpr.toml", "*.toml"));
        assert!(glob_match("175.vpr.toml", "175*"));
        assert!(glob_match("930.zipf.toml", "9*.toml"));
        assert!(glob_match("abc", "abc"));
        assert!(glob_match("abc", "a*b*c"));
        assert!(!glob_match("175.vpr.toml", "*.json"));
        assert!(!glob_match("abc", "abcd"));
        assert!(!glob_match("readme.md", "9*.toml"));
    }

    #[test]
    fn resolve_reports_missing_files_clearly() {
        let mut spec = demo();
        spec.scenarios = vec!["no/such/dir/*.toml".into()];
        let err = spec
            .resolve_scenarios(Path::new("/nonexistent-base"))
            .unwrap_err();
        assert!(err.message.contains("no/such/dir"), "{err}");
        spec.scenarios = vec!["missing.toml".into()];
        let err = spec.resolve_scenarios(Path::new("/tmp")).unwrap_err();
        assert!(err.message.contains("missing.toml"), "{err}");
    }

    #[test]
    fn resolve_rejects_glob_in_directory_component() {
        let mut spec = demo();
        spec.scenarios = vec!["sc*/a.toml".into()];
        let err = spec.resolve_scenarios(Path::new("/tmp")).unwrap_err();
        assert!(err.message.contains("file name"), "{err}");
    }
}
