//! Experiment runners: each function reproduces one measurement setup of
//! the paper's evaluation (§6), returning structured results the figure
//! harness renders.

use crate::batch::{SimCache, SEQ_KEY};
use helix_hcc::{CompiledProgram, HccConfig, LoopPlan};
use helix_ir::Program;
use helix_ring_cache::{ArrayConfig, RingConfig};
use helix_sim::{
    Bucket, CoreModel, DecoupleConfig, EngineSel, Machine, MachineConfig, RunReport, SimSession,
    SyncModel,
};
use helix_workloads::Workload;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Default cycle budget for experiment simulations.
pub const FUEL: u64 = 1 << 27;

/// Execution options threaded through every experiment entry point —
/// the one knob set that used to be the `*_with_fuel` variant sprawl.
///
/// [`ExperimentOptions::default`] reproduces the historical defaults
/// (the [`FUEL`] budget, the decoded engine, single-lane execution, no
/// cache), so `&ExperimentOptions::default()` is a drop-in for the old
/// short-form calls.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Cycle budget per simulation.
    pub fuel: u64,
    /// Execution engine every simulation in the experiment runs under.
    pub engine: EngineSel,
    /// Lane width for batched execution: with
    /// [`EngineSel::Batched`], up to this many simulations of the same
    /// program step in lockstep per [`SimSession`] batch. Ignored (and
    /// harmless) under the other engines.
    pub lanes: usize,
    /// Per-scenario memo for compiles, decodes, and run reports.
    /// Campaigns share one cache across every cell of a scenario so
    /// overlapping work — sequential baselines, HCCv3 compiles,
    /// repeated HELIX-RC runs — happens once. Cached values are
    /// deterministic: results are byte-identical with or without it.
    pub cache: Option<Arc<SimCache>>,
    /// Event-skipping fast-forward (on by default). Disabling it forces
    /// the naive one-cycle-at-a-time loop on every simulation —
    /// bit-identical results, much slower — which is what benches use
    /// as the pre-optimization "before" and exactness tests use as the
    /// cross-check oracle.
    pub fast_forward: bool,
}

impl Default for ExperimentOptions {
    fn default() -> ExperimentOptions {
        ExperimentOptions {
            fuel: FUEL,
            engine: EngineSel::Decoded,
            lanes: 1,
            cache: None,
            fast_forward: true,
        }
    }
}

impl ExperimentOptions {
    /// The same options under a different cycle budget.
    pub fn with_fuel(mut self, fuel: u64) -> ExperimentOptions {
        self.fuel = fuel;
        self
    }

    /// The same options under a different execution engine.
    pub fn with_engine(mut self, engine: EngineSel) -> ExperimentOptions {
        self.engine = engine;
        self
    }

    /// The same options with a different lane width.
    pub fn with_lanes(mut self, lanes: usize) -> ExperimentOptions {
        self.lanes = lanes;
        self
    }

    /// The same options sharing the given simulation cache.
    pub fn with_cache(mut self, cache: Arc<SimCache>) -> ExperimentOptions {
        self.cache = Some(cache);
        self
    }

    /// The same options on the naive cycle loop (no event-skipping
    /// fast-forward): the benches' "before" and the exactness oracle.
    pub fn without_fast_forward(mut self) -> ExperimentOptions {
        self.fast_forward = false;
        self
    }

    /// Compile under `hcc`, memoized through the cache when present.
    fn compile(
        &self,
        program: &Program,
        hcc: &HccConfig,
    ) -> Result<Arc<CompiledProgram>, ExpError> {
        match &self.cache {
            Some(cache) => cache.compile(program, hcc),
            None => Ok(Arc::new(helix_hcc::compile(program, hcc)?)),
        }
    }
}

/// Run `cfgs` over one (program, plans) pair under `opts`: engine
/// selection applied uniformly, report memoization through the cache,
/// and — under [`EngineSel::Batched`] — cache misses stepped in
/// lockstep as lanes of one [`SimSession`] (in batches of `opts.lanes`)
/// over a single shared decode. `decode_key` identifies the program in
/// the cache ([`SEQ_KEY`] or a compile key).
///
/// Every path produces bit-identical reports; they differ only in how
/// much work is shared.
fn run_batch(
    opts: &ExperimentOptions,
    decode_key: &str,
    program: &Program,
    plans: &[LoopPlan],
    cfgs: Vec<MachineConfig>,
) -> Result<Vec<RunReport>, ExpError> {
    let cfgs: Vec<MachineConfig> = cfgs
        .into_iter()
        .map(|mut cfg| {
            cfg.fast_forward = opts.fast_forward;
            cfg.with_engine(opts.engine)
        })
        .collect();
    let keys: Vec<String> = cfgs
        .iter()
        .map(|cfg| format!("{decode_key}|{cfg:?}|{}", opts.fuel))
        .collect();
    let mut results: Vec<Option<RunReport>> = keys
        .iter()
        .map(|key| opts.cache.as_ref().and_then(|c| c.report(key)))
        .collect();
    let misses: Vec<usize> = (0..cfgs.len()).filter(|&i| results[i].is_none()).collect();
    if misses.is_empty() {
        return Ok(results.into_iter().map(|r| r.expect("all hits")).collect());
    }
    let decoded = match (&opts.cache, opts.engine.is_decoded()) {
        (Some(cache), true) => Some(cache.decoded(decode_key, program)),
        _ => None,
    };
    if opts.engine == EngineSel::Batched && misses.len() > 1 {
        // Event-cooperative lanes over one shared decode, `opts.lanes`
        // at a time, on a single session: machines retired by one chunk
        // are recycled by the next, and the scenario cache carries the
        // pool across batches (returned before any error propagates).
        let mut session = match &decoded {
            Some(d) => SimSession::with_decoded(program, plans, d.clone()),
            None => SimSession::new(program, plans),
        };
        if let Some(cache) = &opts.cache {
            session.set_pool(cache.take_pool());
        }
        let mut outcome: Result<(), ExpError> = Ok(());
        'chunks: for chunk in misses.chunks(opts.lanes.max(1)) {
            for &ix in chunk {
                session.enqueue(cfgs[ix].clone(), opts.fuel);
            }
            for (lane, &ix) in session.drain().into_iter().zip(chunk) {
                match lane.result {
                    Ok(report) => results[ix] = Some(report),
                    Err(e) => {
                        outcome = Err(e.into());
                        break 'chunks;
                    }
                }
            }
        }
        if let Some(cache) = &opts.cache {
            cache.return_pool(session.take_pool());
        }
        outcome?;
    } else {
        let computed: Vec<Result<RunReport, ExpError>> = misses
            .par_iter()
            .map(|&ix| {
                let mut machine = match &decoded {
                    Some(d) => Machine::with_decoded(program, plans, cfgs[ix].clone(), d.clone()),
                    None => Machine::new(program, plans, cfgs[ix].clone()),
                };
                Ok(machine.run(opts.fuel)?)
            })
            .collect();
        for (report, &ix) in computed.into_iter().zip(&misses) {
            results[ix] = Some(report?);
        }
    }
    if let Some(cache) = &opts.cache {
        for &ix in &misses {
            if let Some(report) = &results[ix] {
                cache.store_report(keys[ix].clone(), report);
            }
        }
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("all filled"))
        .collect())
}

/// Error from an experiment run.
///
/// Since the API redesign this is an alias for the structured
/// [`HelixError`](crate::error::HelixError) (kind + context), so
/// `format!(...).into()` construction sites and `?` over
/// compile/simulate errors keep working while consumers gain a
/// classified [`kind`](crate::error::HelixError::kind) with a stable
/// machine-readable code.
pub type ExpError = crate::error::HelixError;

/// Compile `w` for each compiler generation at `cores` (one compile per
/// worker thread; the compilations are independent — and memoized
/// through `opts.cache` when present).
pub fn compile_all(
    w: &Workload,
    cores: u32,
    opts: &ExperimentOptions,
) -> Result<[Arc<CompiledProgram>; 3], ExpError> {
    let configs = [
        HccConfig::v1(cores),
        HccConfig::v2(cores),
        HccConfig::v3(cores),
    ];
    let mut compiled: Vec<Arc<CompiledProgram>> = configs
        .par_iter()
        .map(|cfg| opts.compile(&w.program, cfg))
        .collect::<Result<Vec<_>, _>>()?;
    let v3 = compiled.pop().expect("three compiles");
    let v2 = compiled.pop().expect("three compiles");
    let v1 = compiled.pop().expect("three compiles");
    Ok([v1, v2, v3])
}

/// Sequential baseline cycles of the *original* program on the given
/// core model.
pub fn baseline_cycles(
    w: &Workload,
    cfg: &MachineConfig,
    opts: &ExperimentOptions,
) -> Result<u64, ExpError> {
    let reports = run_batch(opts, SEQ_KEY, &w.program, &[], vec![cfg.clone()])?;
    Ok(reports[0].cycles)
}

/// Assert a parallel run upheld all compiler guarantees.
pub fn check(report: &RunReport, what: &str) -> Result<(), ExpError> {
    use crate::error::ErrorKind;
    if !report.race_violations.is_empty() {
        return Err(ExpError::new(
            ErrorKind::Sim,
            format!("{what}: race violations: {:?}", report.race_violations),
        ));
    }
    if !report.protocol_errors.is_empty() {
        return Err(ExpError::new(
            ErrorKind::Sim,
            format!("{what}: protocol errors: {:?}", report.protocol_errors),
        ));
    }
    Ok(())
}

/// One benchmark's speedups under the three compiler generations
/// (Fig. 1 uses v1/v2, Fig. 7 uses v2/HELIX-RC).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompilerGenerations {
    /// Benchmark name.
    pub name: String,
    /// HCCv1 on the conventional machine.
    pub v1: f64,
    /// HCCv2 on the conventional machine.
    pub v2: f64,
    /// HCCv3 + ring cache (HELIX-RC).
    pub helix_rc: f64,
    /// Published HELIX-RC speedup, for reference.
    pub paper_helix: f64,
    /// Sequential baseline cycles (the denominator of every speedup).
    pub seq_cycles: u64,
    /// Cycles of the HELIX-RC run.
    pub helix_cycles: u64,
}

/// Run the headline comparison for one workload at `cores`. The
/// sequential baseline and the three generation runs are independent
/// simulations and execute in parallel.
pub fn compiler_generations(
    w: &Workload,
    cores: usize,
    opts: &ExperimentOptions,
) -> Result<CompilerGenerations, ExpError> {
    let [v1, v2, v3] = compile_all(w, cores as u32, opts)?;
    let conventional = MachineConfig::conventional(cores);
    let helix = MachineConfig::helix_rc(cores);
    let gens = [
        (HccConfig::v1(cores as u32), &v1, &conventional),
        (HccConfig::v2(cores as u32), &v2, &conventional),
        (HccConfig::v3(cores as u32), &v3, &helix),
    ];

    // The four runs cover four *different* programs (original + three
    // transformed), so there is no decode to share across them; each is
    // a one-config batch, parallel across jobs.
    let jobs: Vec<Option<usize>> = vec![None, Some(0), Some(1), Some(2)];
    let reports: Vec<RunReport> =
        jobs.par_iter()
            .map(|job| -> Result<RunReport, ExpError> {
                let rep = match job {
                    None => run_batch(opts, SEQ_KEY, &w.program, &[], vec![conventional.clone()])?
                        .remove(0),
                    Some(g) => {
                        let (hcc, compiled, cfg) = &gens[*g];
                        let key = SimCache::compile_key(hcc);
                        let rep = run_batch(
                            opts,
                            &key,
                            &compiled.program,
                            &compiled.plans,
                            vec![(*cfg).clone()],
                        )?
                        .remove(0);
                        check(&rep, &w.name)?;
                        rep
                    }
                };
                Ok(rep)
            })
            .collect::<Result<Vec<_>, _>>()?;

    let seq = reports[0].cycles;
    Ok(CompilerGenerations {
        name: w.name.to_string(),
        v1: seq as f64 / reports[1].cycles.max(1) as f64,
        v2: seq as f64 / reports[2].cycles.max(1) as f64,
        helix_rc: seq as f64 / reports[3].cycles.max(1) as f64,
        paper_helix: w.paper.helix_speedup,
        seq_cycles: seq,
        helix_cycles: reports[3].cycles,
    })
}

/// The Fig. 8 decoupling lattice, in the paper's bar order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatticePoint {
    /// HCCv2 on conventional hardware (nothing decoupled).
    Hccv2,
    /// Register-carried traffic decoupled only.
    Reg,
    /// Registers + synchronization decoupled.
    RegSynch,
    /// Registers + memory decoupled (synchronization still coupled).
    RegMem,
    /// Everything decoupled (HELIX-RC).
    All,
}

impl LatticePoint {
    /// All points in the paper's order.
    pub const ALL: [LatticePoint; 5] = [
        LatticePoint::Hccv2,
        LatticePoint::Reg,
        LatticePoint::RegSynch,
        LatticePoint::RegMem,
        LatticePoint::All,
    ];

    /// Bar label from Fig. 8.
    pub fn label(self) -> &'static str {
        match self {
            LatticePoint::Hccv2 => "HCCv2",
            LatticePoint::Reg => "decoupled reg. communication",
            LatticePoint::RegSynch => "decoupled reg. comm. and synch.",
            LatticePoint::RegMem => "decoupled reg. and memory comm.",
            LatticePoint::All => "HELIX-RC (decoupled all communication)",
        }
    }

    /// Machine configuration for this point.
    pub fn machine(self, cores: usize) -> MachineConfig {
        let mut cfg = MachineConfig::conventional(cores);
        let decouple = match self {
            LatticePoint::Hccv2 => DecoupleConfig::none(),
            LatticePoint::Reg => DecoupleConfig {
                register: true,
                synch: false,
                memory: false,
            },
            LatticePoint::RegSynch => DecoupleConfig {
                register: true,
                synch: true,
                memory: false,
            },
            LatticePoint::RegMem => DecoupleConfig {
                register: true,
                synch: false,
                memory: true,
            },
            LatticePoint::All => DecoupleConfig::all(),
        };
        if decouple.any() {
            cfg.ring = Some(RingConfig::paper_default(cores));
        }
        if decouple.synch {
            cfg.sync = SyncModel::AllPredecessors;
        }
        cfg.decouple = decouple;
        cfg
    }

    /// Compiler used at this point (HCCv2 for the baseline bar, HCCv3
    /// everywhere else).
    pub fn compiler(self, cores: u32) -> HccConfig {
        match self {
            LatticePoint::Hccv2 => HccConfig::v2(cores),
            _ => HccConfig::v3(cores),
        }
    }
}

/// Speedups across the decoupling lattice for one workload (Fig. 8).
/// The five lattice points compile at most twice (HCCv2 for the
/// baseline bar, HCCv3 for the rest), and the four HCCv3 points run as
/// one batch over a shared program — lockstep lanes under
/// [`EngineSel::Batched`].
pub fn decoupling_lattice(
    w: &Workload,
    cores: usize,
    opts: &ExperimentOptions,
) -> Result<Vec<(LatticePoint, f64)>, ExpError> {
    let v2_hcc = LatticePoint::Hccv2.compiler(cores as u32);
    let v3_hcc = LatticePoint::All.compiler(cores as u32);
    let (v2, v3) = {
        let pair: Vec<Arc<CompiledProgram>> = [&v2_hcc, &v3_hcc]
            .par_iter()
            .map(|hcc| opts.compile(&w.program, hcc))
            .collect::<Result<Vec<_>, _>>()?;
        let mut it = pair.into_iter();
        (it.next().expect("two"), it.next().expect("two"))
    };
    let v3_points: Vec<LatticePoint> = LatticePoint::ALL
        .into_iter()
        .filter(|p| *p != LatticePoint::Hccv2)
        .collect();

    // Three independent jobs: the sequential baseline, the HCCv2 bar,
    // and the four HCCv3 points batched over one shared decode.
    let (seq, v2_cycles, v3_reports) = {
        let results: Vec<Result<Vec<RunReport>, ExpError>> = [0usize, 1, 2]
            .par_iter()
            .map(|job| match job {
                0 => run_batch(
                    opts,
                    SEQ_KEY,
                    &w.program,
                    &[],
                    vec![MachineConfig::conventional(cores)],
                ),
                1 => run_batch(
                    opts,
                    &SimCache::compile_key(&v2_hcc),
                    &v2.program,
                    &v2.plans,
                    vec![LatticePoint::Hccv2.machine(cores)],
                ),
                _ => run_batch(
                    opts,
                    &SimCache::compile_key(&v3_hcc),
                    &v3.program,
                    &v3.plans,
                    v3_points.iter().map(|p| p.machine(cores)).collect(),
                ),
            })
            .collect();
        let mut it = results.into_iter();
        let seq = it.next().expect("three")?.remove(0).cycles;
        let v2_report = it.next().expect("three")?.remove(0);
        check(&v2_report, LatticePoint::Hccv2.label())?;
        let v3_reports = it.next().expect("three")?;
        (seq, v2_report.cycles, v3_reports)
    };
    let mut out = vec![(LatticePoint::Hccv2, seq as f64 / v2_cycles.max(1) as f64)];
    for (point, report) in v3_points.iter().zip(&v3_reports) {
        check(report, point.label())?;
        out.push((*point, seq as f64 / report.cycles.max(1) as f64));
    }
    Ok(out)
}

/// Fig. 9: HCCv3-selected code on conventional hardware vs. the ring
/// cache, as % of sequential execution time with a
/// communication/computation split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoupledVsRing {
    /// Benchmark name.
    pub name: String,
    /// Conventional run time as % of sequential (C bar; >100 = slowdown).
    pub conventional_pct: f64,
    /// Ring-cache run time as % of sequential (R bar).
    pub ring_pct: f64,
    /// Fraction of the conventional run's core-cycles spent on
    /// communication (incl. waiting).
    pub conventional_comm_frac: f64,
    /// Same for the ring run.
    pub ring_comm_frac: f64,
}

/// Communication fraction of a report: communication + dependence
/// waiting + wait/signal cycles over all busy cycles. Shared with the
/// explore harness so frontier `comm_frac` means exactly what the
/// Fig. 9 experiment reports.
pub(crate) fn comm_frac(r: &RunReport) -> f64 {
    let comm = r.attribution.total(Bucket::Communication)
        + r.attribution.total(Bucket::DependenceWaiting)
        + r.attribution.total(Bucket::WaitSignal);
    let busy: u64 = [
        Bucket::Computation,
        Bucket::AdditionalInsts,
        Bucket::WaitSignal,
        Bucket::Memory,
        Bucket::Communication,
        Bucket::DependenceWaiting,
    ]
    .iter()
    .map(|b| r.attribution.total(*b))
    .sum();
    comm as f64 / busy.max(1) as f64
}

/// Run the Fig. 9 comparison.
pub fn coupled_vs_ring(
    w: &Workload,
    cores: usize,
    opts: &ExperimentOptions,
) -> Result<CoupledVsRing, ExpError> {
    // HCCv3 selects loops assuming decoupling exists (ring-class sync
    // cost), then the code runs on both machines — one two-lane batch
    // over the shared compile.
    let hcc = HccConfig::v3(cores as u32);
    let compiled = opts.compile(&w.program, &hcc)?;
    let seq = baseline_cycles(w, &MachineConfig::conventional(cores), opts)?;
    let mut reports = run_batch(
        opts,
        &SimCache::compile_key(&hcc),
        &compiled.program,
        &compiled.plans,
        vec![
            MachineConfig::conventional(cores),
            MachineConfig::helix_rc(cores),
        ],
    )?;
    let ring = reports.pop().expect("two lanes");
    let conv = reports.pop().expect("two lanes");
    check(&conv, "conventional")?;
    check(&ring, "ring")?;
    Ok(CoupledVsRing {
        name: w.name.to_string(),
        conventional_pct: 100.0 * conv.cycles as f64 / seq.max(1) as f64,
        ring_pct: 100.0 * ring.cycles as f64 / seq.max(1) as f64,
        conventional_comm_frac: comm_frac(&conv),
        ring_comm_frac: comm_frac(&ring),
    })
}

/// Fig. 10: speedups per core model, plus the sequential-time ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreTypeRow {
    /// Benchmark name.
    pub name: String,
    /// HELIX-RC speedup on 2-way in-order cores.
    pub io2: f64,
    /// On 2-way out-of-order cores.
    pub ooo2: f64,
    /// On 4-way out-of-order cores.
    pub ooo4: f64,
    /// Sequential time on the 2-way in-order core / sequential time on
    /// the 4-way OoO core (the paper's lower panel, inverted: >1 means
    /// the OoO core is faster).
    pub seq_io_over_ooo4: f64,
}

/// Run the core-type sensitivity for one workload: the three parallel
/// runs batch over the shared HCCv3 compile, the three sequential
/// baselines over the original program.
pub fn core_type_sweep(
    w: &Workload,
    cores: usize,
    opts: &ExperimentOptions,
) -> Result<CoreTypeRow, ExpError> {
    let hcc = HccConfig::v3(cores as u32);
    let compiled = opts.compile(&w.program, &hcc)?;
    let models = [
        CoreModel::InOrder { width: 2 },
        CoreModel::OutOfOrder { width: 2, rob: 48 },
        CoreModel::OutOfOrder { width: 4, rob: 96 },
    ];
    let seq_cfgs: Vec<MachineConfig> = models
        .iter()
        .map(|&model| {
            let mut cfg = MachineConfig::conventional(cores);
            cfg.core = model;
            cfg
        })
        .collect();
    let par_cfgs: Vec<MachineConfig> = models
        .iter()
        .map(|&model| {
            let mut cfg = MachineConfig::helix_rc(cores);
            cfg.core = model;
            cfg
        })
        .collect();
    let seqs = run_batch(opts, SEQ_KEY, &w.program, &[], seq_cfgs)?;
    let pars = run_batch(
        opts,
        &SimCache::compile_key(&hcc),
        &compiled.program,
        &compiled.plans,
        par_cfgs,
    )?;
    let mut speedups = [0.0f64; 3];
    for i in 0..3 {
        check(&pars[i], "core sweep")?;
        speedups[i] = seqs[i].cycles as f64 / pars[i].cycles.max(1) as f64;
    }
    Ok(CoreTypeRow {
        name: w.name.to_string(),
        io2: speedups[0],
        ooo2: speedups[1],
        ooo4: speedups[2],
        seq_io_over_ooo4: seqs[0].cycles as f64 / seqs[2].cycles.max(1) as f64,
    })
}

/// Generic ring-parameter sweep point: label plus speedup.
pub type SweepPoint = (String, f64);

/// Fig. 11a: core-count scaling. Each core count is an independent
/// (compile + baseline + simulate) job; counts run in parallel.
pub fn sweep_core_count(
    w: &Workload,
    counts: &[usize],
    opts: &ExperimentOptions,
) -> Result<Vec<SweepPoint>, ExpError> {
    counts
        .par_iter()
        .map(|&cores| -> Result<SweepPoint, ExpError> {
            let hcc = HccConfig::v3(cores as u32);
            let compiled = opts.compile(&w.program, &hcc)?;
            let seq = baseline_cycles(w, &MachineConfig::conventional(cores), opts)?;
            let rep = run_batch(
                opts,
                &SimCache::compile_key(&hcc),
                &compiled.program,
                &compiled.plans,
                vec![MachineConfig::helix_rc(cores)],
            )?
            .pop()
            .expect("one lane in, one report out");
            check(&rep, "core count")?;
            Ok((
                format!("{cores} cores"),
                seq as f64 / rep.cycles.max(1) as f64,
            ))
        })
        .collect::<Result<Vec<_>, _>>()
}

/// Sweep a ring-cache parameter; `set` mutates the default ring config.
/// The compiled program, its decode, and the baseline are shared; every
/// sweep point rides the same `run_batch` call, so under the batched
/// engine the whole sweep steps in lockstep as lanes of one session.
pub fn sweep_ring<F: Fn(&mut RingConfig) + Sync>(
    w: &Workload,
    cores: usize,
    labels_and_sets: &[(String, F)],
    opts: &ExperimentOptions,
) -> Result<Vec<SweepPoint>, ExpError> {
    let hcc = HccConfig::v3(cores as u32);
    let compiled = opts.compile(&w.program, &hcc)?;
    let seq = baseline_cycles(w, &MachineConfig::conventional(cores), opts)?;
    let cfgs: Vec<MachineConfig> = labels_and_sets
        .iter()
        .map(|(_, set)| {
            let mut cfg = MachineConfig::helix_rc(cores);
            let ring = cfg.ring.as_mut().expect("helix config has a ring");
            set(ring);
            cfg
        })
        .collect();
    let reports = run_batch(
        opts,
        &SimCache::compile_key(&hcc),
        &compiled.program,
        &compiled.plans,
        cfgs,
    )?;
    labels_and_sets
        .iter()
        .zip(reports)
        .map(|((label, _), rep)| {
            check(&rep, label)?;
            Ok((label.clone(), seq as f64 / rep.cycles.max(1) as f64))
        })
        .collect()
}

/// Fig. 11b link-latency settings.
pub fn link_latency_settings() -> Vec<(String, impl Fn(&mut RingConfig))> {
    [1u32, 4, 8, 16, 32]
        .into_iter()
        .map(|lat| {
            (
                format!("{lat} cycle{}", if lat == 1 { "" } else { "s" }),
                move |r: &mut RingConfig| r.hop_latency = lat,
            )
        })
        .collect()
}

/// Fig. 11c signal-bandwidth settings.
pub fn signal_bandwidth_settings() -> Vec<(String, impl Fn(&mut RingConfig))> {
    [None, Some(4u32), Some(2), Some(1)]
        .into_iter()
        .map(|bw| {
            (
                match bw {
                    None => "Unbounded".to_string(),
                    Some(k) => format!("{k} Signal{}", if k == 1 { "" } else { "s" }),
                },
                move |r: &mut RingConfig| r.signal_bandwidth = bw,
            )
        })
        .collect()
}

/// Fig. 11d node-memory settings.
pub fn node_memory_settings() -> Vec<(String, impl Fn(&mut RingConfig))> {
    [None, Some(32 * 1024u64), Some(1024), Some(256)]
        .into_iter()
        .map(|cap| {
            (
                match cap {
                    None => "Unbounded".to_string(),
                    Some(c) if c >= 1024 => format!("{} KB", c / 1024),
                    Some(c) => format!("{c} B"),
                },
                move |r: &mut RingConfig| {
                    r.array = ArrayConfig {
                        capacity: cap,
                        ..ArrayConfig::paper_default()
                    }
                },
            )
        })
        .collect()
}

/// Fig. 12 row: overhead fractions and achieved speedup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Benchmark name.
    pub name: String,
    /// Measured overhead fractions (Fig. 12 column order).
    pub measured: [f64; 7],
    /// Published fractions.
    pub paper: [f64; 7],
    /// Measured HELIX-RC speedup.
    pub speedup: f64,
    /// Published speedup.
    pub paper_speedup: f64,
}

/// Run the overhead taxonomy for one workload.
pub fn overhead_breakdown(
    w: &Workload,
    cores: usize,
    opts: &ExperimentOptions,
) -> Result<OverheadRow, ExpError> {
    let hcc = HccConfig::v3(cores as u32);
    let compiled = opts.compile(&w.program, &hcc)?;
    let seq = baseline_cycles(w, &MachineConfig::conventional(cores), opts)?;
    let rep = run_batch(
        opts,
        &SimCache::compile_key(&hcc),
        &compiled.program,
        &compiled.plans,
        vec![MachineConfig::helix_rc(cores)],
    )?
    .pop()
    .expect("one lane in, one report out");
    check(&rep, &w.name)?;
    Ok(OverheadRow {
        name: w.name.to_string(),
        measured: rep.attribution.overhead_fractions(),
        paper: w.paper.overheads,
        speedup: seq as f64 / rep.cycles.max(1) as f64,
        paper_speedup: w.paper.helix_speedup,
    })
}

/// Fig. 4a: per-iteration cycle counts of the HELIX-selected loops on a
/// single in-order core.
pub fn iteration_lengths(w: &Workload, opts: &ExperimentOptions) -> Result<Vec<u32>, ExpError> {
    // Select loops as HELIX-RC would (16-core profile), then execute the
    // parallel plan on a single core to time individual iterations.
    let hcc = HccConfig::v3(16);
    let compiled = opts.compile(&w.program, &hcc)?;
    let rep = run_batch(
        opts,
        &SimCache::compile_key(&hcc),
        &compiled.program,
        &compiled.plans,
        vec![MachineConfig::helix_rc(1)],
    )?
    .pop()
    .expect("one lane in, one report out");
    Ok(rep.iteration_lengths)
}

/// Fig. 4b/4c: producer→first-consumer distance and consumers-per-value
/// distributions from the 16-core ring run.
pub fn sharing_profile(
    w: &Workload,
    cores: usize,
    opts: &ExperimentOptions,
) -> Result<(Vec<f64>, Vec<f64>), ExpError> {
    let hcc = HccConfig::v3(cores as u32);
    let compiled = opts.compile(&w.program, &hcc)?;
    let rep = run_batch(
        opts,
        &SimCache::compile_key(&hcc),
        &compiled.program,
        &compiled.plans,
        vec![MachineConfig::helix_rc(cores)],
    )?
    .pop()
    .expect("one lane in, one report out");
    check(&rep, &w.name)?;
    let stats = rep.ring_stats.expect("ring stats present");
    Ok((stats.distance_distribution(), stats.consumer_distribution()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_workloads::{by_name, Scale};

    #[test]
    fn lattice_points_have_distinct_machines() {
        for p in LatticePoint::ALL {
            let m = p.machine(8);
            m.assert_valid();
        }
        assert!(!LatticePoint::Hccv2.machine(8).decouple.any());
        assert!(LatticePoint::All.machine(8).decouple.any());
        assert_eq!(
            LatticePoint::RegSynch.machine(8).sync,
            SyncModel::AllPredecessors
        );
        assert_eq!(
            LatticePoint::RegMem.machine(8).sync,
            SyncModel::ChainedPredecessor
        );
    }

    #[test]
    fn headline_runs_for_one_workload() {
        let w = by_name("175.vpr", Scale::Test).unwrap();
        let row = compiler_generations(&w, 8, &ExperimentOptions::default()).unwrap();
        assert!(row.helix_rc > 1.0, "HELIX-RC must speed up: {row:?}");
        assert!(
            row.helix_rc > row.v2,
            "decoupling must beat compiler-only: {row:?}"
        );
    }

    #[test]
    fn settings_lists_cover_paper_axes() {
        assert_eq!(link_latency_settings().len(), 5);
        assert_eq!(signal_bandwidth_settings().len(), 4);
        assert_eq!(node_memory_settings().len(), 4);
    }
}
