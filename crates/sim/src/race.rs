//! Runtime race detection: validates the compiler's guarantees.
//!
//! During a parallel loop, any word touched by two different cores (with
//! at least one writer) must be accessed exclusively through shared-tagged
//! instructions of one segment, inside that segment's wait/signal window.
//! Violations indicate a compiler bug (or deliberately corrupted plans in
//! the failure-injection tests).

use helix_ir::{SegmentId, SharedTag};

/// A detected violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceViolation {
    /// Two cores touched the same word outside a common segment.
    UnprotectedSharing {
        /// Word address.
        addr: u64,
        /// First core.
        a: usize,
        /// Second core.
        b: usize,
    },
    /// A shared-tagged access executed outside its wait/signal window.
    OutsideSegment {
        /// Core at fault.
        core: usize,
        /// The segment of the tag.
        seg: SegmentId,
    },
}

impl std::fmt::Display for RaceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceViolation::UnprotectedSharing { addr, a, b } => {
                write!(f, "cores {a} and {b} race on word {addr:#x}")
            }
            RaceViolation::OutsideSegment { core, seg } => {
                write!(f, "core {core} accessed {seg} data outside its window")
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct WordState {
    /// Core of the last conflicting toucher (writer, or reader awaiting a
    /// writer).
    core: usize,
    wrote: bool,
    seg: Option<SegmentId>,
}

/// Open-addressing hash map from word index to [`WordState`],
/// specialized for the detector's hot path: one probe per memory access,
/// no per-entry allocation, clearing keeps the table. Word indices are
/// byte addresses divided by 8, so `u64::MAX` is a safe empty sentinel.
#[derive(Debug)]
struct WordMap {
    keys: Vec<u64>,
    vals: Vec<WordState>,
    live: usize,
    mask: usize,
}

const EMPTY_KEY: u64 = u64::MAX;

impl WordMap {
    fn with_capacity_pow2(cap: usize) -> WordMap {
        debug_assert!(cap.is_power_of_two());
        WordMap {
            keys: vec![EMPTY_KEY; cap],
            vals: vec![
                WordState {
                    core: 0,
                    wrote: false,
                    seg: None,
                };
                cap
            ],
            live: 0,
            mask: cap - 1,
        }
    }

    /// Fibonacci multiplicative hash: cheap and well-distributed for the
    /// mostly-sequential addresses the workloads touch.
    fn slot_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & self.mask
    }

    /// Index of `key`'s slot, or of the empty slot where it belongs.
    fn probe(&self, key: u64) -> usize {
        let mut i = self.slot_of(key);
        loop {
            let k = self.keys[i];
            if k == key || k == EMPTY_KEY {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn get_mut(&mut self, key: u64) -> Option<&mut WordState> {
        let i = self.probe(key);
        (self.keys[i] == key).then(|| &mut self.vals[i])
    }

    fn insert(&mut self, key: u64, val: WordState) {
        if (self.live + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let i = self.probe(key);
        if self.keys[i] == EMPTY_KEY {
            self.live += 1;
        }
        self.keys[i] = key;
        self.vals[i] = val;
    }

    fn grow(&mut self) {
        let bigger = WordMap::with_capacity_pow2(self.keys.len() * 2);
        let old = std::mem::replace(self, bigger);
        for (k, v) in old.keys.into_iter().zip(old.vals) {
            if k != EMPTY_KEY {
                let i = self.probe(k);
                self.keys[i] = k;
                self.vals[i] = v;
                self.live += 1;
            }
        }
    }

    fn clear(&mut self) {
        self.keys.iter_mut().for_each(|k| *k = EMPTY_KEY);
        self.live = 0;
    }
}

impl Default for WordMap {
    fn default() -> Self {
        WordMap::with_capacity_pow2(1 << 12)
    }
}

/// The detector; reset per parallel loop.
#[derive(Debug, Default)]
pub struct RaceDetector {
    words: WordMap,
    /// Violations found (capped).
    pub violations: Vec<RaceViolation>,
}

const MAX_VIOLATIONS: usize = 16;

impl RaceDetector {
    /// Fresh detector.
    pub fn new() -> RaceDetector {
        RaceDetector::default()
    }

    /// Reset at parallel-loop entry.
    pub fn begin_loop(&mut self) {
        self.words.clear();
    }

    /// Rebuild as fresh, reusing a retired detector's word-map
    /// allocation. Observably identical to [`RaceDetector::new`].
    pub fn renew(mut self) -> RaceDetector {
        self.words.clear();
        self.violations.clear();
        self
    }

    fn push(&mut self, v: RaceViolation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        }
    }

    /// Observe an access during a parallel loop.
    ///
    /// `in_window` tells whether the access's segment (if tagged) is
    /// currently between its wait grant and its signal on this core.
    pub fn on_access(
        &mut self,
        core: usize,
        addr: u64,
        len: u32,
        is_store: bool,
        tag: Option<SharedTag>,
        in_window: bool,
    ) {
        if let Some(tag) = tag {
            if !in_window {
                self.push(RaceViolation::OutsideSegment { core, seg: tag.seg });
            }
        }
        let first = addr / 8;
        let last = (addr + len.max(1) as u64 - 1) / 8;
        for w in first..=last {
            let seg = tag.map(|t| t.seg);
            let mut violation = None;
            match self.words.get_mut(w) {
                None => {
                    self.words.insert(
                        w,
                        WordState {
                            core,
                            wrote: is_store,
                            seg,
                        },
                    );
                }
                Some(st) => {
                    let conflict = st.core != core && (st.wrote || is_store);
                    if conflict {
                        // Cross-core sharing: both sides must be in the
                        // same segment.
                        let protected = st.seg.is_some() && st.seg == seg;
                        if !protected {
                            violation = Some(RaceViolation::UnprotectedSharing {
                                addr: w * 8,
                                a: st.core,
                                b: core,
                            });
                        }
                    }
                    st.core = core;
                    st.wrote = is_store;
                    st.seg = seg;
                }
            }
            if let Some(v) = violation {
                self.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::TrafficClass;

    fn tag(seg: u32) -> Option<SharedTag> {
        Some(SharedTag {
            seg: SegmentId(seg),
            class: TrafficClass::MemoryCarried,
        })
    }

    #[test]
    fn private_per_core_data_is_fine() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, true, None, false);
        d.on_access(0, 0x100, 8, false, None, false);
        d.on_access(1, 0x200, 8, true, None, false);
        assert!(d.violations.is_empty());
    }

    #[test]
    fn unprotected_cross_core_write_detected() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, true, None, false);
        d.on_access(1, 0x100, 8, false, None, false);
        assert!(matches!(
            d.violations[0],
            RaceViolation::UnprotectedSharing { a: 0, b: 1, .. }
        ));
    }

    #[test]
    fn same_segment_sharing_allowed() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, true, tag(3), true);
        d.on_access(1, 0x100, 8, false, tag(3), true);
        d.on_access(1, 0x100, 8, true, tag(3), true);
        assert!(d.violations.is_empty());
    }

    #[test]
    fn different_segments_on_same_word_detected() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, true, tag(1), true);
        d.on_access(1, 0x100, 8, true, tag(2), true);
        assert!(!d.violations.is_empty());
    }

    #[test]
    fn tagged_access_outside_window_detected() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, true, tag(1), false);
        assert!(matches!(
            d.violations[0],
            RaceViolation::OutsideSegment { core: 0, .. }
        ));
    }

    #[test]
    fn read_read_sharing_is_fine() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, false, None, false);
        d.on_access(1, 0x100, 8, false, None, false);
        assert!(d.violations.is_empty());
    }

    #[test]
    fn reset_clears_history() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, true, None, false);
        d.begin_loop();
        d.on_access(1, 0x100, 8, true, None, false);
        assert!(d.violations.is_empty());
    }

    /// The open-addressing word table keeps state across growth.
    #[test]
    fn detector_scales_past_table_growth() {
        let mut d = RaceDetector::new();
        for k in 0..20_000u64 {
            d.on_access(0, 0x1000 + k * 8, 8, true, None, false);
        }
        assert!(d.violations.is_empty());
        // A second core touching the very first word must still conflict.
        d.on_access(1, 0x1000, 8, false, None, false);
        assert!(!d.violations.is_empty(), "early state lost during growth");
    }

    #[test]
    fn wide_access_covers_all_words() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 32, true, None, false); // words 0x20..0x24
        d.on_access(1, 0x118, 8, false, None, false); // inside the range
        assert!(!d.violations.is_empty());
    }
}
