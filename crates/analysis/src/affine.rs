//! Affine address forms relative to a loop counter.
//!
//! Part of the induction-variable analysis HCCv2 improved (paper §2.1):
//! when two accesses in a loop have addresses of the form
//! `base + a·counter + c` with the same symbolic base and coefficient,
//! their cross-iteration relationship is decidable — distance-0 pairs are
//! not loop-carried at all, and non-divisible offsets never collide.

use helix_ir::cfg::{Dominators, NaturalLoop};
use helix_ir::{AddrBase, AddrExpr, BinOp, Graph, Inst, InstSite, Operand, Reg, RegionId};
use std::collections::BTreeMap;

/// Symbolic base of an affine address form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinBase {
    /// A static region.
    Region(RegionId),
    /// A register that is loop-invariant (no definitions inside the
    /// loop); its runtime value is fixed for the whole invocation.
    InvariantReg(Reg),
}

/// An address expressed as `base + a·counter + c + Σ coeffᵢ·invᵢ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinForm {
    /// Symbolic base.
    pub base: LinBase,
    /// Coefficient of the loop counter.
    pub a: i64,
    /// Constant byte offset.
    pub c: i64,
    /// Loop-invariant register terms `(reg, coefficient)`, sorted by reg.
    pub inv: Vec<(Reg, i64)>,
}

impl LinForm {
    /// Whether two forms are directly comparable (same symbolic parts).
    pub fn comparable(&self, other: &LinForm) -> bool {
        self.base == other.base && self.a == other.a && self.inv == other.inv
    }
}

/// Helper that computes affine forms for addresses inside one loop.
#[derive(Debug)]
pub struct AffineCtx<'a> {
    graph: &'a Graph,
    lp: &'a NaturalLoop,
    dom: &'a Dominators,
    /// The loop counter (from `recognize_counted_loop`).
    counter: Reg,
    /// Unique in-loop definition site per register (None if 0 or 2+).
    unique_defs: BTreeMap<Reg, InstSite>,
}

/// A value expressed as `a·counter + c + Σ coeffᵢ·invᵢ` (no base).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ValForm {
    a: i64,
    c: i64,
    inv: Vec<(Reg, i64)>,
}

impl ValForm {
    fn constant(c: i64) -> ValForm {
        ValForm {
            a: 0,
            c,
            inv: Vec::new(),
        }
    }

    fn counter() -> ValForm {
        ValForm {
            a: 1,
            c: 0,
            inv: Vec::new(),
        }
    }

    fn invariant(r: Reg) -> ValForm {
        ValForm {
            a: 0,
            c: 0,
            inv: vec![(r, 1)],
        }
    }

    fn add(&self, other: &ValForm, sign: i64) -> ValForm {
        let mut inv: BTreeMap<Reg, i64> = self.inv.iter().copied().collect();
        for (r, k) in &other.inv {
            *inv.entry(*r).or_insert(0) += k * sign;
        }
        ValForm {
            a: self.a + sign * other.a,
            c: self.c + sign * other.c,
            inv: inv.into_iter().filter(|(_, k)| *k != 0).collect(),
        }
    }

    fn scale(&self, k: i64) -> ValForm {
        ValForm {
            a: self.a * k,
            c: self.c * k,
            inv: self.inv.iter().map(|(r, c)| (*r, c * k)).collect(),
        }
    }
}

impl<'a> AffineCtx<'a> {
    /// Build an affine context for `lp` with the given counter register.
    pub fn new(
        graph: &'a Graph,
        lp: &'a NaturalLoop,
        dom: &'a Dominators,
        counter: Reg,
    ) -> AffineCtx<'a> {
        let mut def_count: BTreeMap<Reg, Vec<InstSite>> = BTreeMap::new();
        for &b in &lp.blocks {
            for (idx, inst) in graph.block(b).insts.iter().enumerate() {
                if let Some(d) = inst.def() {
                    def_count.entry(d).or_default().push(InstSite {
                        block: b,
                        index: idx,
                    });
                }
            }
        }
        let unique_defs = def_count
            .into_iter()
            .filter_map(|(r, sites)| {
                if sites.len() == 1 {
                    Some((r, sites[0]))
                } else {
                    None
                }
            })
            .collect();
        AffineCtx {
            graph,
            lp,
            dom,
            counter,
            unique_defs,
        }
    }

    fn is_invariant(&self, r: Reg) -> bool {
        for &b in &self.lp.blocks {
            for inst in &self.graph.block(b).insts {
                if inst.def() == Some(r) {
                    return false;
                }
            }
        }
        true
    }

    /// Affine form of a register's value at `site`, if derivable.
    fn val_form(&self, r: Reg, site: InstSite, depth: u32) -> Option<ValForm> {
        if depth > 8 {
            return None;
        }
        if r == self.counter {
            return Some(ValForm::counter());
        }
        if self.is_invariant(r) {
            return Some(ValForm::invariant(r));
        }
        // Unique in-loop def that dominates the use site (or precedes it
        // in the same block).
        let def = *self.unique_defs.get(&r)?;
        let dominates = if def.block == site.block {
            def.index < site.index
        } else {
            self.dom.dominates(def.block, site.block)
        };
        if !dominates {
            return None;
        }
        let inst = &self.graph.block(def.block).insts[def.index];
        match inst {
            Inst::Const { value, .. } => Some(ValForm::constant(value.as_int())),
            Inst::Bin { op, lhs, rhs, .. } => {
                let lf = self.op_form(*lhs, def, depth + 1)?;
                let rf = self.op_form(*rhs, def, depth + 1)?;
                match op {
                    BinOp::Add => Some(lf.add(&rf, 1)),
                    BinOp::Sub => Some(lf.add(&rf, -1)),
                    BinOp::Mul => {
                        // One side must be a pure constant.
                        if rf.a == 0 && rf.inv.is_empty() {
                            Some(lf.scale(rf.c))
                        } else if lf.a == 0 && lf.inv.is_empty() {
                            Some(rf.scale(lf.c))
                        } else {
                            None
                        }
                    }
                    BinOp::Shl => {
                        if rf.a == 0 && rf.inv.is_empty() && (0..=16).contains(&rf.c) {
                            Some(lf.scale(1 << rf.c))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn op_form(&self, op: Operand, site: InstSite, depth: u32) -> Option<ValForm> {
        match op {
            Operand::Imm(v) => Some(ValForm::constant(v.as_int())),
            Operand::Reg(r) => self.val_form(r, site, depth),
        }
    }

    /// Affine form of an address expression at `site`, if derivable.
    pub fn addr_form(&self, addr: &AddrExpr, site: InstSite) -> Option<LinForm> {
        let base = match addr.base {
            AddrBase::Region(r) => LinBase::Region(r),
            AddrBase::Reg(r) => {
                if self.is_invariant(r) {
                    LinBase::InvariantReg(r)
                } else {
                    return None;
                }
            }
        };
        let mut form = ValForm::constant(addr.offset);
        if let Some((idx, scale)) = addr.index {
            let f = self.val_form(idx, site, 0)?;
            form = form.add(&f.scale(scale), 1);
        }
        Some(LinForm {
            base,
            a: form.a,
            c: form.c,
            inv: form.inv,
        })
    }
}

/// Cross-iteration relationship between two affine accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AffineRelation {
    /// The addresses can only coincide within the same iteration.
    SameIterationOnly,
    /// The addresses never coincide.
    NeverEqual,
    /// The addresses coincide across iterations (a real loop-carried
    /// relationship, with the given iteration distance in counter steps).
    CarriedDistance(i64),
    /// The same address is touched every iteration (loop-invariant
    /// address).
    EveryIteration,
}

/// Decide the relationship of two comparable affine forms.
///
/// Returns `None` if the forms are not comparable (different symbolic
/// parts), in which case the caller must stay conservative.
pub fn relate(a: &LinForm, b: &LinForm, counter_step: i64) -> Option<AffineRelation> {
    if a.base != b.base || a.inv != b.inv {
        return None;
    }
    if a.a != b.a {
        // Different counter coefficients: solving a.a*k1 + a.c = b.a*k2 +
        // b.c over unknown iterations is beyond this model; give up.
        return None;
    }
    let coeff = a.a;
    let dc = b.c - a.c;
    if coeff == 0 {
        return Some(if dc == 0 {
            AffineRelation::EveryIteration
        } else {
            AffineRelation::NeverEqual
        });
    }
    // Counter advances by `counter_step` per iteration; per-iteration
    // address stride is coeff * counter_step.
    let stride = coeff * counter_step;
    if stride == 0 {
        return None;
    }
    if dc == 0 {
        return Some(AffineRelation::SameIterationOnly);
    }
    if dc % stride == 0 {
        Some(AffineRelation::CarriedDistance(dc / stride))
    } else {
        Some(AffineRelation::NeverEqual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::cfg::{recognize_counted_loop, LoopForest};
    use helix_ir::{Program, ProgramBuilder, Ty};

    fn setup(p: &Program) -> (NaturalLoop, Dominators, Reg) {
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest.loops[0].lp.clone();
        let dom = Dominators::compute(&p.graph, p.graph.entry);
        let counted = recognize_counted_loop(&p.graph, &lp).expect("counted");
        (lp, dom, counted.counter)
    }

    #[test]
    fn direct_counter_index_is_affine() {
        let mut b = ProgramBuilder::new("t");
        let r = b.region("a", 1024, Ty::I64);
        let mut addr = None;
        let mut site = None;
        b.counted_loop(0, 100, 1, |b, i| {
            let x = b.reg();
            let a = AddrExpr::region_indexed(r, i, 8, 16);
            site = Some(InstSite {
                block: b.current_block(),
                index: 0,
            });
            b.load(x, a, Ty::I64);
            addr = Some(a);
        });
        let p = b.finish();
        let (lp, dom, counter) = setup(&p);
        let ctx = AffineCtx::new(&p.graph, &lp, &dom, counter);
        let form = ctx.addr_form(&addr.unwrap(), site.unwrap()).unwrap();
        assert_eq!(form.a, 8);
        assert_eq!(form.c, 16);
    }

    #[test]
    fn derived_index_is_affine() {
        let mut b = ProgramBuilder::new("t");
        let r = b.region("a", 8192, Ty::I64);
        let mut addr = None;
        let mut site = None;
        b.counted_loop(0, 100, 1, |b, i| {
            let j = b.reg();
            b.bin(j, BinOp::Mul, i, 4i64); // j = 4i
            let a = AddrExpr::region_indexed(r, j, 8, 0); // addr = 32i
            site = Some(InstSite {
                block: b.current_block(),
                index: 1,
            });
            let x = b.reg();
            b.load(x, a, Ty::I64);
            addr = Some(a);
        });
        let p = b.finish();
        let (lp, dom, counter) = setup(&p);
        let ctx = AffineCtx::new(&p.graph, &lp, &dom, counter);
        let form = ctx.addr_form(&addr.unwrap(), site.unwrap()).unwrap();
        assert_eq!(form.a, 32);
        assert_eq!(form.c, 0);
    }

    #[test]
    fn relate_same_iteration_only() {
        let f = |c: i64| LinForm {
            base: LinBase::Region(RegionId(0)),
            a: 8,
            c,
            inv: vec![],
        };
        assert_eq!(
            relate(&f(0), &f(0), 1),
            Some(AffineRelation::SameIterationOnly)
        );
        assert_eq!(
            relate(&f(0), &f(8), 1),
            Some(AffineRelation::CarriedDistance(1))
        );
        assert_eq!(relate(&f(0), &f(4), 1), Some(AffineRelation::NeverEqual));
    }

    #[test]
    fn relate_invariant_address() {
        let f = |c: i64| LinForm {
            base: LinBase::Region(RegionId(0)),
            a: 0,
            c,
            inv: vec![],
        };
        assert_eq!(
            relate(&f(0), &f(0), 1),
            Some(AffineRelation::EveryIteration)
        );
        assert_eq!(relate(&f(0), &f(8), 1), Some(AffineRelation::NeverEqual));
    }

    #[test]
    fn incomparable_forms_yield_none() {
        let a = LinForm {
            base: LinBase::Region(RegionId(0)),
            a: 8,
            c: 0,
            inv: vec![],
        };
        let b = LinForm {
            base: LinBase::Region(RegionId(1)),
            a: 8,
            c: 0,
            inv: vec![],
        };
        assert_eq!(relate(&a, &b, 1), None);
    }

    #[test]
    fn loop_variant_non_affine_index_fails() {
        let mut b = ProgramBuilder::new("t");
        let r = b.region("a", 8192, Ty::I64);
        let mut addr = None;
        let mut site = None;
        b.counted_loop(0, 100, 1, |b, i| {
            let j = b.reg();
            b.bin(j, BinOp::Mul, i, i); // j = i*i: not affine
            let a = AddrExpr::region_indexed(r, j, 8, 0);
            site = Some(InstSite {
                block: b.current_block(),
                index: 1,
            });
            let x = b.reg();
            b.load(x, a, Ty::I64);
            addr = Some(a);
        });
        let p = b.finish();
        let (lp, dom, counter) = setup(&p);
        let ctx = AffineCtx::new(&p.graph, &lp, &dom, counter);
        assert!(ctx.addr_form(&addr.unwrap(), site.unwrap()).is_none());
    }
}
