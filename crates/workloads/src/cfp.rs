//! Synthetic stand-ins for the four SPEC CFP2000 benchmarks.
//!
//! Numerical programs parallelize with compiler work alone once the
//! analysis is strong enough (paper §2.1): the hot loops here are
//! in-place array updates whose independence requires the affine
//! induction reasoning HCCv2 added — HCCv1's baseline analysis reports a
//! false self-dependence and skips them, reproducing the Fig. 1 gap.
//!
//! Floating-point values are kept exactly representable (small-integer
//! arithmetic in `f64`) so parallel reduction re-association cannot
//! change results and equivalence tests stay bit-exact.

use crate::common::{doall_phase, fill_hash, Scale};
use helix_ir::{AddrExpr, BinOp, Operand, Program, ProgramBuilder, Ty, UnOp};

/// 183.equake — seismic wave propagation (sparse element kernels).
///
/// The hot loop is invoked once per element from a long serial driver
/// and has a *very low trip count*, so idle cores dominate its overhead
/// (87.7% in the paper) while still reaching ~10×.
pub fn equake(scale: Scale) -> Program {
    let elements = scale.n(60);
    let trip = 48i64;
    let mut b = ProgramBuilder::new("183.equake");
    let disp = b.region("disp", (trip as u64 + 1) * 8, Ty::F64);
    let vel = b.region("vel", (trip as u64 + 1) * 8, Ty::F64);
    let raw = b.region("raw", (elements as u64 + 1) * 8, Ty::I64);
    let smoothed = b.region("smoothed", (elements as u64 + 1) * 8, Ty::I64);
    fill_hash(&mut b, raw, elements, 61);
    // Coarse phase: HCCv1-visible coverage.
    doall_phase(&mut b, raw, smoothed, elements, 30);
    // Initialize the element state.
    b.counted_loop(0, trip, 1, |b, i| {
        let f = b.reg();
        b.un(f, UnOp::IntToF, i);
        b.store(f, AddrExpr::region_indexed(disp, i, 8, 0), Ty::F64);
        b.store(f, AddrExpr::region_indexed(vel, i, 8, 0), Ty::F64);
    });
    // Serial element driver with the small hot kernel inside.
    let phase = b.reg();
    b.const_i(phase, 3);
    b.counted_loop(0, elements, 1, |b, e| {
        // Element bookkeeping chain (keeps the outer loop serial).
        b.bin(phase, BinOp::Mul, phase, 31i64);
        b.bin(phase, BinOp::Xor, phase, e);
        // Hot kernel: disp[i] += vel[i] * 2 (in-place; needs affine
        // analysis to prove independent).
        b.counted_loop(0, trip, 1, |b, i| {
            let [d, v] = b.regs();
            b.load(d, AddrExpr::region_indexed(disp, i, 8, 0), Ty::F64);
            b.load(v, AddrExpr::region_indexed(vel, i, 8, 0), Ty::F64);
            b.bin(v, BinOp::FMul, v, Operand::fimm(2.0));
            b.bin(d, BinOp::FAdd, d, v);
            // Library math call: free under lib-call semantics, a world
            // clobber for HCCv1's baseline analysis (Fig. 1's FP gap).
            let s = b.reg();
            b.call(
                Some(s),
                helix_ir::Intrinsic::SinApprox,
                vec![Operand::Reg(d)],
            );
            b.bin(d, BinOp::FAdd, d, s);
            let t = b.reg();
            b.bin(t, BinOp::FMul, d, Operand::fimm(0.5));
            b.store(t, AddrExpr::region_indexed(disp, i, 8, 0), Ty::F64);
        });
    });
    b.finish()
}

/// 179.art — adaptive resonance image matching.
///
/// Streaming in-place f64 updates plus an `FMax` match reduction
/// (order-independent, so privatization is exact). Memory-dominated.
pub fn art(scale: Scale) -> Program {
    let n = scale.n(700);
    let mut b = ProgramBuilder::new("179.art");
    let f1 = b.region("f1_layer", (n as u64 + 1) * 8, Ty::F64);
    let raw = b.region("raw", (n as u64 + 1) * 8, Ty::I64);
    let pre = b.region("pre", (n as u64 + 1) * 8, Ty::I64);
    let out = b.region("out", 64, Ty::F64);
    fill_hash(&mut b, raw, n, 67);
    doall_phase(&mut b, raw, pre, n, 34);
    // Initialize f1 from the preprocessed integers.
    b.counted_loop(0, n, 1, |b, i| {
        let [x, f] = b.regs();
        b.load(x, AddrExpr::region_indexed(pre, i, 8, 0), Ty::I64);
        b.bin(x, BinOp::And, x, 1023i64);
        b.un(f, UnOp::IntToF, x);
        b.store(f, AddrExpr::region_indexed(f1, i, 8, 0), Ty::F64);
    });
    // Hot loop: normalize in place and find the best match.
    let best = b.reg();
    b.const_f(best, f64::NEG_INFINITY);
    b.counted_loop(0, n, 1, |b, i| {
        let v = b.reg();
        b.load(v, AddrExpr::region_indexed(f1, i, 8, 0), Ty::F64);
        b.bin(v, BinOp::FMul, v, Operand::fimm(0.25));
        b.bin(v, BinOp::FAdd, v, Operand::fimm(1.0));
        let s = b.reg();
        b.call(
            Some(s),
            helix_ir::Intrinsic::SinApprox,
            vec![Operand::Reg(v)],
        );
        let w = b.reg();
        b.bin(w, BinOp::FMul, v, v);
        b.bin(w, BinOp::FAdd, w, s);
        b.store(w, AddrExpr::region_indexed(f1, i, 8, 0), Ty::F64);
        b.bin(best, BinOp::FMax, best, w);
    });
    b.store(best, AddrExpr::region(out, 0), Ty::F64);
    b.finish()
}

/// 188.ammp — molecular dynamics force loops.
///
/// Long iterations with second-order induction indexing (triangular
/// pair enumeration): the re-computation prologue is sizeable, so
/// "additional instructions" dominate its overhead (64% in the paper)
/// while the speedup stays high.
pub fn ammp(scale: Scale) -> Program {
    let n = scale.n(420);
    let mut b = ProgramBuilder::new("188.ammp");
    let atoms = b.region("atoms", (2 * n as u64 + 8) * 8, Ty::F64);
    let forces = b.region("forces", (n as u64 + 8) * 8, Ty::F64);
    let raw = b.region("raw", (n as u64 + 1) * 8, Ty::I64);
    let neighbors = b.region("neighbors", (n as u64 + 1) * 8, Ty::I64);
    fill_hash(&mut b, raw, n, 71);
    doall_phase(&mut b, raw, neighbors, n, 28);
    // Initialize coordinates.
    b.counted_loop(0, 2 * n, 1, |b, i| {
        let f = b.reg();
        b.un(f, UnOp::IntToF, i);
        b.store(f, AddrExpr::region_indexed(atoms, i, 8, 0), Ty::F64);
    });
    // Hot loop with a triangular (second-order) index.
    let [tri, stepv] = b.regs();
    b.const_i(tri, 0);
    b.const_i(stepv, 0);
    b.counted_loop(0, n, 1, |b, i| {
        // tri = 0,0,1,3,6,... (poly2); step = 0,1,2,...
        b.bin(tri, BinOp::Add, tri, stepv);
        b.bin(stepv, BinOp::Add, stepv, 1i64);
        let j = b.reg();
        b.bin(j, BinOp::And, tri, 2 * (n - 1));
        let [x, y] = b.regs();
        b.load(x, AddrExpr::region_indexed(atoms, i, 8, 0), Ty::F64);
        b.load(y, AddrExpr::region_indexed(atoms, j, 8, 8), Ty::F64);
        b.bin(x, BinOp::FAdd, x, y);
        let s = b.reg();
        b.call(
            Some(s),
            helix_ir::Intrinsic::SinApprox,
            vec![Operand::Reg(x)],
        );
        b.bin(x, BinOp::FAdd, x, s);
        b.bin(x, BinOp::FMul, x, Operand::fimm(0.5));
        b.store(x, AddrExpr::region_indexed(forces, i, 8, 0), Ty::F64);
        b.alu_chain(j, 18);
    });
    b.finish()
}

/// 177.mesa — span rasterization.
///
/// In-place pixel operations where one span in sixteen takes the slow
/// path (texture-like work), so round-robin distribution leaves cores
/// waiting at the barrier: iteration imbalance dominates (58% in the
/// paper) at the suite's highest speedup.
pub fn mesa(scale: Scale) -> Program {
    let n = scale.n(900);
    let mut b = ProgramBuilder::new("177.mesa");
    let frame = b.region("frame", (n as u64 + 1) * 8, Ty::F64);
    let raw = b.region("raw", (n as u64 + 1) * 8, Ty::I64);
    let zbuf = b.region("zbuf", (n as u64 + 1) * 8, Ty::I64);
    fill_hash(&mut b, raw, n, 73);
    doall_phase(&mut b, raw, zbuf, n, 26);
    b.counted_loop(0, n, 1, |b, i| {
        let z = b.reg();
        b.load(z, AddrExpr::region_indexed(zbuf, i, 8, 0), Ty::I64);
        let f = b.reg();
        b.un(f, UnOp::IntToF, z);
        let heavy = b.reg();
        b.bin(heavy, BinOp::And, i, 15i64);
        let is_heavy = b.reg();
        b.bin(is_heavy, BinOp::CmpLt, heavy, 1i64);
        b.if_else(
            is_heavy,
            |b| {
                // Slow path: texture filtering chain.
                let acc = b.reg();
                b.copy(acc, 0i64);
                b.alu_chain(acc, 70);
                let g = b.reg();
                b.un(g, UnOp::IntToF, acc);
                b.bin(g, BinOp::FAdd, g, f);
                b.store(g, AddrExpr::region_indexed(frame, i, 8, 0), Ty::F64);
            },
            |b| {
                let s = b.reg();
                b.call(
                    Some(s),
                    helix_ir::Intrinsic::SinApprox,
                    vec![Operand::Reg(f)],
                );
                b.bin(f, BinOp::FMul, f, Operand::fimm(0.125));
                b.bin(f, BinOp::FAdd, f, s);
                b.store(f, AddrExpr::region_indexed(frame, i, 8, 0), Ty::F64);
            },
        );
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::interp::{run_to_completion, Env};

    #[test]
    fn all_cfp_programs_validate_and_run() {
        for p in [
            equake(Scale::Test),
            art(Scale::Test),
            ammp(Scale::Test),
            mesa(Scale::Test),
        ] {
            assert!(p.validate().is_ok(), "{}", p.name);
            let mut env = Env::for_program(&p);
            let t = run_to_completion(&p, &mut env).expect(&p.name);
            assert!(
                t.dyn_insts > 10_000,
                "{} too small: {}",
                p.name,
                t.dyn_insts
            );
        }
    }

    #[test]
    fn art_best_match_is_finite() {
        let p = art(Scale::Test);
        let mut env = Env::for_program(&p);
        run_to_completion(&p, &mut env).unwrap();
        // out region is the last-declared region before fills; find by
        // scanning program regions.
        let out_idx = p.regions.iter().position(|r| r.name == "out").unwrap();
        let base = env.mem.base_of(helix_ir::RegionId(out_idx as u32));
        let v = env.mem.load(base, Ty::F64).unwrap().as_float();
        assert!(v.is_finite() && v > 0.0);
    }
}
