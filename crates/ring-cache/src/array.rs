//! Per-node set-associative cache array with single-word lines.
//!
//! The line size is one machine word so independent shared values never
//! falsely share a line (paper §5.1). LRU replacement; an unbounded mode
//! backs the "Unbounded" point of the Fig. 11d sweep.

use crate::config::ArrayConfig;
use std::collections::BTreeMap;

/// One resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
    lru: u64,
}

/// Result of inserting a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insert {
    /// Inserted without displacing anything (or refreshed an existing
    /// line).
    Clean,
    /// A line was evicted; `dirty` says whether it needs write-back.
    Evicted {
        /// Address of the evicted line.
        addr: u64,
        /// Whether the evicted line was dirty.
        dirty: bool,
    },
}

/// The cache array of one ring node.
#[derive(Debug, Clone)]
pub struct CacheArray {
    cfg: ArrayConfig,
    /// Bounded mode: `sets[s]` holds up to `assoc` lines.
    sets: Vec<Vec<Line>>,
    /// Unbounded mode.
    unbounded: BTreeMap<u64, bool /* dirty */>,
    clock: u64,
}

impl CacheArray {
    /// An empty array with the given geometry.
    pub fn new(cfg: ArrayConfig) -> CacheArray {
        CacheArray {
            sets: vec![Vec::new(); cfg.sets()],
            unbounded: BTreeMap::new(),
            clock: 0,
            cfg,
        }
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr / self.cfg.line * self.cfg.line
    }

    fn set_of(&self, line_addr: u64) -> usize {
        ((line_addr / self.cfg.line) as usize) % self.sets.len().max(1)
    }

    /// Whether the line holding `addr` is resident (refreshes LRU).
    pub fn probe(&mut self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        self.clock += 1;
        if self.cfg.capacity.is_none() {
            return self.unbounded.contains_key(&la);
        }
        let clock = self.clock;
        let set = self.set_of(la);
        match self.sets[set].iter_mut().find(|l| l.tag == la) {
            Some(line) => {
                line.lru = clock;
                true
            }
            None => false,
        }
    }

    /// Whether the line is resident, without touching LRU state.
    pub fn contains(&self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        if self.cfg.capacity.is_none() {
            return self.unbounded.contains_key(&la);
        }
        self.sets[self.set_of(la)].iter().any(|l| l.tag == la)
    }

    /// Insert (or refresh) the line holding `addr`; `dirty` marks it as
    /// needing write-back on eviction.
    pub fn insert(&mut self, addr: u64, dirty: bool) -> Insert {
        let la = self.line_addr(addr);
        self.clock += 1;
        if self.cfg.capacity.is_none() {
            let e = self.unbounded.entry(la).or_insert(false);
            *e |= dirty;
            return Insert::Clean;
        }
        let clock = self.clock;
        let set = self.set_of(la);
        let assoc = self.cfg.assoc;
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|l| l.tag == la) {
            line.lru = clock;
            line.dirty |= dirty;
            return Insert::Clean;
        }
        if lines.len() < assoc {
            lines.push(Line {
                tag: la,
                dirty,
                lru: clock,
            });
            return Insert::Clean;
        }
        // Evict LRU.
        let victim_idx = lines
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            .expect("set is full, hence nonempty");
        let victim = lines[victim_idx];
        lines[victim_idx] = Line {
            tag: la,
            dirty,
            lru: clock,
        };
        Insert::Evicted {
            addr: victim.tag,
            dirty: victim.dirty,
        }
    }

    /// Mark the resident line dirty (no-op when absent).
    pub fn mark_dirty(&mut self, addr: u64) {
        let la = self.line_addr(addr);
        if self.cfg.capacity.is_none() {
            if let Some(d) = self.unbounded.get_mut(&la) {
                *d = true;
            }
            return;
        }
        let set = self.set_of(la);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.tag == la) {
            line.dirty = true;
        }
    }

    /// Number of dirty resident lines.
    pub fn dirty_count(&self) -> usize {
        if self.cfg.capacity.is_none() {
            return self.unbounded.values().filter(|d| **d).count();
        }
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|l| l.dirty)
            .count()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        if self.cfg.capacity.is_none() {
            return self.unbounded.len();
        }
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything (the end-of-loop flush, after write-backs are
    /// accounted for).
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.unbounded.clear();
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 4 lines total: 2 sets x 2 ways, 8-byte lines.
        CacheArray::new(ArrayConfig {
            capacity: Some(32),
            assoc: 2,
            line: 8,
        })
    }

    #[test]
    fn insert_then_probe_hits() {
        let mut a = tiny();
        assert!(!a.probe(0x100));
        a.insert(0x100, false);
        assert!(a.probe(0x100));
        assert!(a.contains(0x104), "same word line");
        assert!(!a.contains(0x108), "next word is a different line");
    }

    #[test]
    fn lru_eviction_order() {
        let mut a = tiny();
        // Set index = (addr/8) % 2: keep everything in set 0.
        a.insert(0x00, false); // line 0
        a.insert(0x10, false); // line 2 -> set 0
        a.probe(0x00); // refresh line 0
        match a.insert(0x20, true) {
            Insert::Evicted { addr, dirty } => {
                assert_eq!(addr, 0x10, "LRU victim");
                assert!(!dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(a.contains(0x00));
        assert!(a.contains(0x20));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut a = tiny();
        a.insert(0x00, true);
        a.insert(0x10, false);
        match a.insert(0x20, false) {
            Insert::Evicted { addr, dirty } => {
                assert_eq!(addr, 0x00);
                assert!(dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn mark_dirty_and_count() {
        let mut a = tiny();
        a.insert(0x00, false);
        assert_eq!(a.dirty_count(), 0);
        a.mark_dirty(0x00);
        assert_eq!(a.dirty_count(), 1);
        a.clear();
        assert_eq!(a.len(), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut a = CacheArray::new(ArrayConfig {
            capacity: None,
            assoc: 8,
            line: 8,
        });
        for i in 0..10_000u64 {
            assert_eq!(a.insert(i * 8, i % 2 == 0), Insert::Clean);
        }
        assert_eq!(a.len(), 10_000);
        assert!(a.contains(0));
        assert!(a.contains(9_999 * 8));
    }

    #[test]
    fn wider_lines_share_residency() {
        let mut a = CacheArray::new(ArrayConfig {
            capacity: Some(256),
            assoc: 2,
            line: 64,
        });
        a.insert(0x40, false);
        assert!(a.contains(0x78), "same 64B line");
        assert!(!a.contains(0x80));
    }
}
