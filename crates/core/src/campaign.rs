//! Campaign execution: run a declarative [`CampaignSpec`] — one config
//! file naming a set of scenario specs plus a machine/compiler grid —
//! and aggregate every cell into a single [`CampaignReport`].
//!
//! Each grid cell (scenario × experiment × core count) lowers onto the
//! corresponding [`crate::experiment`] function, cells execute in
//! parallel via rayon, and aggregation is stable-ordered: cells are
//! enumerated deterministically up front and results are collected
//! positionally, so the report never depends on thread timing. Nothing
//! wall-clock-dependent enters the report, which makes it byte-identical
//! across runs of the same campaign + seed — the property the
//! per-scenario CI speedup gate and the determinism tests rely on.

use crate::experiment::{
    compiler_generations, coupled_vs_ring, decoupling_lattice, link_latency_settings,
    node_memory_settings, overhead_breakdown, signal_bandwidth_settings, sweep_core_count,
    sweep_ring, ExpError, FUEL,
};
use crate::report::json_escape as esc;
use crate::scenario::nest_rows;
use helix_hcc::{compile, HccConfig};
use helix_workloads::spec::CompilerGen;
use helix_workloads::{
    geomean, workload_from_spec, CampaignExperiment, CampaignSpec, ScenarioSpec, Workload,
};
use rayon::prelude::*;
use std::fmt::Write as _;
use std::path::Path;

/// One aggregated grid cell: a scenario measured by one experiment at
/// one core count. Headline fields are `Some` when the experiment
/// produces them; `points` always carries the experiment's full set of
/// labelled measurements in a stable order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Scenario name.
    pub scenario: String,
    /// `"int"` or `"fp"`.
    pub kind: String,
    /// Experiment name (see [`CampaignExperiment::render`]).
    pub experiment: String,
    /// Core count of this cell (the largest swept count for
    /// `core_sweep`).
    pub cores: usize,
    /// HELIX-RC speedup over the sequential baseline.
    pub helix_speedup: Option<f64>,
    /// Published speedup, when the paper measured this scenario.
    pub paper_speedup: Option<f64>,
    /// Sequential baseline cycles.
    pub seq_cycles: Option<u64>,
    /// HELIX-RC run cycles.
    pub helix_cycles: Option<u64>,
    /// Fraction of ring-run busy cycles spent communicating.
    pub comm_frac: Option<f64>,
    /// Fig. 12 overhead fractions.
    pub overheads: Option<[f64; 7]>,
    /// All labelled measurements of the experiment, in its native order.
    pub points: Vec<(String, f64)>,
}

/// One nest's contribution to a [`DerivedRow`].
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedNestRow {
    /// Nest name.
    pub name: String,
    /// In-context fraction of sequential cycles spent in the nest.
    pub weight: f64,
    /// In-context fraction spent in the glue preceding the nest.
    pub glue_weight: f64,
    /// Compiler coverage inside the isolated nest.
    pub coverage: f64,
    /// Fraction of the *whole program's* profiled execution covered by
    /// parallelized loops inside this nest's block boundary (mapped via
    /// the generation-time [`NestBoundary`](helix_workloads::NestBoundary)).
    pub program_coverage: f64,
    /// Parallelized loops inside the nest.
    pub plans: usize,
    /// Isolated-nest HELIX-RC speedup.
    pub speedup: f64,
}

/// Cross-scenario *derived* metrics for one scenario: how the measured
/// HELIX-RC speedup relates to the coverage the compiler achieved —
/// the speedup-vs-coverage axis the paper's Table 1 / Fig. 7 pairing
/// implies — plus the per-nest breakdown for multi-nest scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedRow {
    /// Scenario name.
    pub scenario: String,
    /// `"int"` or `"fp"`.
    pub kind: String,
    /// Core count the derivation ran at.
    pub cores: usize,
    /// Parallel-loop coverage achieved by HCCv3 on the whole program.
    pub coverage: f64,
    /// Measured HELIX-RC speedup (from the `generations` row).
    pub speedup: f64,
    /// Amdahl-style coverage-limited bound at this core count:
    /// `1 / ((1 - c) + c / cores)`.
    pub amdahl_bound: f64,
    /// Fraction of the bound the measured speedup attains.
    pub bound_frac: f64,
    /// Per-nest rows (empty for single-pipeline scenarios).
    pub nests: Vec<DerivedNestRow>,
}

/// The aggregated result of one campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Campaign description.
    pub description: String,
    /// `"Test"` or `"Full"`.
    pub scale: String,
    /// Seed offset the campaign applied to every scenario.
    pub seed: i64,
    /// Scenario names, sorted (the sweep's row universe).
    pub scenarios: Vec<String>,
    /// One row per grid cell, grouped by experiment then cores then
    /// scenario.
    pub rows: Vec<CampaignRow>,
    /// Derived speedup-vs-coverage metrics, one row per scenario
    /// (present when the campaign ran the `generations` experiment).
    pub derived: Vec<DerivedRow>,
}

impl CampaignReport {
    /// Per-scenario headline HELIX-RC speedups, from the first
    /// `generations` row of each scenario. This is the series the CI
    /// per-scenario regression gate compares against its committed
    /// baseline.
    pub fn helix_speedups(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = Vec::new();
        for row in &self.rows {
            if row.experiment == "generations" && !out.iter().any(|(n, _)| *n == row.scenario) {
                if let Some(s) = row.helix_speedup {
                    out.push((row.scenario.clone(), s));
                }
            }
        }
        out
    }

    /// Render as a deterministic JSON document (no wall-clock fields:
    /// two runs of the same campaign + seed are byte-identical).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"harness\": \"campaign\",");
        let _ = writeln!(out, "  \"name\": \"{}\",", esc(&self.name));
        let _ = writeln!(out, "  \"description\": \"{}\",", esc(&self.description));
        let _ = writeln!(out, "  \"scale\": \"{}\",", esc(&self.scale));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let names: Vec<String> = self
            .scenarios
            .iter()
            .map(|n| format!("\"{}\"", esc(n)))
            .collect();
        let _ = writeln!(out, "  \"scenarios\": [{}],", names.join(", "));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"scenario\": \"{}\", \"kind\": \"{}\", \"experiment\": \"{}\", \
                 \"cores\": {}",
                esc(&row.scenario),
                esc(&row.kind),
                esc(&row.experiment),
                row.cores
            );
            if let Some(s) = row.helix_speedup {
                let _ = write!(out, ", \"helix_speedup\": {s:.4}");
            }
            if let Some(s) = row.paper_speedup {
                let _ = write!(out, ", \"paper_speedup\": {s:.4}");
            }
            if let Some(c) = row.seq_cycles {
                let _ = write!(out, ", \"seq_cycles\": {c}");
            }
            if let Some(c) = row.helix_cycles {
                let _ = write!(out, ", \"helix_cycles\": {c}");
            }
            if let Some(f) = row.comm_frac {
                let _ = write!(out, ", \"comm_frac\": {f:.4}");
            }
            if let Some(o) = row.overheads {
                let cells: Vec<String> = o.iter().map(|v| format!("{v:.4}")).collect();
                let _ = write!(out, ", \"overheads\": [{}]", cells.join(", "));
            }
            let points: Vec<String> = row
                .points
                .iter()
                .map(|(label, value)| {
                    format!("{{\"label\": \"{}\", \"value\": {value:.4}}}", esc(label))
                })
                .collect();
            let _ = write!(out, ", \"points\": [{}]}}", points.join(", "));
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]");
        if !self.derived.is_empty() {
            out.push_str(",\n  \"derived\": [\n");
            for (i, d) in self.derived.iter().enumerate() {
                let _ = write!(
                    out,
                    "    {{\"scenario\": \"{}\", \"kind\": \"{}\", \"cores\": {}, \
                     \"coverage\": {:.4}, \"speedup\": {:.4}, \"amdahl_bound\": {:.4}, \
                     \"bound_frac\": {:.4}",
                    esc(&d.scenario),
                    esc(&d.kind),
                    d.cores,
                    d.coverage,
                    d.speedup,
                    d.amdahl_bound,
                    d.bound_frac
                );
                if !d.nests.is_empty() {
                    let nests: Vec<String> = d
                        .nests
                        .iter()
                        .map(|nest| {
                            format!(
                                "{{\"name\": \"{}\", \"weight\": {:.4}, \"glue_weight\": {:.4}, \
                                 \"coverage\": {:.4}, \"program_coverage\": {:.4}, \
                                 \"plans\": {}, \"speedup\": {:.4}}}",
                                esc(&nest.name),
                                nest.weight,
                                nest.glue_weight,
                                nest.coverage,
                                nest.program_coverage,
                                nest.plans,
                                nest.speedup
                            )
                        })
                        .collect();
                    let _ = write!(out, ", \"nests\": [{}]", nests.join(", "));
                }
                out.push('}');
                out.push_str(if i + 1 < self.derived.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  ]");
        }
        out.push_str("\n}\n");
        out
    }

    /// Render paper-style text tables: one table per (experiment, core
    /// count) group, with INT/FP geomean rows where speedups are
    /// comparable across scenarios.
    pub fn table(&self) -> String {
        use crate::report::{table, x};
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign '{}' — {} scenario(s), scale {}{}",
            self.name,
            self.scenarios.len(),
            self.scale,
            if self.seed != 0 {
                format!(", seed offset {}", self.seed)
            } else {
                String::new()
            }
        );
        let mut groups: Vec<(String, usize)> = Vec::new();
        for row in &self.rows {
            let key = (row.experiment.clone(), row.cores);
            if !groups.contains(&key) {
                groups.push(key);
            }
        }
        for (experiment, cores) in groups {
            let rows: Vec<&CampaignRow> = self
                .rows
                .iter()
                .filter(|r| r.experiment == experiment && r.cores == cores)
                .collect();
            let _ = writeln!(out, "\n== {experiment} @ {cores} cores ==");
            let labels: Vec<String> = rows
                .first()
                .map(|r| r.points.iter().map(|(l, _)| l.clone()).collect())
                .unwrap_or_default();
            let with_paper = rows.iter().any(|r| r.paper_speedup.is_some());
            let mut headers: Vec<&str> = vec!["benchmark"];
            headers.extend(labels.iter().map(String::as_str));
            if with_paper {
                headers.push("paper HELIX-RC");
            }
            let fmt_cell = |label: &str, v: f64| -> String {
                // Percent-style labels render as percentages, speedups
                // as "N.NNx".
                if label.contains('%') || label.contains("frac") {
                    format!("{v:.1}")
                } else {
                    x(v)
                }
            };
            let mut body: Vec<Vec<String>> = Vec::new();
            for r in &rows {
                let mut cells = vec![r.scenario.clone()];
                for (label, v) in &r.points {
                    cells.push(fmt_cell(label, *v));
                }
                if with_paper {
                    cells.push(r.paper_speedup.map(x).unwrap_or_else(|| "-".into()));
                }
                body.push(cells);
            }
            // Geomean rows make sense when every point is a speedup.
            let all_speedups = !labels.is_empty()
                && labels
                    .iter()
                    .all(|l| !l.contains('%') && !l.contains("frac"));
            if all_speedups {
                for (kind, tag) in [("int", "INT geomean"), ("fp", "FP geomean")] {
                    let of_kind: Vec<&&CampaignRow> =
                        rows.iter().filter(|r| r.kind == kind).collect();
                    if of_kind.is_empty() {
                        continue;
                    }
                    let mut cells = vec![tag.to_string()];
                    for col in 0..labels.len() {
                        cells.push(x(geomean(of_kind.iter().map(|r| r.points[col].1))));
                    }
                    if with_paper {
                        let published: Vec<f64> =
                            of_kind.iter().filter_map(|r| r.paper_speedup).collect();
                        cells.push(if published.is_empty() {
                            "-".into()
                        } else {
                            x(geomean(published))
                        });
                    }
                    body.push(cells);
                }
            }
            out.push_str(&table(&headers, &body));
        }
        out.push_str(&self.derived_tables());
        out
    }

    /// Render the derived speedup-vs-coverage table and, when the
    /// campaign contains multi-nest scenarios, the per-nest breakdown.
    fn derived_tables(&self) -> String {
        use crate::report::{table, x};
        if self.derived.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let cores = self.derived[0].cores;
        let _ = writeln!(out, "\n== speedup vs coverage @ {cores} cores ==");
        let pct = |v: f64| format!("{:.1}", 100.0 * v);
        let body: Vec<Vec<String>> = self
            .derived
            .iter()
            .map(|d| {
                vec![
                    d.scenario.clone(),
                    pct(d.coverage),
                    x(d.speedup),
                    x(d.amdahl_bound),
                    pct(d.bound_frac),
                ]
            })
            .collect();
        out.push_str(&table(
            &[
                "benchmark",
                "coverage %",
                "HELIX-RC",
                "Amdahl bound",
                "% of bound",
            ],
            &body,
        ));
        let with_nests: Vec<&DerivedRow> = self
            .derived
            .iter()
            .filter(|d| !d.nests.is_empty())
            .collect();
        if !with_nests.is_empty() {
            let _ = writeln!(out, "\n== per-nest breakdown @ {cores} cores ==");
            let mut body: Vec<Vec<String>> = Vec::new();
            for d in with_nests {
                for nest in &d.nests {
                    body.push(vec![
                        d.scenario.clone(),
                        nest.name.clone(),
                        pct(nest.weight),
                        pct(nest.glue_weight),
                        pct(nest.coverage),
                        pct(nest.program_coverage),
                        nest.plans.to_string(),
                        x(nest.speedup),
                    ]);
                }
            }
            out.push_str(&table(
                &[
                    "benchmark",
                    "nest",
                    "weight %",
                    "glue %",
                    "nest cov %",
                    "prog cov %",
                    "plans",
                    "speedup",
                ],
                &body,
            ));
        }
        out
    }
}

/// One deterministic grid cell, enumerated before execution.
#[derive(Debug, Clone, Copy)]
struct Cell {
    scenario_ix: usize,
    experiment: CampaignExperiment,
    cores: usize,
}

fn paper_speedup(w: &Workload) -> Option<f64> {
    (w.paper.helix_speedup > 0.0).then_some(w.paper.helix_speedup)
}

fn blank_row(w: &Workload, experiment: CampaignExperiment, cores: usize) -> CampaignRow {
    CampaignRow {
        scenario: w.name.clone(),
        kind: w.kind.render().into(),
        experiment: experiment.render().into(),
        cores,
        helix_speedup: None,
        paper_speedup: None,
        seq_cycles: None,
        helix_cycles: None,
        comm_frac: None,
        overheads: None,
        points: Vec::new(),
    }
}

fn run_cell(cell: Cell, sweep_cores: &[usize], w: &Workload) -> Result<CampaignRow, ExpError> {
    let mut row = blank_row(w, cell.experiment, cell.cores);
    match cell.experiment {
        CampaignExperiment::Generations => {
            let r = compiler_generations(w, cell.cores)?;
            row.points = vec![
                ("HCCv1".into(), r.v1),
                ("HCCv2".into(), r.v2),
                ("HELIX-RC".into(), r.helix_rc),
            ];
            row.helix_speedup = Some(r.helix_rc);
            row.paper_speedup = paper_speedup(w);
            row.seq_cycles = Some(r.seq_cycles);
            row.helix_cycles = Some(r.helix_cycles);
        }
        CampaignExperiment::CoupledVsRing => {
            let r = coupled_vs_ring(w, cell.cores)?;
            row.points = vec![
                ("C % of seq".into(), r.conventional_pct),
                ("R % of seq".into(), r.ring_pct),
                ("C comm frac %".into(), 100.0 * r.conventional_comm_frac),
                ("R comm frac %".into(), 100.0 * r.ring_comm_frac),
            ];
            row.comm_frac = Some(r.ring_comm_frac);
        }
        CampaignExperiment::Overheads => {
            let r = overhead_breakdown(w, cell.cores)?;
            row.points = vec![("speedup".into(), r.speedup)];
            row.helix_speedup = Some(r.speedup);
            row.paper_speedup = paper_speedup(w);
            row.overheads = Some(r.measured);
        }
        CampaignExperiment::Lattice => {
            let pts = decoupling_lattice(w, cell.cores)?;
            row.helix_speedup = pts.last().map(|(_, s)| *s);
            row.points = pts
                .into_iter()
                .map(|(p, s)| (p.label().to_string(), s))
                .collect();
        }
        CampaignExperiment::CoreSweep => {
            row.points = sweep_core_count(w, sweep_cores)?;
            row.helix_speedup = row.points.last().map(|(_, s)| *s);
        }
        CampaignExperiment::RingLatency => {
            row.points = sweep_ring(w, cell.cores, &link_latency_settings())?;
        }
        CampaignExperiment::RingBandwidth => {
            row.points = sweep_ring(w, cell.cores, &signal_bandwidth_settings())?;
        }
        CampaignExperiment::RingMemory => {
            row.points = sweep_ring(w, cell.cores, &node_memory_settings())?;
        }
    }
    Ok(row)
}

/// Load a campaign file and every scenario spec it references. Errors
/// name the offending file — a campaign whose scenario set cannot be
/// resolved fails before any simulation starts.
pub fn load_campaign(path: &Path) -> Result<(CampaignSpec, Vec<ScenarioSpec>), ExpError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read campaign '{}': {e}", path.display()))?;
    let spec = CampaignSpec::from_toml(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let base = path.parent().unwrap_or_else(|| Path::new("."));
    let files = spec
        .resolve_scenarios(base)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let mut scenarios = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read scenario '{}': {e}", file.display()))?;
        let scenario =
            ScenarioSpec::from_toml(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        scenarios.push(scenario);
    }
    scenarios.sort_by(|a, b| a.name.cmp(&b.name));
    for pair in scenarios.windows(2) {
        if pair[0].name == pair[1].name {
            return Err(format!(
                "{}: scenario '{}' is matched more than once",
                path.display(),
                pair[0].name
            )
            .into());
        }
    }
    Ok((spec, scenarios))
}

/// Run a campaign over already-loaded scenario specs: apply the
/// campaign's seed offset, lower every grid cell onto its experiment
/// function, execute the cells in parallel, and aggregate in a stable
/// order.
pub fn run_campaign(
    spec: &CampaignSpec,
    scenarios: &[ScenarioSpec],
) -> Result<CampaignReport, ExpError> {
    spec.validate().map_err(|e| format!("{}", e))?;
    if scenarios.is_empty() {
        return Err(format!("campaign '{}': no scenarios to run", spec.name).into());
    }
    // Scenario order is by name regardless of how the caller loaded
    // them, so reports are comparable across directory layouts.
    let mut ordered: Vec<&ScenarioSpec> = scenarios.iter().collect();
    ordered.sort_by(|a, b| a.name.cmp(&b.name));
    let reseeded: Vec<ScenarioSpec> = ordered
        .iter()
        .map(|s| {
            let mut spec_ = (*s).clone();
            spec_.seed = spec_.seed.wrapping_add(spec.seed);
            spec_
        })
        .collect();

    let workloads: Vec<Workload> = reseeded
        .par_iter()
        .map(|s| workload_from_spec(s, spec.scale))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("campaign '{}': {e}", spec.name))?;

    let grid_cores: Vec<usize> = spec.grid.cores.iter().map(|&c| c as usize).collect();
    // The core-count sweep has its own axis so `cores` can stay pinned
    // (e.g. the paper's 16) while the sweep covers 2..16.
    let sweep_cores: Vec<usize> = if spec.grid.sweep_cores.is_empty() {
        grid_cores.clone()
    } else {
        spec.grid.sweep_cores.iter().map(|&c| c as usize).collect()
    };
    let mut cells: Vec<Cell> = Vec::new();
    for &experiment in &spec.grid.experiments {
        if experiment == CampaignExperiment::CoreSweep {
            // The sweep consumes the whole core axis as one cell.
            let cores = *sweep_cores.iter().max().expect("validated non-empty cores");
            for scenario_ix in 0..workloads.len() {
                cells.push(Cell {
                    scenario_ix,
                    experiment,
                    cores,
                });
            }
        } else {
            for &cores in &grid_cores {
                for scenario_ix in 0..workloads.len() {
                    cells.push(Cell {
                        scenario_ix,
                        experiment,
                        cores,
                    });
                }
            }
        }
    }

    let rows: Vec<CampaignRow> = cells
        .par_iter()
        .map(|&cell| {
            run_cell(cell, &sweep_cores, &workloads[cell.scenario_ix]).map_err(|e| {
                format!(
                    "campaign '{}': {} / {}: {e}",
                    spec.name,
                    workloads[cell.scenario_ix].name,
                    cell.experiment.render()
                )
            })
        })
        .collect::<Result<Vec<_>, _>>()?;

    let derived = derive_rows(spec, &reseeded, &workloads, &rows)?;

    Ok(CampaignReport {
        name: spec.name.clone(),
        description: spec.description.clone(),
        scale: format!("{:?}", spec.scale),
        seed: spec.seed,
        scenarios: ordered.iter().map(|s| s.name.clone()).collect(),
        rows,
        derived,
    })
}

/// Compute the derived speedup-vs-coverage metrics: one row per
/// scenario, anchored on its `generations` measurement at the largest
/// grid core count, plus per-nest breakdowns for multi-nest scenarios
/// (in-context weights via prefix differencing, per-nest speedups from
/// isolated-nest simulations, and plan→nest attribution through the
/// recorded block boundaries).
fn derive_rows(
    spec: &CampaignSpec,
    reseeded: &[ScenarioSpec],
    workloads: &[Workload],
    rows: &[CampaignRow],
) -> Result<Vec<DerivedRow>, ExpError> {
    if !spec
        .grid
        .experiments
        .contains(&CampaignExperiment::Generations)
    {
        return Ok(Vec::new());
    }
    let cores = *spec.grid.cores.iter().max().expect("validated non-empty") as usize;
    // The vendored rayon subset has no `zip`; index instead.
    let ixs: Vec<usize> = (0..reseeded.len()).collect();
    ixs.par_iter()
        .map(|&ix| -> Result<DerivedRow, ExpError> {
            let (scenario, w) = (&reseeded[ix], &workloads[ix]);
            let gen_row = rows
                .iter()
                .find(|r| r.scenario == w.name && r.experiment == "generations" && r.cores == cores)
                .and_then(|r| Some((r.helix_speedup?, r.seq_cycles?)))
                .ok_or_else(|| {
                    format!(
                        "campaign '{}': no generations measurement for {} at {cores} cores",
                        spec.name, w.name
                    )
                })?;
            let (speedup, seq_cycles) = gen_row;
            let compiled = compile(&w.program, &HccConfig::v3(cores as u32))?;
            let coverage = compiled.stats.coverage.clamp(0.0, 1.0);
            let amdahl_bound = 1.0 / ((1.0 - coverage) + coverage / cores as f64);
            // Everything in a derived row is v3-anchored (the headline
            // speedup is the generations experiment's HELIX-RC run and
            // program_coverage comes from the v3 compile above), so the
            // isolated nests compile with v3 too, regardless of the
            // scenario's own `run.compiler`.
            let nests = nest_rows(
                scenario,
                spec.scale,
                cores,
                FUEL,
                Some(seq_cycles),
                CompilerGen::V3,
            )?
            .into_iter()
            .zip(&w.nests)
            .map(|(row, boundary)| {
                let (program_coverage, _) =
                    compiled.coverage_in_blocks(boundary.first_block, boundary.end_block);
                DerivedNestRow {
                    name: row.name,
                    weight: row.weight,
                    glue_weight: row.glue_weight,
                    coverage: row.coverage,
                    program_coverage,
                    plans: row.plans,
                    speedup: row.speedup,
                }
            })
            .collect();
            Ok(DerivedRow {
                scenario: w.name.clone(),
                kind: w.kind.render().into(),
                cores,
                coverage,
                speedup,
                amdahl_bound,
                bound_frac: speedup / amdahl_bound,
                nests,
            })
        })
        .collect()
}

/// Load and run a campaign file in one call.
pub fn run_campaign_file(path: &Path) -> Result<CampaignReport, ExpError> {
    let (spec, scenarios) = load_campaign(path)?;
    run_campaign(&spec, &scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_workloads::{builtin_spec, CampaignGrid, Scale};

    fn tiny_campaign(experiments: Vec<CampaignExperiment>) -> (CampaignSpec, Vec<ScenarioSpec>) {
        let spec = CampaignSpec {
            name: "tiny".into(),
            description: "unit fixture".into(),
            scenarios: vec!["unused.toml".into()],
            scale: Scale::Test,
            seed: 0,
            grid: CampaignGrid {
                cores: vec![8],
                sweep_cores: vec![],
                experiments,
            },
        };
        (spec, vec![builtin_spec("175.vpr").unwrap()])
    }

    /// Grid lowering: a generations cell must reproduce the exact
    /// numbers of the equivalent hand-built experiment call.
    #[test]
    fn generations_cell_matches_direct_experiment_call() {
        let (spec, scenarios) = tiny_campaign(vec![CampaignExperiment::Generations]);
        let report = run_campaign(&spec, &scenarios).unwrap();
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];

        let w = workload_from_spec(&scenarios[0], Scale::Test).unwrap();
        let direct = compiler_generations(&w, 8).unwrap();
        assert_eq!(row.helix_speedup, Some(direct.helix_rc));
        assert_eq!(row.seq_cycles, Some(direct.seq_cycles));
        assert_eq!(row.helix_cycles, Some(direct.helix_cycles));
        assert_eq!(
            row.points,
            vec![
                ("HCCv1".to_string(), direct.v1),
                ("HCCv2".to_string(), direct.v2),
                ("HELIX-RC".to_string(), direct.helix_rc),
            ]
        );
        assert_eq!(row.paper_speedup, Some(6.1));
    }

    /// Same campaign + seed twice => byte-identical reports.
    #[test]
    fn campaign_reports_are_byte_identical() {
        let (spec, scenarios) = tiny_campaign(vec![
            CampaignExperiment::Generations,
            CampaignExperiment::CoupledVsRing,
        ]);
        let a = run_campaign(&spec, &scenarios).unwrap();
        let b = run_campaign(&spec, &scenarios).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    /// The campaign seed offset re-rolls distribution-baked scenarios.
    #[test]
    fn seed_offset_changes_distribution_scenarios() {
        let (mut spec, _) = tiny_campaign(vec![CampaignExperiment::Generations]);
        let scenarios = vec![builtin_spec("910.bursty").unwrap()];
        let base = run_campaign(&spec, &scenarios).unwrap();
        spec.seed = 1;
        let reseeded = run_campaign(&spec, &scenarios).unwrap();
        assert_eq!(reseeded.seed, 1);
        assert_ne!(
            base.rows[0].seq_cycles, reseeded.rows[0].seq_cycles,
            "seed offset must perturb the baked work tables"
        );
    }

    #[test]
    fn helix_speedups_come_from_generations_rows() {
        let (spec, scenarios) = tiny_campaign(vec![
            CampaignExperiment::CoupledVsRing,
            CampaignExperiment::Generations,
        ]);
        let report = run_campaign(&spec, &scenarios).unwrap();
        let speedups = report.helix_speedups();
        assert_eq!(speedups.len(), 1);
        assert_eq!(speedups[0].0, "175.vpr");
        assert!(speedups[0].1 > 1.0);
    }

    #[test]
    fn table_renders_geomeans_and_groups() {
        let (spec, scenarios) = tiny_campaign(vec![CampaignExperiment::Generations]);
        let report = run_campaign(&spec, &scenarios).unwrap();
        let text = report.table();
        assert!(text.contains("== generations @ 8 cores =="), "{text}");
        assert!(text.contains("INT geomean"), "{text}");
        assert!(text.contains("175.vpr"), "{text}");
    }

    #[test]
    fn empty_scenario_set_is_an_error() {
        let (spec, _) = tiny_campaign(vec![CampaignExperiment::Generations]);
        assert!(run_campaign(&spec, &[]).is_err());
    }
}
