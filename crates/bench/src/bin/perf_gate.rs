//! Perf-regression gate: compare a fresh `bench_sim` run against the
//! committed `BENCH_sim.json` baseline and fail if the fast-path
//! throughput regressed.
//!
//! ```text
//! cargo run --release -p helix-bench --bin bench_sim -- fresh.json
//! cargo run --release -p helix-bench --bin perf_gate -- BENCH_sim.json fresh.json
//! ```
//!
//! Absolute `cycles_per_sec` numbers differ between machines, so the
//! gate normalizes: per (workload, config) pair it computes the
//! fresh/baseline throughput ratio, divides every ratio by the median
//! ratio (cancelling uniform machine-speed differences), and fails if
//! any pair's *normalized* ratio drops below `1 - tolerance` (default
//! 30%) — i.e. if some workload slowed down disproportionately to the
//! rest. A uniform slowdown cannot hide behind the median either: the
//! raw median itself must stay above an order-of-magnitude floor of the
//! baseline, which is lenient across runner generations but catches an
//! accidental return to the naive cycle loop.

use helix_bench::json::{parse, Json};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Normalized per-pair regression tolerance (`--tolerance` overrides).
const DEFAULT_TOLERANCE: f64 = 0.30;
/// Floor on the raw median fresh/baseline ratio: the whole suite an
/// order of magnitude slower means the fast path itself regressed.
const MEDIAN_FLOOR: f64 = 0.1;

fn load_rows(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let rows = doc
        .get("workloads")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: no 'workloads' array"))?;
    let mut out = BTreeMap::new();
    for row in rows {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: workload row without 'name'"))?;
        let config = row
            .get("config")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: workload row without 'config'"))?;
        let cps = row
            .get("fast_cycles_per_sec")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{path}: {name}/{config} missing fast_cycles_per_sec"))?;
        if cps <= 0.0 {
            return Err(format!("{path}: {name}/{config} non-positive throughput"));
        }
        out.insert(format!("{name} @ {config}"), cps);
    }
    if out.is_empty() {
        return Err(format!("{path}: empty workload table"));
    }
    Ok(out)
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN ratios"));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

fn run(baseline_path: &str, fresh_path: &str, tolerance: f64) -> Result<(), String> {
    let baseline = load_rows(baseline_path)?;
    let fresh = load_rows(fresh_path)?;

    let mut ratios: Vec<(String, f64)> = Vec::new();
    for (key, base_cps) in &baseline {
        match fresh.get(key) {
            Some(fresh_cps) => ratios.push((key.clone(), fresh_cps / base_cps)),
            None => return Err(format!("fresh run is missing pair '{key}'")),
        }
    }
    let m = median(ratios.iter().map(|(_, r)| *r).collect());
    println!(
        "perf gate: {} pairs, median fresh/baseline throughput ratio {m:.3} \
         (normalized tolerance {:.0}%)",
        ratios.len(),
        100.0 * tolerance
    );

    let mut failures = Vec::new();
    for (key, ratio) in &ratios {
        let normalized = ratio / m;
        let flag = if normalized < 1.0 - tolerance {
            failures.push(key.clone());
            "  << REGRESSION"
        } else {
            ""
        };
        println!("  {key:<40} ratio {ratio:7.3}  normalized {normalized:6.3}{flag}");
    }

    if m < MEDIAN_FLOOR {
        return Err(format!(
            "median throughput ratio {m:.3} is below the {MEDIAN_FLOOR} order-of-magnitude \
             floor: the fast path regressed across the whole suite"
        ));
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} pair(s) regressed more than {:.0}% relative to the suite: {}",
            failures.len(),
            100.0 * tolerance,
            failures.join(", ")
        ));
    }
    println!("perf gate: ok");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => tolerance = t,
                _ => {
                    eprintln!("perf_gate: --tolerance needs a value in [0, 1)");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline, fresh] = paths.as_slice() else {
        eprintln!("usage: perf_gate <baseline.json> <fresh.json> [--tolerance 0.30]");
        return ExitCode::from(2);
    };
    match run(baseline, fresh, tolerance) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("perf_gate: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
