//! Open a brand-new workload without writing IR-builder code: describe
//! it as a [`ScenarioSpec`] (the same data model behind
//! `scenarios/*.toml`), lower it with the generator, and run it through
//! the scenario runner — the in-process equivalent of
//! `helix run my_scenario.toml`.
//!
//! Run with `cargo run --release --example declarative_scenario`.

use helix_rc::ir::Distribution;
use helix_rc::scenario::{run_scenario, RunOverrides};
use helix_rc::workloads::spec::{
    CarryOp, CarryOperand, CarrySpec, CountExpr, ElemTy, HotLoopSpec, OpSpec, PhaseSpec,
    RegionSpec, RunSpec, ScenarioSpec, UpdateOp, UpdateValue,
};
use helix_rc::workloads::{Kind, Scale};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // A market-matching workload: orders arrive with geometrically
    // distributed processing times, hash into a shared order book
    // (memory-carried dependences), and feed a running checksum.
    let region = |name: &str, size: CountExpr, elem: ElemTy| RegionSpec {
        name: name.into(),
        size,
        elem,
    };
    let spec = ScenarioSpec {
        name: "demo.orderbook".into(),
        description: "Order matching: geometric service times + shared book".into(),
        kind: Kind::Int,
        base_n: 800,
        seed: 2014,
        regions: vec![
            region("orders", CountExpr::n_plus(1), ElemTy::I64),
            region("parsed", CountExpr::n_plus(1), ElemTy::I64),
            region("service", CountExpr::n_plus(1), ElemTy::I64),
            region("book", CountExpr::fixed(256), ElemTy::I64),
            region("out", CountExpr::fixed(8), ElemTy::I64),
        ],
        phases: vec![
            PhaseSpec::Fill {
                region: "orders".into(),
                count: CountExpr::n(),
                seed: 99,
            },
            PhaseSpec::Doall {
                input: "orders".into(),
                output: "parsed".into(),
                count: CountExpr::n(),
                work: 13,
            },
            PhaseSpec::HotLoop(HotLoopSpec {
                trips: CountExpr::n(),
                input: Some("parsed".into()),
                carry: Some(CarrySpec {
                    init: 1,
                    out: "out".into(),
                }),
                ops: vec![
                    // Geometric long-tail service times (Fig. 4a shape),
                    // baked from the scenario seed.
                    OpSpec::VarWork {
                        region: "service".into(),
                        dist: Distribution::Geometric { mean: 6, cap: 80 },
                    },
                    // Shared order book: high collision density.
                    OpSpec::Table {
                        region: "book".into(),
                        shift: 0,
                        mask: 255,
                        op: UpdateOp::Add,
                        value: UpdateValue::Cur,
                    },
                    // One order in four updates the checksum chain.
                    OpSpec::Guard {
                        mask: 3,
                        then_ops: vec![OpSpec::Carry {
                            op: CarryOp::Xor,
                            operand: CarryOperand::Cur,
                        }],
                        else_ops: vec![],
                    },
                ],
            }),
        ],
        nests: vec![],
        run: RunSpec {
            cores: 16,
            sweep_cores: vec![2, 4, 8],
            ..RunSpec::default()
        },
    };

    // The spec is plain data: print it as the TOML you would commit
    // under scenarios/ to make this workload part of the suite.
    println!("--- demo.orderbook.toml ---\n{}", spec.to_toml());

    let report = run_scenario(&spec, Scale::Test, RunOverrides::default())?;
    println!(
        "{} on {} cores: coverage {:.1}%, {} parallel loop(s)",
        report.scenario,
        report.cores,
        100.0 * report.coverage,
        report.plans
    );
    for row in report.runs.iter().chain(&report.sweep) {
        println!(
            "  {:<16} {:>10} cycles{}",
            row.config,
            row.cycles,
            row.speedup_vs_sequential
                .map(|s| format!("  {s:5.2}x vs sequential"))
                .unwrap_or_default()
        );
    }
    Ok(())
}
