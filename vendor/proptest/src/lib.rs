//! Offline mini-`proptest`.
//!
//! A deterministic, dependency-free subset of the proptest API large
//! enough for this workspace's property suites: `Strategy` with
//! `prop_map`, integer-range and tuple strategies, `any`, `Just`,
//! `prop_oneof!`, `prop::collection::vec`, and the `proptest!` test
//! macro with `#![proptest_config(..)]`. Case generation is seeded from
//! the test name, so failures reproduce exactly across runs.

use std::ops::Range;

/// SplitMix64 generator: tiny, fast, and deterministic.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Deterministic per-test generator (FNV-1a over the test name).
pub fn rng_for(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::new(h)
}

/// Value-generation strategy.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Build from alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs alternatives");
        Union(options)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-range arbitrary values (the `any::<T>()` entry point).
pub trait Arbitrary {
    /// Produce an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] values.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-suite configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Property-test assertion (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Define `#[test]` functions over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::rng_for("ranges");
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = crate::rng_for("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let s = prop::collection::vec(any::<u8>(), 2..5);
        let mut rng = crate::rng_for("vec");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn determinism_per_name() {
        let s = prop::collection::vec(any::<i64>(), 4..5);
        let a = s.generate(&mut crate::rng_for("same"));
        let b = s.generate(&mut crate::rng_for("same"));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself compiles and runs with mapped strategies.
        #[test]
        fn macro_roundtrip(xs in prop::collection::vec((0..10u8).prop_map(|v| v * 2), 1..4)) {
            prop_assert!(!xs.is_empty());
            for x in xs {
                prop_assert_eq!(x % 2, 0);
            }
        }
    }
}
