//! Loop selection.
//!
//! HCCv1 selects loops with an analytical performance model; HCCv3
//! profiles loops on representative inputs, emulating the ring cache to
//! estimate the time saved by parallelization, and picks the most
//! promising set over the loop nesting graph (paper §4). Both reduce to
//! the same machinery here: a per-loop speedup estimate parameterized by
//! the synchronization cost of the target machine, maximized over the
//! loop forest by dynamic programming (only one loop runs in parallel at
//! a time, so an ancestor and its descendant cannot both be selected).

use crate::placement::{region_size_for_reg, region_size_for_sites};
use crate::profile::ProgramProfile;
use helix_analysis::{analyze_loop, classify_registers, DepConfig, PointsTo};
use helix_ir::cfg::{recognize_counted_loop, LoopForest};
use helix_ir::{Inst, InstSite, Program, Terminator};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Machine model used by the selection estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectionParams {
    /// Cores iterations are distributed over.
    pub cores: u32,
    /// Cycles to synchronize one sequential segment across cores
    /// (conventional: the coherence round trip; ring cache: a few hops).
    pub sync_cost: f64,
    /// Minimum estimated speedup to consider a loop profitable.
    pub min_speedup: f64,
    /// Minimum mean trip count per invocation.
    pub min_trip: f64,
    /// Maximum number of segments the splitter will keep (mirrors the
    /// split policy so segment-size estimates match codegen).
    pub max_segments: usize,
}

/// Why a loop was rejected as a parallelization candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Not a canonical counted loop (trip count unknown at entry).
    NotCounted,
    /// Exits the loop from a non-header block.
    SideExit,
    /// Contains a call with hidden internal state (`rand`).
    HiddenState,
    /// A shared dependence endpoint cannot be tagged (e.g. `memcpy`).
    UntaggableShared,
    /// A register needing communication has an ambiguous scalar type.
    MixedTypeShared,
    /// Mean trip count below threshold.
    LowTrip,
    /// Estimated speedup below threshold.
    Unprofitable,
    /// The loop never ran during profiling.
    Cold,
}

/// Estimate for one candidate loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateEstimate {
    /// Loop index in the forest.
    pub loop_idx: usize,
    /// Estimated speedup of the loop body under the machine model.
    pub est_speedup: f64,
    /// Program-time fraction saved if selected.
    pub gain: f64,
    /// Estimated number of sequential segments after splitting.
    pub segments: usize,
    /// Estimated size (static instructions) of the largest segment.
    pub max_seg_size: usize,
    /// Fraction of profiled execution inside the loop.
    pub coverage: f64,
    /// Mean dynamic instructions per iteration.
    pub insts_per_iter: f64,
}

/// Result of loop selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Selection {
    /// Indices of selected loops (no ancestor/descendant pairs).
    pub selected: Vec<usize>,
    /// All candidate estimates (selected or not).
    pub candidates: Vec<CandidateEstimate>,
    /// Rejected loops with reasons.
    pub rejected: Vec<(usize, RejectReason)>,
    /// Total coverage of the selected set.
    pub coverage: f64,
}

/// Evaluate and select loops of `program`.
pub fn select_loops(
    program: &Program,
    forest: &LoopForest,
    profile: &ProgramProfile,
    dep_config: DepConfig,
    params: &SelectionParams,
) -> Selection {
    let pts = PointsTo::analyze(program, dep_config.tier);
    let mut candidates: BTreeMap<usize, CandidateEstimate> = BTreeMap::new();
    let mut rejected = Vec::new();

    for (idx, node) in forest.loops.iter().enumerate() {
        let lp = &node.lp;
        let prof = profile.loops[idx];
        if prof.invocations == 0 {
            rejected.push((idx, RejectReason::Cold));
            continue;
        }
        if recognize_counted_loop(&program.graph, lp).is_none() {
            rejected.push((idx, RejectReason::NotCounted));
            continue;
        }
        // Exits only from the header; no Return inside.
        let mut side_exit = false;
        for &b in &lp.blocks {
            let term = &program.graph.block(b).term;
            if matches!(term, Terminator::Return) {
                side_exit = true;
            }
            if b != lp.header {
                for s in term.successors() {
                    if !lp.blocks.contains(&s) {
                        side_exit = true;
                    }
                }
            }
        }
        if side_exit {
            rejected.push((idx, RejectReason::SideExit));
            continue;
        }

        let deps = analyze_loop(program, lp, dep_config, &pts);
        if deps.hidden_state_dep {
            rejected.push((idx, RejectReason::HiddenState));
            continue;
        }
        // All shared dependence endpoints must be plain loads/stores.
        let shared_sites = deps.shared_sites();
        let untaggable = shared_sites.iter().any(|s| {
            !matches!(
                program.graph.block(s.block).insts[s.index],
                Inst::Load { .. } | Inst::Store { .. }
            )
        });
        if untaggable {
            rejected.push((idx, RejectReason::UntaggableShared));
            continue;
        }
        // Registers that must be communicated: uniform type required.
        let classes = classify_registers(&program.graph, lp);
        let must_comm: Vec<_> = classes.iter().filter(|c| c.must_communicate()).collect();
        let mixed = must_comm
            .iter()
            .any(|c| crate::demote::infer_reg_ty(&program.graph, c.reg).is_none());
        if mixed {
            rejected.push((idx, RejectReason::MixedTypeShared));
            continue;
        }

        if prof.trip_count() < params.min_trip {
            rejected.push((idx, RejectReason::LowTrip));
            continue;
        }

        // --- Segment structure estimate ---
        // Memory components via union-find over dependence pairs.
        let mut parent: BTreeMap<InstSite, InstSite> = BTreeMap::new();
        fn find(parent: &mut BTreeMap<InstSite, InstSite>, x: InstSite) -> InstSite {
            let p = *parent.entry(x).or_insert(x);
            if p == x {
                x
            } else {
                let r = find(parent, p);
                parent.insert(x, r);
                r
            }
        }
        for d in &deps.mem_deps {
            let (ra, rb) = (find(&mut parent, d.a), find(&mut parent, d.b));
            if ra != rb {
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent.insert(hi, lo);
            }
        }
        let mut comps: BTreeMap<InstSite, BTreeSet<InstSite>> = BTreeMap::new();
        for &s in &shared_sites {
            let r = find(&mut parent, s);
            comps.entry(r).or_default().insert(s);
        }
        // Segment region sizes (static instructions within reach span,
        // at instruction granularity), weighted by how often each block
        // executes relative to this loop's iterations: a segment that
        // spans a nested loop is dynamically as long as that loop's whole
        // execution, which is what the synchronization serializes.
        let weight_of = |inner_idx: Option<usize>| -> f64 {
            let own = profile.loops[idx].iterations.max(1) as f64;
            match inner_idx {
                Some(j) if j != idx => (profile.loops[j].iterations.max(1) as f64 / own).max(1.0),
                _ => 1.0,
            }
        };
        let weighted = |raw: usize, blocks: &BTreeSet<helix_ir::BlockId>| -> usize {
            // Approximate: scale the whole region by the maximum relative
            // frequency among its access blocks.
            let mut w = 1.0f64;
            for b in blocks {
                w = w.max(weight_of(forest.innermost_containing(*b)));
            }
            (raw as f64 * w) as usize
        };
        let mut seg_sizes: Vec<usize> = Vec::new();
        for comp in comps.values() {
            let raw = region_size_for_sites(program, lp, comp);
            let blocks: BTreeSet<helix_ir::BlockId> = comp.iter().map(|s| s.block).collect();
            seg_sizes.push(weighted(raw, &blocks));
        }
        for c in &must_comm {
            let raw = region_size_for_reg(program, lp, c.reg);
            let mut blocks = BTreeSet::new();
            for &b in &lp.blocks {
                for inst in &program.graph.block(b).insts {
                    if inst.uses().contains(&c.reg) || inst.def() == Some(c.reg) {
                        blocks.insert(b);
                    }
                }
            }
            seg_sizes.push(weighted(raw, &blocks));
        }
        let mut n_seg = seg_sizes.len();
        if n_seg > params.max_segments {
            // Merging keeps total size but concentrates it.
            seg_sizes.sort_unstable_by(|a, b| b.cmp(a));
            let merged: usize = seg_sizes.split_off(params.max_segments - 1).iter().sum();
            seg_sizes.push(merged);
            n_seg = params.max_segments;
        }
        let max_seg = seg_sizes.iter().copied().max().unwrap_or(0);

        // --- Speedup model ---
        let i_per_iter = prof.insts_per_iter().max(1.0);
        let demoted_accesses: usize = must_comm
            .iter()
            .map(|c| {
                let mut n = 0;
                for &b in &lp.blocks {
                    for inst in &program.graph.block(b).insts {
                        if inst.uses().contains(&c.reg) {
                            n += 1;
                        }
                        if inst.def() == Some(c.reg) {
                            n += 1;
                        }
                    }
                }
                n
            })
            .sum();
        let added = demoted_accesses as f64 + 2.0 * n_seg as f64;
        let trip = prof.trip_count();
        let n_eff = (params.cores as f64).min(trip.max(1.0));
        let parallel_bound = (i_per_iter + added) / n_eff;
        let serial_bound = if n_seg == 0 {
            0.0
        } else {
            max_seg as f64 + params.sync_cost
        };
        let est_speedup = i_per_iter / parallel_bound.max(serial_bound).max(1.0);

        let coverage = profile.coverage(idx);
        if est_speedup < params.min_speedup {
            rejected.push((idx, RejectReason::Unprofitable));
            continue;
        }
        let gain = coverage * (1.0 - 1.0 / est_speedup);
        candidates.insert(
            idx,
            CandidateEstimate {
                loop_idx: idx,
                est_speedup,
                gain,
                segments: n_seg,
                max_seg_size: max_seg,
                coverage,
                insts_per_iter: i_per_iter,
            },
        );
    }

    // DP over the forest: best(node) = max(own gain, sum of children).
    let mut selected = Vec::new();
    let mut memo: BTreeMap<usize, (f64, Vec<usize>)> = BTreeMap::new();
    fn best(
        idx: usize,
        forest: &LoopForest,
        candidates: &BTreeMap<usize, CandidateEstimate>,
        memo: &mut BTreeMap<usize, (f64, Vec<usize>)>,
    ) -> (f64, Vec<usize>) {
        if let Some(v) = memo.get(&idx) {
            return v.clone();
        }
        let mut child_gain = 0.0;
        let mut child_set = Vec::new();
        for &c in &forest.loops[idx].children {
            let (g, s) = best(c, forest, candidates, memo);
            child_gain += g;
            child_set.extend(s);
        }
        let own = candidates.get(&idx).map(|c| c.gain).unwrap_or(-1.0);
        let result = if own >= child_gain && own > 0.0 {
            (own, vec![idx])
        } else {
            (child_gain, child_set)
        };
        memo.insert(idx, result.clone());
        result
    }
    let mut coverage = 0.0;
    for root in forest.roots() {
        let (_, set) = best(root, forest, &candidates, &mut memo);
        for idx in set {
            coverage += candidates[&idx].coverage;
            selected.push(idx);
        }
    }
    selected.sort_unstable();

    Selection {
        selected,
        candidates: candidates.into_values().collect(),
        rejected,
        coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile;
    use helix_ir::interp::Env;
    use helix_ir::{AddrExpr, BinOp, ProgramBuilder, Ty};

    fn params(cores: u32, sync: f64) -> SelectionParams {
        SelectionParams {
            cores,
            sync_cost: sync,
            min_speedup: 1.2,
            min_trip: 2.0,
            max_segments: 64,
        }
    }

    /// A DOALL-style hot loop: selected under both cheap and costly sync.
    #[test]
    fn doall_hot_loop_selected() {
        let mut b = ProgramBuilder::new("t");
        let r = b.region("a", 1 << 16, Ty::I64);
        b.counted_loop(0, 1000, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
            b.alu_chain(x, 8);
            b.store(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
        });
        let p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let mut env = Env::for_program(&p);
        let prof = profile(&p, &forest, &mut env, 10_000_000).unwrap();
        let sel = select_loops(&p, &forest, &prof, DepConfig::full(), &params(16, 100.0));
        assert_eq!(sel.selected.len(), 1);
        assert!(sel.coverage > 0.9);
        assert!(sel.candidates[0].est_speedup > 4.0);
    }

    /// A tight serial accumulator through memory: profitable only when
    /// synchronization is cheap (the ring-cache case).
    #[test]
    fn serial_loop_needs_cheap_sync() {
        let mut b = ProgramBuilder::new("t");
        let cell = b.region("cell", 64, Ty::I64);
        let data = b.region("data", 1 << 16, Ty::I64);
        b.counted_loop(0, 1000, 1, |b, i| {
            // Long private part...
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
            b.alu_chain(x, 30);
            // ...plus a short shared update.
            let c = b.reg();
            b.load(c, AddrExpr::region(cell, 0), Ty::I64);
            b.bin(c, BinOp::Add, c, x);
            b.store(c, AddrExpr::region(cell, 0), Ty::I64);
        });
        let p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let mut env = Env::for_program(&p);
        let prof = profile(&p, &forest, &mut env, 10_000_000).unwrap();

        let expensive = select_loops(&p, &forest, &prof, DepConfig::full(), &params(16, 100.0));
        assert!(
            expensive.selected.is_empty(),
            "100-cycle sync per 35-inst iteration is unprofitable"
        );
        let cheap = select_loops(&p, &forest, &prof, DepConfig::full(), &params(16, 8.0));
        assert_eq!(cheap.selected.len(), 1, "ring-cache sync cost unlocks it");
    }

    /// Nested loops: the DP picks the inner loop when it is the better
    /// candidate and never selects both.
    #[test]
    fn dp_respects_nesting() {
        let mut b = ProgramBuilder::new("t");
        let r = b.region("a", 1 << 16, Ty::I64);
        b.counted_loop(0, 8, 1, |b, _outer| {
            b.counted_loop(0, 200, 1, |b, j| {
                let x = b.reg();
                b.load(x, AddrExpr::region_indexed(r, j, 8, 0), Ty::I64);
                b.alu_chain(x, 6);
                b.store(x, AddrExpr::region_indexed(r, j, 8, 0), Ty::I64);
            });
        });
        let p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let mut env = Env::for_program(&p);
        let prof = profile(&p, &forest, &mut env, 50_000_000).unwrap();
        let sel = select_loops(&p, &forest, &prof, DepConfig::full(), &params(16, 10.0));
        assert_eq!(sel.selected.len(), 1);
    }

    /// Loops with hidden-state calls are rejected.
    #[test]
    fn rand_loop_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.counted_loop(0, 100, 1, |b, _i| {
            let x = b.reg();
            b.call(Some(x), helix_ir::Intrinsic::Rand, vec![]);
        });
        let p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let mut env = Env::for_program(&p);
        let prof = profile(&p, &forest, &mut env, 1_000_000).unwrap();
        let sel = select_loops(&p, &forest, &prof, DepConfig::full(), &params(16, 10.0));
        assert!(sel.selected.is_empty());
        assert!(sel
            .rejected
            .iter()
            .any(|(_, r)| *r == RejectReason::HiddenState));
    }

    /// While loops (unknown trip count) are rejected as NotCounted.
    #[test]
    fn while_loop_rejected() {
        let mut b = ProgramBuilder::new("t");
        let n = b.reg();
        b.const_i(n, 100);
        b.while_loop(
            |b| {
                let c = b.reg();
                b.bin(c, BinOp::CmpGt, n, 0i64);
                c.into()
            },
            |b| {
                b.bin(n, BinOp::Sub, n, 1i64);
            },
        );
        let p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let mut env = Env::for_program(&p);
        let prof = profile(&p, &forest, &mut env, 1_000_000).unwrap();
        let sel = select_loops(&p, &forest, &prof, DepConfig::full(), &params(16, 10.0));
        assert!(sel
            .rejected
            .iter()
            .any(|(_, r)| *r == RejectReason::NotCounted));
    }
}
