//! Built-in scenario specs: the ten SPEC CPU2000 stand-ins re-expressed
//! as data, plus novel scenarios only the declarative subsystem can
//! open (pointer chasing, distribution-driven iteration lengths).
//!
//! The SPEC specs generate programs **bit-identical** to the hand-coded
//! constructors in [`crate::cint`] / [`crate::cfp`] — the workspace
//! tests pin both program equality and simulated cycle counts — so
//! `scenarios/*.toml` and the Rust constructors can never drift apart
//! silently.

use crate::spec::{
    CarryOp, CarryOperand, CarrySpec, CountExpr, ElemTy, HotLoopSpec, NestSpec, OpSpec, PhaseSpec,
    RegionSpec, RunSpec, ScenarioSpec, UpdateOp, UpdateValue,
};
use crate::Kind;
use helix_ir::Distribution;

fn region(name: &str, size: CountExpr, elem: ElemTy) -> RegionSpec {
    RegionSpec {
        name: name.into(),
        size,
        elem,
    }
}

fn ri(name: &str, size: CountExpr) -> RegionSpec {
    region(name, size, ElemTy::I64)
}

fn rf(name: &str, size: CountExpr) -> RegionSpec {
    region(name, size, ElemTy::F64)
}

fn fill(region: &str, count: CountExpr, seed: i64) -> PhaseSpec {
    PhaseSpec::Fill {
        region: region.into(),
        count,
        seed,
    }
}

fn doall(input: &str, output: &str, count: CountExpr, work: i64) -> PhaseSpec {
    PhaseSpec::Doall {
        input: input.into(),
        output: output.into(),
        count,
        work,
    }
}

fn n() -> CountExpr {
    CountExpr::n()
}

fn n1() -> CountExpr {
    CountExpr::n_plus(1)
}

fn fixed(v: i64) -> CountExpr {
    CountExpr::fixed(v)
}

/// 164.gzip as a spec (see [`crate::cint::gzip`]).
pub fn gzip_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "164.gzip".into(),
        description: "LZ-style hash-chain compression: chain-head updates plus a demoted checksum"
            .into(),
        kind: Kind::Int,
        base_n: 900,
        seed: 7,
        regions: vec![
            ri("input", n1()),
            ri("window", n1()),
            ri("head", fixed(256)),
            ri("out", fixed(8)),
        ],
        phases: vec![
            fill("input", n(), 7),
            doall("input", "window", n(), 11),
            PhaseSpec::HotLoop(HotLoopSpec {
                trips: n(),
                input: Some("window".into()),
                carry: Some(CarrySpec {
                    init: -1,
                    out: "out".into(),
                }),
                ops: vec![
                    OpSpec::ChainHead {
                        region: "head".into(),
                        mask: 255,
                    },
                    OpSpec::Guard {
                        mask: 3,
                        then_ops: vec![
                            OpSpec::Carry {
                                op: CarryOp::Xor,
                                operand: CarryOperand::Cur,
                            },
                            OpSpec::Carry {
                                op: CarryOp::Shl,
                                operand: CarryOperand::Imm(1),
                            },
                        ],
                        else_ops: vec![],
                    },
                ],
            }),
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// 175.vpr as a spec (see [`crate::cint::vpr`]).
pub fn vpr_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "175.vpr".into(),
        description: "Placement cost update: cache-hostile grid stream and a shared bounding box"
            .into(),
        kind: Kind::Int,
        base_n: 1000,
        seed: 13,
        regions: vec![
            ri("nets", n1()),
            ri("grid", fixed(8 * 1024)),
            ri("routed", n1()),
            ri("bb_cost", fixed(8)),
        ],
        phases: vec![
            fill("nets", n(), 13),
            doall("nets", "routed", n(), 14),
            PhaseSpec::HotLoop(HotLoopSpec {
                trips: n(),
                input: None,
                carry: None,
                ops: vec![
                    OpSpec::Stream {
                        region: "grid".into(),
                        stride: 173,
                    },
                    OpSpec::Guard {
                        mask: 1,
                        then_ops: vec![OpSpec::Bump {
                            region: "bb_cost".into(),
                        }],
                        else_ops: vec![OpSpec::ScaleStore {
                            region: "routed".into(),
                            factor: 3,
                        }],
                    },
                ],
            }),
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// 197.parser as a spec (see [`crate::cint::parser`]).
pub fn parser_spec() -> ScenarioSpec {
    let table = |region: &str, shift: i64, op: UpdateOp, value: UpdateValue| OpSpec::Table {
        region: region.into(),
        shift,
        mask: 1023,
        op,
        value,
    };
    ScenarioSpec {
        name: "197.parser".into(),
        description: "Dictionary/link-table lookups: four disjoint shared tables".into(),
        kind: Kind::Int,
        base_n: 800,
        seed: 29,
        regions: vec![
            ri("text", n1()),
            ri("tokens", n1()),
            ri("dict", fixed(1024)),
            ri("words", fixed(1024)),
            ri("links", fixed(1024)),
            ri("out", fixed(8)),
        ],
        phases: vec![
            fill("text", n(), 29),
            doall("text", "tokens", n(), 19),
            PhaseSpec::HotLoop(HotLoopSpec {
                trips: n(),
                input: Some("tokens".into()),
                carry: Some(CarrySpec {
                    init: 1,
                    out: "out".into(),
                }),
                ops: vec![
                    table("dict", 0, UpdateOp::Add, UpdateValue::One),
                    table("words", 10, UpdateOp::Xor, UpdateValue::Cur),
                    table("links", 20, UpdateOp::Add, UpdateValue::One),
                    OpSpec::Guard {
                        mask: 7,
                        then_ops: vec![
                            OpSpec::Carry {
                                op: CarryOp::Mul,
                                operand: CarryOperand::Imm(5),
                            },
                            OpSpec::Carry {
                                op: CarryOp::Xor,
                                operand: CarryOperand::Cur,
                            },
                        ],
                        else_ops: vec![],
                    },
                ],
            }),
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// 300.twolf as a spec (see [`crate::cint::twolf`]).
pub fn twolf_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "300.twolf".into(),
        description: "Annealing cell swaps: serial temperature chain, low-trip hot inner loop"
            .into(),
        kind: Kind::Int,
        base_n: 28,
        seed: 31,
        regions: vec![
            ri("cells", fixed(1024)),
            ri("netcost", fixed(512)),
            ri("scratch", n1()),
            ri("out", fixed(8)),
        ],
        phases: vec![
            fill("cells", fixed(1024), 31),
            doall("cells", "scratch", n(), 25),
            PhaseSpec::Anneal {
                cells: "cells".into(),
                table: "netcost".into(),
                out: "out".into(),
                outer: n(),
                inner: 24,
                stride: 97,
                slot_mask: 1023,
                chain: 26,
                table_mask: 511,
            },
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// 181.mcf as a spec (see [`crate::cint::mcf`]).
pub fn mcf_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "181.mcf".into(),
        description: "Network-simplex arc relaxation: shared node potentials, best-cost chain"
            .into(),
        kind: Kind::Int,
        base_n: 900,
        seed: 41,
        regions: vec![
            ri("tail", n1()),
            ri("head", n1()),
            ri("cost", n1()),
            ri("potential", fixed(512)),
            ri("flows", n1()),
            ri("out", fixed(8)),
        ],
        phases: vec![
            fill("tail", n(), 41),
            fill("head", n(), 43),
            fill("cost", n(), 47),
            doall("cost", "flows", n(), 23),
            PhaseSpec::ArcRelax {
                tail: "tail".into(),
                head: "head".into(),
                cost: "cost".into(),
                pot: "potential".into(),
                out: "out".into(),
                trips: n(),
                nodes: 512,
                chain: 22,
            },
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// 256.bzip2 as a spec (see [`crate::cint::bzip2`]).
pub fn bzip2_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "256.bzip2".into(),
        description: "Block transform: long mixing chain feeding a shared frequency table".into(),
        kind: Kind::Int,
        base_n: 1100,
        seed: 53,
        regions: vec![
            ri("block", n1()),
            ri("sorted", n1()),
            ri("freq", fixed(256)),
        ],
        phases: vec![
            fill("block", n(), 53),
            doall("block", "sorted", n(), 55),
            PhaseSpec::HotLoop(HotLoopSpec {
                trips: n(),
                input: Some("sorted".into()),
                carry: None,
                ops: vec![
                    OpSpec::Work { insts: 46 },
                    OpSpec::Table {
                        region: "freq".into(),
                        shift: 0,
                        mask: 255,
                        op: UpdateOp::Add,
                        value: UpdateValue::One,
                    },
                    OpSpec::Store {
                        region: "block".into(),
                    },
                ],
            }),
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// 183.equake as a spec (see [`crate::cfp::equake`]).
pub fn equake_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "183.equake".into(),
        description: "Seismic element kernels: serial driver around a very-low-trip FP loop".into(),
        kind: Kind::Fp,
        base_n: 60,
        seed: 61,
        regions: vec![
            rf("disp", fixed(49)),
            rf("vel", fixed(49)),
            ri("raw", n1()),
            ri("smoothed", n1()),
        ],
        phases: vec![
            fill("raw", n(), 61),
            doall("raw", "smoothed", n(), 30),
            PhaseSpec::FpElements {
                disp: "disp".into(),
                vel: "vel".into(),
                elements: n(),
                trip: 48,
            },
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// 179.art as a spec (see [`crate::cfp::art`]).
pub fn art_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "179.art".into(),
        description: "Adaptive resonance matching: in-place normalization with an FMax reduction"
            .into(),
        kind: Kind::Fp,
        base_n: 700,
        seed: 67,
        regions: vec![
            rf("f1_layer", n1()),
            ri("raw", n1()),
            ri("pre", n1()),
            rf("out", fixed(8)),
        ],
        phases: vec![
            fill("raw", n(), 67),
            doall("raw", "pre", n(), 34),
            PhaseSpec::FpNormalize {
                layer: "f1_layer".into(),
                pre: "pre".into(),
                out: "out".into(),
                count: n(),
                mask: 1023,
            },
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// 188.ammp as a spec (see [`crate::cfp::ammp`]).
pub fn ammp_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "188.ammp".into(),
        description: "Molecular-dynamics pair forces with triangular (poly2) indexing".into(),
        kind: Kind::Fp,
        base_n: 420,
        seed: 71,
        regions: vec![
            rf("atoms", CountExpr { per_n: 2, plus: 8 }),
            rf("forces", CountExpr::n_plus(8)),
            ri("raw", n1()),
            ri("neighbors", n1()),
        ],
        phases: vec![
            fill("raw", n(), 71),
            doall("raw", "neighbors", n(), 28),
            PhaseSpec::FpPairForce {
                atoms: "atoms".into(),
                forces: "forces".into(),
                count: n(),
                chain: 18,
            },
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// 177.mesa as a spec (see [`crate::cfp::mesa`]).
pub fn mesa_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "177.mesa".into(),
        description: "Span rasterization: one span in sixteen takes the heavy texture path".into(),
        kind: Kind::Fp,
        base_n: 900,
        seed: 73,
        regions: vec![rf("frame", n1()), ri("raw", n1()), ri("zbuf", n1())],
        phases: vec![
            fill("raw", n(), 73),
            doall("raw", "zbuf", n(), 26),
            PhaseSpec::FpSpan {
                frame: "frame".into(),
                zbuf: "zbuf".into(),
                count: n(),
                heavy_mask: 15,
                heavy_chain: 70,
            },
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// Novel scenario: pointer-chasing with maximal dependence density —
/// every iteration's addresses depend on shared values the previous
/// iterations mutated. Not expressible with the hand-coded suite.
pub fn chase_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "900.chase".into(),
        description: "Pointer-chasing hot loop: serial RMW hops through one shared link table"
            .into(),
        kind: Kind::Int,
        base_n: 700,
        seed: 81,
        regions: vec![
            ri("keys", n1()),
            ri("warm", n1()),
            ri("links", fixed(512)),
            ri("out", fixed(8)),
        ],
        phases: vec![
            fill("keys", n(), 81),
            doall("keys", "warm", n(), 9),
            PhaseSpec::HotLoop(HotLoopSpec {
                trips: n(),
                input: Some("warm".into()),
                carry: Some(CarrySpec {
                    init: 0,
                    out: "out".into(),
                }),
                ops: vec![
                    OpSpec::PtrChase {
                        region: "links".into(),
                        hops: 3,
                        mask: 511,
                    },
                    OpSpec::Guard {
                        mask: 1,
                        then_ops: vec![OpSpec::Carry {
                            op: CarryOp::Xor,
                            operand: CarryOperand::Cur,
                        }],
                        else_ops: vec![],
                    },
                ],
            }),
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// Novel scenario: bursty iteration lengths — most iterations are short,
/// one in sixteen runs a long inner loop, with the per-iteration length
/// table baked from a [`Distribution`] sample.
pub fn bursty_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "910.bursty".into(),
        description: "Bursty iteration-length loop from a baked Bursty(4,150,16) work table".into(),
        kind: Kind::Int,
        base_n: 600,
        seed: 83,
        regions: vec![
            ri("items", n1()),
            ri("stage", n1()),
            ri("lengths", n1()),
            ri("hist", fixed(256)),
        ],
        phases: vec![
            fill("items", n(), 83),
            doall("items", "stage", n(), 12),
            PhaseSpec::HotLoop(HotLoopSpec {
                trips: n(),
                input: Some("stage".into()),
                carry: None,
                ops: vec![
                    OpSpec::VarWork {
                        region: "lengths".into(),
                        dist: Distribution::Bursty {
                            short: 4,
                            long: 150,
                            period: 16,
                        },
                    },
                    OpSpec::Table {
                        region: "hist".into(),
                        shift: 0,
                        mask: 255,
                        op: UpdateOp::Add,
                        value: UpdateValue::One,
                    },
                ],
            }),
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// Novel scenario: uniform-length irregular mix — distribution-drawn
/// work, a single pointer hop, and a small high-collision shared table.
pub fn blend_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "920.blend".into(),
        description: "Uniform(2,40) iteration lengths, one pointer hop, high-collision table"
            .into(),
        kind: Kind::Int,
        base_n: 500,
        seed: 87,
        regions: vec![
            ri("src", n1()),
            ri("mid", n1()),
            ri("lens", n1()),
            ri("tab", fixed(128)),
            ri("links", fixed(256)),
            ri("out", fixed(8)),
        ],
        phases: vec![
            fill("src", n(), 87),
            doall("src", "mid", n(), 17),
            PhaseSpec::HotLoop(HotLoopSpec {
                trips: n(),
                input: Some("mid".into()),
                carry: Some(CarrySpec {
                    init: 5,
                    out: "out".into(),
                }),
                ops: vec![
                    OpSpec::VarWork {
                        region: "lens".into(),
                        dist: Distribution::Uniform { lo: 2, hi: 40 },
                    },
                    OpSpec::PtrChase {
                        region: "links".into(),
                        hops: 1,
                        mask: 255,
                    },
                    OpSpec::Table {
                        region: "tab".into(),
                        shift: 0,
                        mask: 127,
                        op: UpdateOp::Xor,
                        value: UpdateValue::Cur,
                    },
                    OpSpec::Guard {
                        mask: 3,
                        then_ops: vec![OpSpec::Carry {
                            op: CarryOp::Add,
                            operand: CarryOperand::Cur,
                        }],
                        else_ops: vec![],
                    },
                ],
            }),
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// Novel scenario: Zipf-tailed iteration lengths — the octave-uniform
/// heavy tail of real irregular inputs (word frequencies, degree
/// distributions): most iterations are trivial, rare ones are giants,
/// stressing iteration imbalance far beyond `910.bursty`'s two-level
/// mix.
pub fn zipf_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "930.zipf".into(),
        description: "Zipf(256)-tailed iteration lengths: mostly tiny trips, rare giants".into(),
        kind: Kind::Int,
        base_n: 600,
        seed: 91,
        regions: vec![
            ri("items", n1()),
            ri("stage", n1()),
            ri("lens", n1()),
            ri("tab", fixed(256)),
            ri("out", fixed(8)),
        ],
        phases: vec![
            fill("items", n(), 91),
            doall("items", "stage", n(), 10),
            PhaseSpec::HotLoop(HotLoopSpec {
                trips: n(),
                input: Some("stage".into()),
                carry: Some(CarrySpec {
                    init: 3,
                    out: "out".into(),
                }),
                ops: vec![
                    OpSpec::VarWork {
                        region: "lens".into(),
                        dist: Distribution::Zipf { max: 256 },
                    },
                    OpSpec::Table {
                        region: "tab".into(),
                        shift: 0,
                        mask: 255,
                        op: UpdateOp::Xor,
                        value: UpdateValue::Cur,
                    },
                    OpSpec::Guard {
                        mask: 7,
                        then_ops: vec![OpSpec::Carry {
                            op: CarryOp::Add,
                            operand: CarryOperand::Cur,
                        }],
                        else_ops: vec![],
                    },
                ],
            }),
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// Novel scenario: phase-change behavior — the loop alternates between
/// contiguous light and heavy regimes every 64 iterations (SimPoint-like
/// program phases), so any single-phase profile mispredicts half the
/// run.
pub fn phase_change_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "940.phase".into(),
        description: "Phase-change loop: work flips between 3 and 60 units every 64 trips".into(),
        kind: Kind::Int,
        base_n: 600,
        seed: 93,
        regions: vec![
            ri("src", n1()),
            ri("mid", n1()),
            ri("lens", n1()),
            ri("hist", fixed(128)),
            ri("out", fixed(8)),
        ],
        phases: vec![
            fill("src", n(), 93),
            doall("src", "mid", n(), 11),
            PhaseSpec::HotLoop(HotLoopSpec {
                trips: n(),
                input: Some("mid".into()),
                carry: Some(CarrySpec {
                    init: 1,
                    out: "out".into(),
                }),
                ops: vec![
                    OpSpec::VarWork {
                        region: "lens".into(),
                        dist: Distribution::PhaseChange {
                            low: 3,
                            high: 60,
                            period: 64,
                        },
                    },
                    OpSpec::Table {
                        region: "hist".into(),
                        shift: 0,
                        mask: 127,
                        op: UpdateOp::Add,
                        value: UpdateValue::One,
                    },
                    OpSpec::Guard {
                        mask: 3,
                        then_ops: vec![OpSpec::Carry {
                            op: CarryOp::Xor,
                            operand: CarryOperand::Cur,
                        }],
                        else_ops: vec![],
                    },
                ],
            }),
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// Multi-nest scenario: two hot loop nests separated by serial glue,
/// with carried state flowing from the first nest's carry output into
/// the second nest's glue accumulator, and per-nest private regions.
pub fn twonest_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "950.twonest".into(),
        description: "Two hot nests: histogram build, glue, then pointer-chasing scan seeded by \
                      the build's carry"
            .into(),
        kind: Kind::Int,
        base_n: 600,
        seed: 95,
        regions: vec![
            ri("src", n1()),
            ri("bridge", fixed(8)),
            ri("hist", fixed(256)),
            ri("out", fixed(8)),
        ],
        phases: vec![],
        nests: vec![
            NestSpec {
                name: "build".into(),
                glue: fixed(0),
                import: None,
                export: Some("bridge".into()),
                regions: vec![ri("stage", n1())],
                phases: vec![
                    fill("src", n(), 95),
                    doall("src", "stage", n(), 12),
                    PhaseSpec::HotLoop(HotLoopSpec {
                        trips: n(),
                        input: Some("stage".into()),
                        carry: Some(CarrySpec {
                            init: 1,
                            out: "bridge".into(),
                        }),
                        ops: vec![
                            OpSpec::Table {
                                region: "hist".into(),
                                shift: 0,
                                mask: 255,
                                op: UpdateOp::Add,
                                value: UpdateValue::One,
                            },
                            OpSpec::Guard {
                                mask: 3,
                                then_ops: vec![OpSpec::Carry {
                                    op: CarryOp::Add,
                                    operand: CarryOperand::Cur,
                                }],
                                else_ops: vec![],
                            },
                        ],
                    }),
                ],
            },
            NestSpec {
                name: "scan".into(),
                glue: fixed(400),
                import: None,
                export: None,
                regions: vec![ri("links", fixed(1024))],
                phases: vec![
                    fill("links", fixed(1024), 96),
                    PhaseSpec::HotLoop(HotLoopSpec {
                        trips: n(),
                        input: Some("src".into()),
                        carry: Some(CarrySpec {
                            init: 5,
                            out: "out".into(),
                        }),
                        ops: vec![
                            OpSpec::Work { insts: 6 },
                            OpSpec::PtrChase {
                                region: "links".into(),
                                hops: 2,
                                mask: 1023,
                            },
                            OpSpec::Guard {
                                mask: 1,
                                then_ops: vec![OpSpec::Carry {
                                    op: CarryOp::Xor,
                                    operand: CarryOperand::Cur,
                                }],
                                else_ops: vec![OpSpec::Carry {
                                    op: CarryOp::Add,
                                    operand: CarryOperand::Cur,
                                }],
                            },
                        ],
                    }),
                ],
            },
        ],
        run: RunSpec::default(),
    }
}

/// One member of the coverage sweep family: two identical-shape hot
/// nests whose serial glue scales with `n` by `glue_per_n`, so the
/// fraction of the program the parallelized nests cover is a data-file
/// knob. Committed at three weights (960/961/962) to draw the
/// speedup-vs-coverage curve.
fn coverage_family_spec(name: &str, tag: &str, glue_per_n: i64) -> ScenarioSpec {
    let glue = CountExpr {
        per_n: glue_per_n,
        plus: 0,
    };
    ScenarioSpec {
        name: name.into(),
        description: format!(
            "Coverage sweep ({tag}): two hot nests with {glue_per_n}n serial glue iterations each"
        ),
        kind: Kind::Int,
        base_n: 600,
        seed: 96,
        regions: vec![ri("src", n1()), ri("hist", fixed(512)), ri("out", fixed(8))],
        phases: vec![],
        nests: vec![
            NestSpec {
                name: "upper".into(),
                glue,
                import: None,
                export: None,
                regions: vec![ri("stage", n1())],
                phases: vec![
                    fill("src", n(), 96),
                    doall("src", "stage", n(), 10),
                    PhaseSpec::HotLoop(HotLoopSpec {
                        trips: n(),
                        input: Some("stage".into()),
                        carry: None,
                        ops: vec![
                            OpSpec::Work { insts: 8 },
                            OpSpec::Table {
                                region: "hist".into(),
                                shift: 0,
                                mask: 511,
                                op: UpdateOp::Xor,
                                value: UpdateValue::Cur,
                            },
                        ],
                    }),
                ],
            },
            NestSpec {
                name: "lower".into(),
                glue,
                import: None,
                export: None,
                regions: vec![],
                phases: vec![PhaseSpec::HotLoop(HotLoopSpec {
                    trips: n(),
                    input: Some("src".into()),
                    carry: Some(CarrySpec {
                        init: 7,
                        out: "out".into(),
                    }),
                    ops: vec![
                        OpSpec::Work { insts: 10 },
                        OpSpec::Table {
                            region: "hist".into(),
                            shift: 3,
                            mask: 511,
                            op: UpdateOp::Add,
                            value: UpdateValue::One,
                        },
                        OpSpec::Guard {
                            mask: 7,
                            then_ops: vec![OpSpec::Carry {
                                op: CarryOp::Add,
                                operand: CarryOperand::Cur,
                            }],
                            else_ops: vec![],
                        },
                    ],
                })],
            },
        ],
        run: RunSpec::default(),
    }
}

/// High-coverage member of the sweep family (light glue).
pub fn coverage_hi_spec() -> ScenarioSpec {
    coverage_family_spec("960.cov_hi", "high coverage", 1)
}

/// Mid-coverage member of the sweep family.
pub fn coverage_mid_spec() -> ScenarioSpec {
    coverage_family_spec("961.cov_mid", "medium coverage", 5)
}

/// Low-coverage member of the sweep family (glue dominates).
pub fn coverage_lo_spec() -> ScenarioSpec {
    coverage_family_spec("962.cov_lo", "low coverage", 18)
}

/// Multi-nest scenario: a three-stage pipeline whose nests are chained
/// by carried state (`export`/`import`) through shared scalar regions —
/// each stage's result seeds the serial glue of the next.
pub fn pipeline_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "970.pipeline".into(),
        description: "Three-nest pipeline: ingest -> transform -> emit, chained by exported \
                      carries through shared scalars"
            .into(),
        kind: Kind::Int,
        base_n: 600,
        seed: 97,
        regions: vec![
            ri("raw", n1()),
            ri("relay", fixed(8)),
            ri("seedbox", fixed(8)),
            ri("hist", fixed(512)),
            ri("out", fixed(8)),
        ],
        phases: vec![],
        nests: vec![
            NestSpec {
                name: "ingest".into(),
                glue: fixed(0),
                import: None,
                export: Some("relay".into()),
                regions: vec![ri("buf", n1())],
                phases: vec![
                    fill("raw", n(), 97),
                    doall("raw", "buf", n(), 9),
                    PhaseSpec::HotLoop(HotLoopSpec {
                        trips: n(),
                        input: Some("buf".into()),
                        carry: Some(CarrySpec {
                            init: 3,
                            out: "relay".into(),
                        }),
                        ops: vec![
                            OpSpec::Table {
                                region: "hist".into(),
                                shift: 0,
                                mask: 511,
                                op: UpdateOp::Add,
                                value: UpdateValue::One,
                            },
                            OpSpec::Carry {
                                op: CarryOp::Add,
                                operand: CarryOperand::Cur,
                            },
                        ],
                    }),
                ],
            },
            NestSpec {
                name: "transform".into(),
                glue: fixed(250),
                import: Some("seedbox".into()),
                export: Some("relay".into()),
                regions: vec![],
                phases: vec![PhaseSpec::HotLoop(HotLoopSpec {
                    trips: n(),
                    input: Some("raw".into()),
                    carry: Some(CarrySpec {
                        init: 2,
                        out: "relay".into(),
                    }),
                    ops: vec![
                        OpSpec::Work { insts: 5 },
                        OpSpec::Table {
                            region: "hist".into(),
                            shift: 4,
                            mask: 511,
                            op: UpdateOp::Xor,
                            value: UpdateValue::Cur,
                        },
                        OpSpec::Guard {
                            mask: 3,
                            then_ops: vec![OpSpec::Carry {
                                op: CarryOp::Mul,
                                operand: CarryOperand::Imm(3),
                            }],
                            else_ops: vec![OpSpec::Carry {
                                op: CarryOp::Xor,
                                operand: CarryOperand::Cur,
                            }],
                        },
                    ],
                })],
            },
            NestSpec {
                name: "emit".into(),
                glue: fixed(250),
                import: None,
                export: None,
                regions: vec![ri("links", fixed(512))],
                phases: vec![
                    fill("links", fixed(512), 98),
                    PhaseSpec::HotLoop(HotLoopSpec {
                        trips: n(),
                        input: Some("raw".into()),
                        carry: Some(CarrySpec {
                            init: 4095,
                            out: "out".into(),
                        }),
                        ops: vec![
                            OpSpec::PtrChase {
                                region: "links".into(),
                                hops: 1,
                                mask: 511,
                            },
                            OpSpec::Carry {
                                op: CarryOp::Min,
                                operand: CarryOperand::Cur,
                            },
                        ],
                    }),
                ],
            },
        ],
        run: RunSpec::default(),
    }
}

/// 1000-series server-traffic scenario: open-loop request arrivals over
/// a zipf-popular object table. Each iteration is one arrival slot —
/// Binomial-arrival request counts drive the per-trip work while every
/// request bumps a shared hot-object table — so load does **not**
/// self-limit: bursts of simultaneous arrivals pile work into single
/// iterations exactly as an open-loop load generator piles requests
/// onto a server, the regime explore's frontier search flagged for
/// maximal iteration imbalance.
pub fn openloop_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "1000.openloop".into(),
        description: "Open-loop server load: Binomial(mean 3) arrivals per slot, zipf-popular \
                      shared object table"
            .into(),
        kind: Kind::Int,
        base_n: 600,
        seed: 101,
        regions: vec![
            ri("slots", n1()),
            ri("stage", n1()),
            ri("load", n1()),
            ri("objects", fixed(256)),
            ri("out", fixed(8)),
        ],
        phases: vec![
            fill("slots", n(), 101),
            doall("slots", "stage", n(), 10),
            PhaseSpec::HotLoop(HotLoopSpec {
                trips: n(),
                input: Some("stage".into()),
                carry: Some(CarrySpec {
                    init: 0,
                    out: "out".into(),
                }),
                ops: vec![
                    OpSpec::VarWork {
                        region: "load".into(),
                        dist: Distribution::OpenLoop {
                            mean: 3,
                            service: 8,
                        },
                    },
                    OpSpec::Table {
                        region: "objects".into(),
                        shift: 0,
                        mask: 255,
                        op: UpdateOp::Add,
                        value: UpdateValue::One,
                    },
                    OpSpec::Guard {
                        mask: 7,
                        then_ops: vec![OpSpec::Carry {
                            op: CarryOp::Add,
                            operand: CarryOperand::Cur,
                        }],
                        else_ops: vec![],
                    },
                ],
            }),
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// 1000-series server-traffic scenario: closed-loop load in a two-nest
/// pipeline. The `admit` nest runs a fixed client population (at most
/// `users` outstanding requests — load self-limits, the classic
/// contrast to [`openloop_spec`]) and exports its session digest; the
/// `settle` nest drains a shared ledger seeded by that digest. The
/// closed/open pair makes the load-generation distinction measurable:
/// same service cost, different arrival law, different imbalance.
pub fn closedloop_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "1010.closedloop".into(),
        description: "Closed-loop server load: 24-user think/request population feeding a \
                      ledger-settling drain nest"
            .into(),
        kind: Kind::Int,
        base_n: 600,
        seed: 103,
        regions: vec![
            ri("src", n1()),
            ri("digest", fixed(8)),
            ri("sessions", fixed(128)),
            ri("out", fixed(8)),
        ],
        phases: vec![],
        nests: vec![
            NestSpec {
                name: "admit".into(),
                glue: fixed(0),
                import: None,
                export: Some("digest".into()),
                regions: vec![ri("stage", n1()), ri("load", n1())],
                phases: vec![
                    fill("src", n(), 103),
                    doall("src", "stage", n(), 9),
                    PhaseSpec::HotLoop(HotLoopSpec {
                        trips: n(),
                        input: Some("stage".into()),
                        carry: Some(CarrySpec {
                            init: 1,
                            out: "digest".into(),
                        }),
                        ops: vec![
                            OpSpec::VarWork {
                                region: "load".into(),
                                dist: Distribution::ClosedLoop {
                                    users: 24,
                                    think: 6,
                                    service: 8,
                                },
                            },
                            OpSpec::Table {
                                region: "sessions".into(),
                                shift: 0,
                                mask: 127,
                                op: UpdateOp::Xor,
                                value: UpdateValue::Cur,
                            },
                            OpSpec::Guard {
                                mask: 3,
                                then_ops: vec![OpSpec::Carry {
                                    op: CarryOp::Add,
                                    operand: CarryOperand::Cur,
                                }],
                                else_ops: vec![],
                            },
                        ],
                    }),
                ],
            },
            NestSpec {
                name: "settle".into(),
                glue: fixed(300),
                import: None,
                export: None,
                regions: vec![ri("ledger", fixed(512))],
                phases: vec![
                    fill("ledger", fixed(512), 104),
                    PhaseSpec::HotLoop(HotLoopSpec {
                        trips: n(),
                        input: Some("src".into()),
                        carry: Some(CarrySpec {
                            init: 7,
                            out: "out".into(),
                        }),
                        ops: vec![
                            OpSpec::Work { insts: 5 },
                            OpSpec::PtrChase {
                                region: "ledger".into(),
                                hops: 2,
                                mask: 511,
                            },
                            OpSpec::Guard {
                                mask: 1,
                                then_ops: vec![OpSpec::Carry {
                                    op: CarryOp::Xor,
                                    operand: CarryOperand::Cur,
                                }],
                                else_ops: vec![OpSpec::Carry {
                                    op: CarryOp::Add,
                                    operand: CarryOperand::Cur,
                                }],
                            },
                        ],
                    }),
                ],
            },
        ],
        run: RunSpec::default(),
    }
}

/// 1000-series server-traffic scenario: the p99 tail regime. Most slots
/// hit hot cached objects at a flat base cost, but roughly one in
/// sixteen misses to a cold object whose extra cost is zipf-distributed
/// — rare giants dominate the latency distribution, the
/// tail-at-scale shape that defeats mean-based profiles harder than
/// `910.bursty`'s fixed two-level mix.
pub fn tailburst_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "1020.tailburst".into(),
        description: "Tail-latency server load: hot hits cost 4, one slot in 16 pays a \
                      Zipf(128) cold miss"
            .into(),
        kind: Kind::Int,
        base_n: 600,
        seed: 105,
        regions: vec![
            ri("slots", n1()),
            ri("stage", n1()),
            ri("lat", n1()),
            ri("cache", fixed(256)),
            ri("out", fixed(8)),
        ],
        phases: vec![
            fill("slots", n(), 105),
            doall("slots", "stage", n(), 11),
            PhaseSpec::HotLoop(HotLoopSpec {
                trips: n(),
                input: Some("stage".into()),
                carry: Some(CarrySpec {
                    init: 3,
                    out: "out".into(),
                }),
                ops: vec![
                    OpSpec::VarWork {
                        region: "lat".into(),
                        dist: Distribution::TailBurst {
                            base: 4,
                            max: 128,
                            period: 16,
                        },
                    },
                    OpSpec::Table {
                        region: "cache".into(),
                        shift: 0,
                        mask: 255,
                        op: UpdateOp::Xor,
                        value: UpdateValue::Cur,
                    },
                    OpSpec::Guard {
                        mask: 7,
                        then_ops: vec![OpSpec::Carry {
                            op: CarryOp::Add,
                            operand: CarryOperand::Cur,
                        }],
                        else_ops: vec![],
                    },
                ],
            }),
        ],
        nests: vec![],
        run: RunSpec::default(),
    }
}

/// All built-in scenario specs: the ten SPEC stand-ins in the paper's
/// reporting order, then the novel scenarios, then the multi-nest
/// families, then the 1000-series server-traffic family.
pub fn builtin_specs() -> Vec<ScenarioSpec> {
    vec![
        gzip_spec(),
        vpr_spec(),
        parser_spec(),
        twolf_spec(),
        mcf_spec(),
        bzip2_spec(),
        equake_spec(),
        art_spec(),
        ammp_spec(),
        mesa_spec(),
        chase_spec(),
        bursty_spec(),
        blend_spec(),
        zipf_spec(),
        phase_change_spec(),
        twonest_spec(),
        coverage_hi_spec(),
        coverage_mid_spec(),
        coverage_lo_spec(),
        pipeline_spec(),
        openloop_spec(),
        closedloop_spec(),
        tailburst_spec(),
    ]
}

/// Look up a built-in spec by scenario name.
pub fn builtin_spec(name: &str) -> Option<ScenarioSpec> {
    builtin_specs().into_iter().find(|s| s.name == name)
}
