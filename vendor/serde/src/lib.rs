//! Offline stand-in for `serde`.
//!
//! The workspace tags its result types with `Serialize`/`Deserialize` so
//! they can be exported once a real serializer is available; in this
//! network-isolated build the traits are inert markers and the derives
//! (re-exported from the sibling `serde_derive` stub) emit empty impls.
//! Swapping in the real crates requires no source changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}
