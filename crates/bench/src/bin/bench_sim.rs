//! Simulator performance harness: measures cycles simulated per
//! wall-second per workload, and the end-to-end runtime of the
//! `decoupling_lattice` + `sweep_core_count` experiments, each in two
//! configurations:
//!
//! * **naive** — the per-cycle loop (`fast_forward` disabled) with every
//!   sweep point run serially, reproducing the pre-optimization code
//!   structure;
//! * **optimized** — the event-skipping fast-forward plus parallel
//!   sweeps, as shipped.
//!
//! Results are written to `BENCH_sim.json` so the perf trajectory is
//! tracked across PRs.
//!
//! ```text
//! cargo run --release -p helix-bench --bin bench_sim            # writes BENCH_sim.json
//! cargo run --release -p helix-bench --bin bench_sim -- fresh.json
//! ```
//!
//! An optional positional argument overrides the output path, so CI can
//! measure into a scratch file and diff against the committed baseline
//! with the `perf_gate` binary. `--attribution` adds a per-stall-cause
//! cycle breakdown (the Fig. 12 buckets) of every helix-rc-16 workload
//! run to the JSON — the profile that shows where the ring-path cycles
//! go.

use helix_rc::campaign::{load_campaign, run_campaign_stats, CampaignRunOptions};
use helix_rc::experiment::{
    decoupling_lattice, sweep_core_count, ExperimentOptions, LatticePoint, FUEL,
};
use helix_rc::hcc::{compile, HccConfig};
use helix_rc::report::json_escape;
use helix_rc::sim::{simulate, simulate_sequential, Bucket, EngineSel, MachineConfig, SimSession};
use helix_rc::workloads::{cint_suite, Scale, Workload};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

const SWEEP_COUNTS: [usize; 4] = [2, 4, 8, 16];
/// Repetitions per measurement; the minimum is reported to damp noise.
const REPS: usize = 5;

fn timed<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct WorkloadRow {
    name: String,
    config: &'static str,
    cycles: u64,
    naive_secs: f64,
    fast_secs: f64,
    /// Per-stall-cause cycle totals of the measured run, in
    /// [`Bucket::ALL`] order (emitted only under `--attribution`).
    stall_cycles: Vec<(&'static str, u64)>,
}

impl WorkloadRow {
    fn speedup(&self) -> f64 {
        self.naive_secs / self.fast_secs
    }
    fn fast_cps(&self) -> f64 {
        self.cycles as f64 / self.fast_secs
    }
    fn naive_cps(&self) -> f64 {
        self.cycles as f64 / self.naive_secs
    }
}

/// Per-workload simulator throughput, naive vs fast, on the three
/// machine shapes the experiments exercise.
///
/// Two passes: every fast-path measurement happens before any naive
/// one, so the long tree-interpreter runs cannot thermally degrade the
/// fast numbers the perf gate tracks.
fn workload_rows(ws: &[Workload]) -> Vec<WorkloadRow> {
    let shapes: [(&'static str, MachineConfig, bool); 3] = [
        ("conventional-16", MachineConfig::conventional(16), true),
        ("helix-rc-16", MachineConfig::helix_rc(16), true),
        ("sequential-16", MachineConfig::conventional(16), false),
    ];
    let compiled: Vec<_> = ws
        .iter()
        .map(|w| compile(&w.program, &HccConfig::v3(16)).expect(&w.name))
        .collect();
    let run = |wi: usize, cfg: &MachineConfig, parallel: bool| {
        let w = &ws[wi];
        if parallel {
            simulate(&compiled[wi], cfg, FUEL).expect(&w.name)
        } else {
            simulate_sequential(&w.program, cfg, FUEL).expect(&w.name)
        }
    };

    // Pass 1: fast path only (remembering each run's digest for the
    // exactness assertion below).
    let mut rows = Vec::new();
    let mut digests = Vec::new();
    for (wi, w) in ws.iter().enumerate() {
        for (label, cfg, parallel) in &shapes {
            let fast = run(wi, cfg, *parallel);
            let fast_secs = timed(|| {
                run(wi, cfg, *parallel);
            });
            rows.push(WorkloadRow {
                name: w.name.clone(),
                config: label,
                cycles: fast.cycles,
                naive_secs: 0.0,
                fast_secs,
                stall_cycles: Bucket::ALL
                    .iter()
                    .map(|&b| (b.label(), fast.attribution.total(b)))
                    .collect(),
            });
            digests.push(fast.mem_digest);
        }
    }

    // Pass 2: the naive baseline — the pre-optimization implementation,
    // i.e. the tree-walking interpreter driving the per-cycle loop —
    // plus the runtime cycle-exactness assertion against the fast path.
    let mut row = 0;
    for (wi, w) in ws.iter().enumerate() {
        for (label, cfg, parallel) in &shapes {
            let naive_cfg = cfg
                .clone()
                .with_engine(EngineSel::Tree)
                .without_fast_forward();
            let naive = run(wi, &naive_cfg, *parallel);
            assert_eq!(
                rows[row].cycles, naive.cycles,
                "{}: {label} not cycle-exact",
                w.name
            );
            assert_eq!(digests[row], naive.mem_digest, "{}: {label} digest", w.name);
            rows[row].naive_secs = timed(|| {
                run(wi, &naive_cfg, *parallel);
            });
            row += 1;
        }
    }
    rows
}

/// The pre-optimization shape of `decoupling_lattice` +
/// `sweep_core_count`: serial loops over sweep points, naive cycle loop.
fn lattice_sweep_naive(ws: &[Workload]) {
    for w in ws {
        let _seq = simulate_sequential(
            &w.program,
            &MachineConfig::conventional(16).without_fast_forward(),
            FUEL,
        )
        .expect(&w.name);
        for point in LatticePoint::ALL {
            let compiled = compile(&w.program, &point.compiler(16)).expect(&w.name);
            let cfg = point.machine(16).without_fast_forward();
            simulate(&compiled, &cfg, FUEL).expect(&w.name);
        }
        for &cores in &SWEEP_COUNTS {
            let compiled = compile(&w.program, &HccConfig::v3(cores as u32)).expect(&w.name);
            simulate_sequential(
                &w.program,
                &MachineConfig::conventional(cores).without_fast_forward(),
                FUEL,
            )
            .expect(&w.name);
            let cfg = MachineConfig::helix_rc(cores).without_fast_forward();
            simulate(&compiled, &cfg, FUEL).expect(&w.name);
        }
    }
}

/// The shipped experiment runners (event-skipping + parallel sweeps).
fn lattice_sweep_optimized(ws: &[Workload]) {
    let opts = ExperimentOptions::default();
    for w in ws {
        decoupling_lattice(w, 16, &opts).expect(&w.name);
        sweep_core_count(w, &SWEEP_COUNTS, &opts).expect(&w.name);
    }
}

/// Wall-clock of the `full` campaign profile (every committed scenario,
/// headline experiment grid) at its native full scale, in three
/// execution modes:
///
/// * **before** — per-cell runs on the tree-walking interpreter with
///   the naive one-cycle-at-a-time loop (no event-skipping
///   fast-forward): the pre-optimization structure, every cell
///   compiling and simulating everything itself on the naive engine —
///   the same "before" convention every workload row uses;
/// * **percell_decoded** — per-cell runs on the decoded engine, i.e.
///   the shipped pre-lane behaviour (`--lanes 1`);
/// * **after** — batched lanes (`--lanes 8`): per-scenario shared
///   compile/decode/report cache plus lockstep lane stepping.
///
/// All three reports are asserted byte-identical before any number is
/// reported — the lane-exactness property, enforced at measurement
/// time.
fn campaign_full_times() -> (f64, f64, f64) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../campaigns/full.toml");
    let (spec, scenarios) = load_campaign(Path::new(path)).expect("load campaigns/full.toml");
    // The spec's native full scale: Test-scale cells are so small that
    // compile time dominates and the engine/batching deltas this row
    // exists to track disappear into the noise.
    let run = |options: &CampaignRunOptions| {
        let t0 = Instant::now();
        let (report, _) = run_campaign_stats(&spec, &scenarios, options).expect("full campaign");
        (t0.elapsed().as_secs_f64(), report.to_json())
    };
    let (after_secs, after_json) = run(&CampaignRunOptions {
        lanes: 8,
        ..CampaignRunOptions::default()
    });
    let (percell_secs, percell_json) = run(&CampaignRunOptions::default());
    let (before_secs, before_json) = run(&CampaignRunOptions {
        engine: Some(EngineSel::Tree),
        fast_forward: false,
        ..CampaignRunOptions::default()
    });
    assert_eq!(
        after_json, percell_json,
        "batched campaign report differs from per-cell decoded run"
    );
    assert_eq!(
        after_json, before_json,
        "batched campaign report differs from per-cell tree run"
    );
    (before_secs, percell_secs, after_secs)
}

/// The `sim/session_drain` criterion scenario, measured into the
/// snapshot: a mixed four-lane batch of 175.vpr (2× helix-rc-16 +
/// 2× conventional-16) drained through one warm [`SimSession`] —
/// shared decode, next-event-heap scheduling, machine-pool recycling —
/// vs the same four simulations run standalone. Returns
/// `(standalone_secs, session_secs)`.
fn session_drain_times(ws: &[Workload]) -> Option<(f64, f64)> {
    let w = ws.iter().find(|w| w.name == "175.vpr")?;
    let compiled = compile(&w.program, &HccConfig::v3(16)).expect(&w.name);
    let standalone_secs = timed(|| {
        for _ in 0..2 {
            simulate(&compiled, &MachineConfig::helix_rc(16), FUEL).expect(&w.name);
            simulate(&compiled, &MachineConfig::conventional(16), FUEL).expect(&w.name);
        }
    });
    let mut session = SimSession::new(&compiled.program, &compiled.plans);
    // One untimed drain warms the shared decode and the machine pool,
    // matching the steady state a campaign batch runs in.
    session.enqueue(MachineConfig::helix_rc(16), FUEL);
    session.enqueue(MachineConfig::conventional(16), FUEL);
    for lane in session.drain() {
        lane.result.expect(&w.name);
    }
    let session_secs = timed(|| {
        for _ in 0..2 {
            session.enqueue(MachineConfig::helix_rc(16), FUEL);
            session.enqueue(MachineConfig::conventional(16), FUEL);
        }
        for lane in session.drain() {
            lane.result.expect(&w.name);
        }
    });
    Some((standalone_secs, session_secs))
}

/// Median of `values` (not empty).
fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

fn main() {
    let mut attribution = false;
    let mut out_path = "BENCH_sim.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--attribution" => attribution = true,
            other if other.starts_with("--") => {
                eprintln!("bench_sim: unknown option '{other}'");
                std::process::exit(2);
            }
            other => out_path = other.to_string(),
        }
    }
    let ws = cint_suite(Scale::Test);
    eprintln!(
        "measuring per-workload simulator throughput ({} workloads)...",
        ws.len()
    );
    let rows = workload_rows(&ws);

    eprintln!("measuring decoupling_lattice + sweep_core_count end-to-end...");
    let before_secs = timed(|| lattice_sweep_naive(&ws));
    let after_secs = timed(|| lattice_sweep_optimized(&ws));

    eprintln!("measuring session drain vs standalone runs...");
    let drain = session_drain_times(&ws);

    eprintln!("measuring full-profile campaign wall-clock (tree / per-cell / batched)...");
    let (cf_before, cf_percell, cf_after) = campaign_full_times();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"harness\": \"bench_sim\",");
    let _ = writeln!(json, "  \"scale\": \"Test\",");
    let _ = writeln!(json, "  \"host_threads\": {threads},");
    let _ = writeln!(json, "  \"reps_min_of\": {REPS},");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"config\": \"{}\", \"cycles\": {}, \
             \"naive_secs\": {:.6}, \"fast_secs\": {:.6}, \
             \"naive_cycles_per_sec\": {:.0}, \"fast_cycles_per_sec\": {:.0}, \
             \"speedup\": {:.3}}}",
            json_escape(&r.name),
            r.config,
            r.cycles,
            r.naive_secs,
            r.fast_secs,
            r.naive_cps(),
            r.fast_cps(),
            r.speedup()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Optional per-stall-cause breakdown of every helix-rc-16 run: the
    // ring-path profile (where each workload's cycles actually go),
    // straight from the simulator's Fig. 12 attribution counters.
    if attribution {
        let attr_rows: Vec<&WorkloadRow> =
            rows.iter().filter(|r| r.config == "helix-rc-16").collect();
        json.push_str("  \"attribution\": [\n");
        for (i, r) in attr_rows.iter().enumerate() {
            let buckets = r
                .stall_cycles
                .iter()
                .map(|(label, cycles)| format!("\"{}\": {cycles}", json_escape(label)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"config\": \"helix-rc-16\", \"buckets\": {{{buckets}}}}}",
                json_escape(&r.name)
            );
            json.push_str(if i + 1 < attr_rows.len() { ",\n" } else { "\n" });
        }
        json.push_str("  ],\n");
    }
    // Per-config fast-path throughput medians. The perf gate tracks
    // these (median-normalized) so a regression confined to one machine
    // shape — above all the dominant helix-rc configuration — cannot
    // hide behind healthy numbers elsewhere.
    json.push_str("  \"config_medians\": {");
    let configs = ["conventional-16", "helix-rc-16", "sequential-16"];
    for (i, cfg) in configs.iter().enumerate() {
        let m = median(
            rows.iter()
                .filter(|r| r.config == *cfg)
                .map(|r| r.fast_cps())
                .collect(),
        );
        let _ = write!(
            json,
            "{}\"{}\": {:.0}",
            if i > 0 { ", " } else { "" },
            cfg,
            m
        );
    }
    json.push_str("},\n");
    // The `sim/cycles_per_sec` criterion bench scenario (175.vpr, HCCv3
    // code on the conventional 16-core machine — Fig. 9's "C" bar):
    // surfaced here so the before/after of the headline bench is tracked
    // alongside the rest.
    if let Some(r) = rows
        .iter()
        .find(|r| r.name == "175.vpr" && r.config == "conventional-16")
    {
        let _ = writeln!(
            json,
            "  \"criterion_sim_cycles_per_sec\": {{\"workload\": \"175.vpr\", \
             \"config\": \"conventional-16\", \"before_cycles_per_sec\": {:.0}, \
             \"after_cycles_per_sec\": {:.0}, \"speedup\": {:.3}}},",
            r.naive_cps(),
            r.fast_cps(),
            r.speedup()
        );
    }
    // The `sim/helix_rc_cycles_per_sec` criterion bench scenario
    // (175.vpr on the HELIX-RC 16-core machine — the configuration
    // every headline figure simulates): naive vs fast throughput.
    if let Some(r) = rows
        .iter()
        .find(|r| r.name == "175.vpr" && r.config == "helix-rc-16")
    {
        let _ = writeln!(
            json,
            "  \"criterion_sim_helix_rc_cycles_per_sec\": {{\"workload\": \"175.vpr\", \
             \"config\": \"helix-rc-16\", \"before_cycles_per_sec\": {:.0}, \
             \"after_cycles_per_sec\": {:.0}, \"speedup\": {:.3}}},",
            r.naive_cps(),
            r.fast_cps(),
            r.speedup()
        );
    }
    // The `sim/session_drain` criterion bench scenario: a mixed batch
    // drained through one warm session vs the same runs standalone.
    if let Some((standalone_secs, session_secs)) = drain {
        let _ = writeln!(
            json,
            "  \"criterion_sim_session_drain\": {{\"workload\": \"175.vpr\", \
             \"lanes\": 4, \"standalone_secs\": {:.6}, \"session_secs\": {:.6}, \
             \"speedup\": {:.3}}},",
            standalone_secs,
            session_secs,
            standalone_secs / session_secs
        );
    }
    let _ = writeln!(
        json,
        "  \"lattice_plus_sweep\": {{\"before_secs\": {:.6}, \"after_secs\": {:.6}, \"speedup\": {:.3}}},",
        before_secs,
        after_secs,
        before_secs / after_secs
    );
    // Full-profile campaign wall-clock: per-cell tree interpreter
    // (naive before) vs batched lanes (after), with the per-cell
    // decoded time recorded so the dedup-only contribution is visible.
    // The perf gate requires `speedup` >= 2.5x on every PR (an
    // absolute floor calibrated to single-CPU hosts, where the naive
    // baseline runs comparatively faster; see perf_gate.rs).
    let _ = writeln!(
        json,
        "  \"campaign_full\": {{\"profile\": \"full\", \"scale\": \"Full\", \
         \"before_secs\": {:.6}, \"percell_decoded_secs\": {:.6}, \"after_secs\": {:.6}, \
         \"speedup\": {:.3}, \"dedup_speedup\": {:.3}}},",
        cf_before,
        cf_percell,
        cf_after,
        cf_before / cf_after,
        cf_percell / cf_after
    );
    let total_naive: f64 = rows.iter().map(|r| r.naive_secs).sum();
    let total_fast: f64 = rows.iter().map(|r| r.fast_secs).sum();
    let _ = writeln!(
        json,
        "  \"workload_totals\": {{\"naive_secs\": {:.6}, \"fast_secs\": {:.6}, \"speedup\": {:.3}}}",
        total_naive,
        total_fast,
        total_naive / total_fast
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("{json}");
    eprintln!(
        "lattice+sweep: {before_secs:.2}s -> {after_secs:.2}s ({:.2}x); \
         campaign_full: {cf_before:.2}s -> {cf_after:.2}s ({:.2}x); wrote {out_path}",
        before_secs / after_secs,
        cf_before / cf_after
    );
}
