//! Runtime race detection: validates the compiler's guarantees.
//!
//! During a parallel loop, any word touched by two different cores (with
//! at least one writer) must be accessed exclusively through shared-tagged
//! instructions of one segment, inside that segment's wait/signal window.
//! Violations indicate a compiler bug (or deliberately corrupted plans in
//! the failure-injection tests).

use helix_ir::{SegmentId, SharedTag};
use std::collections::BTreeMap;

/// A detected violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceViolation {
    /// Two cores touched the same word outside a common segment.
    UnprotectedSharing {
        /// Word address.
        addr: u64,
        /// First core.
        a: usize,
        /// Second core.
        b: usize,
    },
    /// A shared-tagged access executed outside its wait/signal window.
    OutsideSegment {
        /// Core at fault.
        core: usize,
        /// The segment of the tag.
        seg: SegmentId,
    },
}

impl std::fmt::Display for RaceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceViolation::UnprotectedSharing { addr, a, b } => {
                write!(f, "cores {a} and {b} race on word {addr:#x}")
            }
            RaceViolation::OutsideSegment { core, seg } => {
                write!(f, "core {core} accessed {seg} data outside its window")
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct WordState {
    /// Core of the last conflicting toucher (writer, or reader awaiting a
    /// writer).
    core: usize,
    wrote: bool,
    seg: Option<SegmentId>,
}

/// The detector; reset per parallel loop.
#[derive(Debug, Default)]
pub struct RaceDetector {
    words: BTreeMap<u64, WordState>,
    /// Violations found (capped).
    pub violations: Vec<RaceViolation>,
}

const MAX_VIOLATIONS: usize = 16;

impl RaceDetector {
    /// Fresh detector.
    pub fn new() -> RaceDetector {
        RaceDetector::default()
    }

    /// Reset at parallel-loop entry.
    pub fn begin_loop(&mut self) {
        self.words.clear();
    }

    fn push(&mut self, v: RaceViolation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        }
    }

    /// Observe an access during a parallel loop.
    ///
    /// `in_window` tells whether the access's segment (if tagged) is
    /// currently between its wait grant and its signal on this core.
    pub fn on_access(
        &mut self,
        core: usize,
        addr: u64,
        len: u32,
        is_store: bool,
        tag: Option<SharedTag>,
        in_window: bool,
    ) {
        if let Some(tag) = tag {
            if !in_window {
                self.push(RaceViolation::OutsideSegment { core, seg: tag.seg });
            }
        }
        let first = addr / 8;
        let last = (addr + len.max(1) as u64 - 1) / 8;
        for w in first..=last {
            let seg = tag.map(|t| t.seg);
            let mut violation = None;
            match self.words.get_mut(&w) {
                None => {
                    self.words.insert(
                        w,
                        WordState {
                            core,
                            wrote: is_store,
                            seg,
                        },
                    );
                }
                Some(st) => {
                    let conflict = st.core != core && (st.wrote || is_store);
                    if conflict {
                        // Cross-core sharing: both sides must be in the
                        // same segment.
                        let protected = st.seg.is_some() && st.seg == seg;
                        if !protected {
                            violation = Some(RaceViolation::UnprotectedSharing {
                                addr: w * 8,
                                a: st.core,
                                b: core,
                            });
                        }
                    }
                    st.core = core;
                    st.wrote = is_store;
                    st.seg = seg;
                }
            }
            if let Some(v) = violation {
                self.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::TrafficClass;

    fn tag(seg: u32) -> Option<SharedTag> {
        Some(SharedTag {
            seg: SegmentId(seg),
            class: TrafficClass::MemoryCarried,
        })
    }

    #[test]
    fn private_per_core_data_is_fine() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, true, None, false);
        d.on_access(0, 0x100, 8, false, None, false);
        d.on_access(1, 0x200, 8, true, None, false);
        assert!(d.violations.is_empty());
    }

    #[test]
    fn unprotected_cross_core_write_detected() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, true, None, false);
        d.on_access(1, 0x100, 8, false, None, false);
        assert!(matches!(
            d.violations[0],
            RaceViolation::UnprotectedSharing { a: 0, b: 1, .. }
        ));
    }

    #[test]
    fn same_segment_sharing_allowed() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, true, tag(3), true);
        d.on_access(1, 0x100, 8, false, tag(3), true);
        d.on_access(1, 0x100, 8, true, tag(3), true);
        assert!(d.violations.is_empty());
    }

    #[test]
    fn different_segments_on_same_word_detected() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, true, tag(1), true);
        d.on_access(1, 0x100, 8, true, tag(2), true);
        assert!(!d.violations.is_empty());
    }

    #[test]
    fn tagged_access_outside_window_detected() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, true, tag(1), false);
        assert!(matches!(
            d.violations[0],
            RaceViolation::OutsideSegment { core: 0, .. }
        ));
    }

    #[test]
    fn read_read_sharing_is_fine() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, false, None, false);
        d.on_access(1, 0x100, 8, false, None, false);
        assert!(d.violations.is_empty());
    }

    #[test]
    fn reset_clears_history() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 8, true, None, false);
        d.begin_loop();
        d.on_access(1, 0x100, 8, true, None, false);
        assert!(d.violations.is_empty());
    }

    #[test]
    fn wide_access_covers_all_words() {
        let mut d = RaceDetector::new();
        d.on_access(0, 0x100, 32, true, None, false); // words 0x20..0x24
        d.on_access(1, 0x118, 8, false, None, false); // inside the range
        assert!(!d.violations.is_empty());
    }
}
