//! Shared construction helpers for the synthetic suite.
//!
//! Every workload is assembled from two kinds of phases:
//!
//! * a **coarse phase** — a disjoint-array DOALL loop that even HCCv1's
//!   baseline analysis proves independent (separate input and output
//!   regions, no loop-carried state). These phases provide the
//!   parallel-loop coverage HCCv1/v2 achieve in Table 1;
//! * **hot phases** — short-iteration loops with genuine loop-carried
//!   dependences (shared tables, conditional scalar chains) that only
//!   HELIX-RC parallelizes profitably.

use helix_ir::{AddrExpr, BinOp, Intrinsic, Operand, ProgramBuilder, Reg, RegionId, Ty};

/// Problem-size knob: `Test` keeps simulations fast in the test suite;
/// `Full` is used by the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for unit/integration tests.
    Test,
    /// Larger inputs for the figure-generation harness.
    Full,
}

impl Scale {
    /// Multiply a base trip count by the scale factor.
    pub fn n(self, base: i64) -> i64 {
        match self {
            Scale::Test => base,
            Scale::Full => base * 4,
        }
    }
}

/// Fill `region[0..n]` with `pure_hash(seed + i)` — cheap deterministic
/// data initialization.
pub fn fill_hash(b: &mut ProgramBuilder, region: RegionId, n: i64, seed: i64) {
    b.counted_loop(0, n, 1, |b, i| {
        let [t, h] = b.regs();
        b.bin(t, BinOp::Add, i, seed);
        b.call(Some(h), Intrinsic::PureHash, vec![Operand::Reg(t)]);
        b.store(h, AddrExpr::region_indexed(region, i, 8, 0), Ty::I64);
    });
}

/// A coarse DOALL phase: `out[i] = work(in[i])`, provably independent at
/// every analysis tier (distinct regions, fresh scratch registers).
/// `work_insts` controls iteration length.
pub fn doall_phase(
    b: &mut ProgramBuilder,
    input: RegionId,
    output: RegionId,
    n: i64,
    work_insts: usize,
) {
    b.counted_loop(0, n, 1, |b, i| {
        let x = b.reg();
        b.load(x, AddrExpr::region_indexed(input, i, 8, 0), Ty::I64);
        b.alu_chain(x, work_insts);
        b.store(x, AddrExpr::region_indexed(output, i, 8, 0), Ty::I64);
    });
}

/// Emit `dst = (src & mask)` — the usual table-index hash.
pub fn masked(b: &mut ProgramBuilder, dst: Reg, src: Reg, mask: i64) {
    b.bin(dst, BinOp::And, src, mask);
}

/// A shared-table update: `table[idx] = op(table[idx], val)` — one
/// memory-carried loop dependence (collisions across iterations).
pub fn table_update(
    b: &mut ProgramBuilder,
    table: RegionId,
    idx: Reg,
    val: impl Into<Operand>,
    op: BinOp,
) {
    let cell = b.reg();
    b.load(cell, AddrExpr::region_indexed(table, idx, 8, 0), Ty::I64);
    b.bin(cell, op, cell, val);
    b.store(cell, AddrExpr::region_indexed(table, idx, 8, 0), Ty::I64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::interp::{run_to_completion, Env};

    #[test]
    fn phases_compose_into_valid_programs() {
        let mut b = ProgramBuilder::new("compose");
        let a = b.region("a", 2048, Ty::I64);
        let o = b.region("o", 2048, Ty::I64);
        let t = b.region("t", 1024, Ty::I64);
        fill_hash(&mut b, a, 200, 11);
        doall_phase(&mut b, a, o, 200, 6);
        b.counted_loop(0, 200, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(o, i, 8, 0), Ty::I64);
            let h = b.reg();
            masked(b, h, x, 127);
            table_update(b, t, h, 1i64, BinOp::Add);
        });
        let p = b.finish();
        assert!(p.validate().is_ok());
        let mut env = Env::for_program(&p);
        run_to_completion(&p, &mut env).unwrap();
        // The histogram counted all 200 items.
        let base = env.mem.base_of(t);
        let total: i64 = (0..128)
            .map(|k| env.mem.load(base + k * 8, Ty::I64).unwrap().as_int())
            .sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn scale_factors() {
        assert_eq!(Scale::Test.n(100), 100);
        assert_eq!(Scale::Full.n(100), 400);
    }
}
