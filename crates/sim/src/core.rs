//! Per-core microarchitectural state and instruction latency classes.

use crate::attribution::Bucket;
use crate::branch::Predictor;
use helix_ir::interp::Thread;
use helix_ir::{BinOp, Inst, Program, Reg, SegmentId, UnOp, Value};
use std::collections::VecDeque;

/// Dense segment-id set (bit vector), replacing the per-core
/// `BTreeSet<SegmentId>` on the simulator's hot path. Clearing keeps the
/// allocation; inserting past the current capacity grows it.
#[derive(Debug, Clone, Default)]
pub struct SegSet {
    bits: Vec<u64>,
    len: usize,
}

impl SegSet {
    /// An empty set sized for segment ids `0..n_segs`.
    pub fn new(n_segs: usize) -> SegSet {
        SegSet {
            bits: vec![0; n_segs.div_ceil(64)],
            len: 0,
        }
    }

    /// Whether `seg` is in the set.
    pub fn contains(&self, seg: &SegmentId) -> bool {
        let i = seg.index();
        self.bits
            .get(i / 64)
            .is_some_and(|w| w >> (i % 64) & 1 == 1)
    }

    /// Insert `seg`; returns whether it was newly inserted.
    pub fn insert(&mut self, seg: SegmentId) -> bool {
        let i = seg.index();
        if i / 64 >= self.bits.len() {
            self.bits.resize(i / 64 + 1, 0);
        }
        let fresh = self.bits[i / 64] >> (i % 64) & 1 == 0;
        self.bits[i / 64] |= 1 << (i % 64);
        self.len += fresh as usize;
        fresh
    }

    /// Remove every element, keeping the allocation.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// What a core is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Executing serial (non-parallelized) code — only the orchestrator.
    SerialActive,
    /// Idle while another core runs serial code.
    SerialIdle,
    /// Executing iteration `iter` of the current parallel loop.
    Iter {
        /// Iteration index.
        iter: u64,
        /// Cycle the iteration started (for length statistics).
        started_at: u64,
    },
    /// Holding before the next iteration because it would run more than
    /// one lap ahead of the slowest core (the two-signals-in-flight
    /// bound, paper §4).
    LapHold {
        /// The iteration waiting to start.
        iter: u64,
    },
    /// Finished all assigned iterations of the loop.
    FinishedLoop,
    /// Had no iterations this invocation (trip count below core index).
    NoWork,
    /// The whole program is done.
    Done,
}

/// One reorder-buffer entry (out-of-order model).
#[derive(Debug, Clone, Copy)]
pub struct RobEntry {
    /// Cycle the instruction's result is available / it may retire.
    pub complete: u64,
    /// Bucket to charge if the pipeline blocks on this entry.
    pub class: Bucket,
}

/// Per-core simulator state.
#[derive(Debug)]
pub struct CoreState {
    /// Core id (== ring node id).
    pub id: usize,
    /// Architectural thread (registers + program counter).
    pub thread: Thread,
    /// Activity state.
    pub run: RunState,
    /// Scoreboard: cycle each register's value is ready.
    pub reg_ready: Vec<u64>,
    /// Stall class to charge when blocked on each register.
    pub reg_class: Vec<Bucket>,
    /// Front-end stall (branch redirect) until this cycle.
    pub fetch_stall_until: u64,
    /// Segments whose `wait` has been granted this iteration.
    pub granted: SegSet,
    /// Segments signalled this iteration.
    pub signaled: SegSet,
    /// Outstanding ring loads: (ticket, destination register).
    pub pending_ring: Vec<(u64, Reg)>,
    /// Branch predictor.
    pub predictor: Predictor,
    /// Reorder buffer (out-of-order model only).
    pub rob: VecDeque<RobEntry>,
    /// Dynamic instructions issued by this core.
    pub dyn_insts: u64,
}

impl CoreState {
    /// Fresh core state for a program with `n_regs` registers and
    /// segment ids below `n_segs`.
    pub fn new(id: usize, thread: Thread, n_regs: usize, n_segs: usize) -> CoreState {
        CoreState {
            id,
            thread,
            run: if id == 0 {
                RunState::SerialActive
            } else {
                RunState::SerialIdle
            },
            reg_ready: vec![0; n_regs],
            reg_class: vec![Bucket::Computation; n_regs],
            fetch_stall_until: 0,
            granted: SegSet::new(n_segs),
            signaled: SegSet::new(n_segs),
            pending_ring: Vec::new(),
            predictor: Predictor::new(),
            rob: VecDeque::new(),
            dyn_insts: 0,
        }
    }

    /// Rebuild this core's state as [`CoreState::new`] would for the
    /// given shape, reusing the register-file, scoreboard, and queue
    /// allocations of a retired core. Observably identical to a fresh
    /// construction positioned at `program`'s entry.
    pub fn renew(
        mut self,
        id: usize,
        program: &Program,
        n_regs: usize,
        n_segs: usize,
    ) -> CoreState {
        let _ = n_segs; // SegSet::clear keeps capacity; growth is on demand
        self.id = id;
        self.thread.regs.clear();
        self.thread.regs.resize(n_regs, Value::default());
        self.thread.block = program.graph.entry;
        self.thread.ip = 0;
        self.thread.finished = false;
        self.thread.dyn_insts = 0;
        self.run = if id == 0 {
            RunState::SerialActive
        } else {
            RunState::SerialIdle
        };
        self.reg_ready.clear();
        self.reg_ready.resize(n_regs, 0);
        self.reg_class.clear();
        self.reg_class.resize(n_regs, Bucket::Computation);
        self.fetch_stall_until = 0;
        self.granted.clear();
        self.signaled.clear();
        self.pending_ring.clear();
        self.predictor = Predictor::new();
        self.rob.clear();
        self.dyn_insts = 0;
        self
    }

    /// Reset per-iteration synchronization state.
    pub fn reset_iteration(&mut self) {
        self.granted.clear();
        self.signaled.clear();
    }

    /// Latest ready time among `regs`.
    pub fn operands_ready(&self, regs: &[Reg]) -> u64 {
        regs.iter()
            .map(|r| self.reg_ready[r.index()])
            .max()
            .unwrap_or(0)
    }

    /// The register (and its stall class) blocking issue at `now`, if
    /// any.
    pub fn blocking_reg(&self, regs: &[Reg], now: u64) -> Option<(Reg, Bucket)> {
        regs.iter()
            .filter(|r| self.reg_ready[r.index()] > now)
            .max_by_key(|r| self.reg_ready[r.index()])
            .map(|r| (*r, self.reg_class[r.index()]))
    }

    /// [`CoreState::blocking_reg`] over an instruction's uses, without
    /// materializing them (ties resolve to the last use, matching
    /// `max_by_key`).
    pub fn blocking_use(&self, inst: &Inst, now: u64) -> Option<(Reg, Bucket)> {
        let mut worst: Option<Reg> = None;
        inst.for_each_use(|r| {
            if self.reg_ready[r.index()] > now
                && worst.is_none_or(|w| self.reg_ready[r.index()] >= self.reg_ready[w.index()])
            {
                worst = Some(r);
            }
        });
        worst.map(|r| (r, self.reg_class[r.index()]))
    }

    /// [`CoreState::operands_ready`] over an instruction's uses, without
    /// materializing them.
    pub fn operands_ready_for(&self, inst: &Inst) -> u64 {
        let mut ready = 0;
        inst.for_each_use(|r| ready = ready.max(self.reg_ready[r.index()]));
        ready
    }

    /// [`CoreState::blocking_use`] over a pre-decoded register-slot list
    /// (the decoded engine's use pool). Identical tie-breaking: the last
    /// slot with the maximal ready time wins.
    pub fn blocking_slot(&self, slots: &[u32], now: u64) -> Option<(Reg, Bucket)> {
        let mut worst: Option<u32> = None;
        for &r in slots {
            if self.reg_ready[r as usize] > now
                && worst.is_none_or(|w| self.reg_ready[r as usize] >= self.reg_ready[w as usize])
            {
                worst = Some(r);
            }
        }
        worst.map(|r| (Reg(r), self.reg_class[r as usize]))
    }

    /// [`CoreState::operands_ready`] over a pre-decoded slot list.
    pub fn slots_ready(&self, slots: &[u32]) -> u64 {
        slots
            .iter()
            .fold(0, |acc, &r| acc.max(self.reg_ready[r as usize]))
    }
}

/// Execution latency (cycles) of a non-memory instruction.
pub fn inst_latency(inst: &Inst) -> u32 {
    match inst {
        Inst::Const { .. } | Inst::Nop { .. } => 1,
        Inst::Un { op, .. } => match op {
            UnOp::Neg | UnOp::Not | UnOp::FAbs | UnOp::FNeg => 1,
            UnOp::IntToF | UnOp::FToInt => 2,
            UnOp::FSqrt => 20,
        },
        Inst::Bin { op, .. } => match op {
            BinOp::Mul => 3,
            BinOp::Div | BinOp::Rem => 12,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul => 4,
            BinOp::FDiv => 16,
            _ => 1,
        },
        Inst::Call { intrinsic, .. } => intrinsic.latency(),
        // Memory and synchronization latencies are modelled elsewhere.
        Inst::Load { .. } | Inst::Store { .. } | Inst::Wait { .. } | Inst::Signal { .. } => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::{Operand, ProgramBuilder, Value};

    #[test]
    fn latency_classes_ordered() {
        let add = Inst::Bin {
            dst: Reg(0),
            op: BinOp::Add,
            lhs: Operand::imm(1),
            rhs: Operand::imm(2),
        };
        let mul = Inst::Bin {
            dst: Reg(0),
            op: BinOp::Mul,
            lhs: Operand::imm(1),
            rhs: Operand::imm(2),
        };
        let div = Inst::Bin {
            dst: Reg(0),
            op: BinOp::Div,
            lhs: Operand::imm(1),
            rhs: Operand::imm(2),
        };
        assert!(inst_latency(&add) < inst_latency(&mul));
        assert!(inst_latency(&mul) < inst_latency(&div));
        let sqrt = Inst::Un {
            dst: Reg(0),
            op: UnOp::FSqrt,
            src: Operand::Imm(Value::Float(2.0)),
        };
        assert!(inst_latency(&sqrt) >= 16);
    }

    #[test]
    fn scoreboard_blocking() {
        let p = ProgramBuilder::new("t").finish();
        let thread = Thread::at_entry(&p);
        let mut core = CoreState::new(0, thread, 4, 4);
        core.reg_ready[1] = 50;
        core.reg_class[1] = Bucket::Memory;
        assert_eq!(core.operands_ready(&[Reg(0), Reg(1)]), 50);
        let (r, class) = core.blocking_reg(&[Reg(0), Reg(1)], 10).unwrap();
        assert_eq!(r, Reg(1));
        assert_eq!(class, Bucket::Memory);
        assert!(core.blocking_reg(&[Reg(0)], 10).is_none());
        assert!(core.blocking_reg(&[Reg(1)], 60).is_none());
    }

    #[test]
    fn iteration_reset_clears_sync_sets() {
        let p = ProgramBuilder::new("t").finish();
        let thread = Thread::at_entry(&p);
        let mut core = CoreState::new(3, thread, 1, 2);
        core.granted.insert(SegmentId(1));
        core.signaled.insert(SegmentId(1));
        core.reset_iteration();
        assert!(core.granted.is_empty());
        assert!(core.signaled.is_empty());
    }

    #[test]
    fn segset_inserts_and_grows() {
        let mut s = SegSet::new(2);
        assert!(s.is_empty());
        assert!(s.insert(SegmentId(1)));
        assert!(!s.insert(SegmentId(1)), "double insert is idempotent");
        assert!(s.contains(&SegmentId(1)));
        assert!(!s.contains(&SegmentId(0)));
        // Growth beyond the sized capacity.
        assert!(s.insert(SegmentId(131)));
        assert!(s.contains(&SegmentId(131)));
        assert!(!s.contains(&SegmentId(130)));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(&SegmentId(1)));
        assert!(!s.contains(&SegmentId(131)));
    }
}
