//! Structured program construction.
//!
//! The builder emits the canonical control-flow shapes (counted loops,
//! if/else diamonds, while loops) that the rest of the toolchain pattern
//! matches, while still producing a plain CFG that the analyses discover
//! structure in from scratch.

use crate::inst::{AddrExpr, BinOp, Inst, InstOrigin, Intrinsic, Operand, Terminator, UnOp};
use crate::program::{Block, Graph, Program, RegionDecl};
use crate::types::{BlockId, Reg, RegionId, Ty, Value};

/// Incremental builder for [`Program`]s.
///
/// # Examples
///
/// ```
/// use helix_ir::{ProgramBuilder, BinOp, AddrExpr, Ty};
///
/// let mut b = ProgramBuilder::new("sum");
/// let data = b.region("data", 1024, Ty::I64);
/// let acc = b.reg();
/// b.const_i(acc, 0);
/// b.counted_loop(0, 128, 1, |b, i| {
///     let x = b.reg();
///     b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
///     b.bin(acc, BinOp::Add, acc, x);
/// });
/// let program = b.finish();
/// assert!(program.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    regions: Vec<RegionDecl>,
    blocks: Vec<Block>,
    terminated: Vec<bool>,
    current: BlockId,
    n_regs: u32,
}

impl ProgramBuilder {
    /// Start building a program named `name`, positioned at a fresh entry
    /// block.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            regions: Vec::new(),
            blocks: vec![Block {
                label: Some("entry".into()),
                insts: Vec::new(),
                term: Terminator::Return,
            }],
            terminated: vec![false],
            current: BlockId(0),
            n_regs: 0,
        }
    }

    /// Declare a static memory region and return its id.
    pub fn region(&mut self, name: impl Into<String>, size: u64, elem: Ty) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(RegionDecl {
            name: name.into(),
            size,
            elem,
        });
        id
    }

    /// Allocate a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.n_regs);
        self.n_regs += 1;
        r
    }

    /// Allocate `n` fresh registers.
    pub fn regs<const N: usize>(&mut self) -> [Reg; N] {
        std::array::from_fn(|_| self.reg())
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Number of blocks created so far.
    ///
    /// Builders that stitch several sub-pipelines into one program (the
    /// multi-nest scenario generator) snapshot this before and after
    /// each sub-pipeline to record which block-id range it occupies —
    /// every loop header created in between falls inside the range.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Emit `trips` iterations of serial glue work mixing into `acc`:
    /// a while loop whose body is a dependent multiply/xor chain.
    ///
    /// While loops are never recognized as counted loops, so glue
    /// emitted this way is guaranteed to stay sequential under every
    /// compiler generation — it models the unparallelizable fraction
    /// between a program's hot loop nests (Amdahl's serial term).
    ///
    /// # Examples
    ///
    /// ```
    /// use helix_ir::{interp, ProgramBuilder};
    ///
    /// let mut b = ProgramBuilder::new("glue");
    /// let acc = b.reg();
    /// b.const_i(acc, 1);
    /// b.serial_glue(acc, 10);
    /// let p = b.finish();
    /// let mut env = interp::Env::for_program(&p);
    /// let t = interp::run_to_completion(&p, &mut env).unwrap();
    /// assert_ne!(t.regs[acc.index()].as_int(), 1); // the chain ran
    /// ```
    pub fn serial_glue(&mut self, acc: Reg, trips: impl Into<Operand>) {
        let [g, cond] = self.regs();
        self.copy(g, trips);
        self.while_loop(
            |b| {
                b.bin(cond, BinOp::CmpGt, g, 0i64);
                Operand::Reg(cond)
            },
            |b| {
                b.bin(acc, BinOp::Mul, acc, 3i64);
                b.bin(acc, BinOp::Xor, acc, g);
                b.bin(g, BinOp::Sub, g, 1i64);
            },
        );
    }

    /// Create a new (unterminated) block without switching to it.
    pub fn new_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            label: Some(label.into()),
            insts: Vec::new(),
            term: Terminator::Return,
        });
        self.terminated.push(false);
        id
    }

    /// Switch the insertion point to `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block has already been terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            !self.terminated[block.index()],
            "cannot append to terminated block {block}"
        );
        self.current = block;
    }

    fn emit(&mut self, inst: Inst) {
        let cur = self.current.index();
        assert!(!self.terminated[cur], "emitting into terminated block");
        self.blocks[cur].insts.push(inst);
    }

    /// Emit `dst = value` for an integer constant.
    pub fn const_i(&mut self, dst: Reg, value: i64) {
        self.emit(Inst::Const {
            dst,
            value: Value::Int(value),
        });
    }

    /// Emit `dst = value` for a float constant.
    pub fn const_f(&mut self, dst: Reg, value: f64) {
        self.emit(Inst::Const {
            dst,
            value: Value::Float(value),
        });
    }

    /// Emit a register copy (`dst = src + 0`).
    pub fn copy(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.emit(Inst::Bin {
            dst,
            op: BinOp::Add,
            lhs: src.into(),
            rhs: Operand::imm(0),
        });
    }

    /// Emit `dst = lhs op rhs`.
    pub fn bin(&mut self, dst: Reg, op: BinOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.emit(Inst::Bin {
            dst,
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
    }

    /// Emit `dst = op src`.
    pub fn un(&mut self, dst: Reg, op: UnOp, src: impl Into<Operand>) {
        self.emit(Inst::Un {
            dst,
            op,
            src: src.into(),
        });
    }

    /// Emit `dst = load.ty [addr]`.
    pub fn load(&mut self, dst: Reg, addr: AddrExpr, ty: Ty) {
        self.emit(Inst::Load {
            dst,
            addr,
            ty,
            shared: None,
            origin: InstOrigin::Original,
        });
    }

    /// Emit `store.ty src -> [addr]`.
    pub fn store(&mut self, src: impl Into<Operand>, addr: AddrExpr, ty: Ty) {
        self.emit(Inst::Store {
            src: src.into(),
            addr,
            ty,
            shared: None,
            origin: InstOrigin::Original,
        });
    }

    /// Emit an intrinsic call.
    pub fn call(&mut self, dst: Option<Reg>, intrinsic: Intrinsic, args: Vec<Operand>) {
        self.emit(Inst::Call {
            dst,
            intrinsic,
            args,
        });
    }

    /// Emit a chain of `n` dependent integer ALU instructions on `scratch`.
    ///
    /// Useful for giving synthetic loop bodies a controllable serial
    /// computation length without inventing meaningless work at every call
    /// site.
    pub fn alu_chain(&mut self, scratch: Reg, n: usize) {
        for k in 0..n {
            self.bin(
                scratch,
                if k % 3 == 2 { BinOp::Xor } else { BinOp::Add },
                scratch,
                ((k as i64) % 7) + 1,
            );
        }
    }

    /// Bake one sample of `dist` per slot into `region[0..count]` as a
    /// compile-time work table: `count` `const`/`store` pairs in the
    /// current block, all through one scratch register.
    ///
    /// This is the distribution-driven emission primitive of the
    /// scenario generator: the table is sampled host-side with
    /// [`SplitMix64`](crate::rng::SplitMix64) (so the program is a pure
    /// function of `(dist, seed)`), and generated loops then read
    /// `region[i]` to bound their inner work — giving real
    /// iteration-length distributions instead of uniform bodies.
    pub fn init_region_from_dist(
        &mut self,
        region: RegionId,
        count: i64,
        dist: crate::dist::Distribution,
        seed: u64,
    ) {
        let mut rng = crate::rng::SplitMix64::new(seed);
        let t = self.reg();
        for i in 0..count {
            let v = dist.sample_at(i, &mut rng);
            self.const_i(t, v);
            self.store(t, AddrExpr::region(region, i * 8), Ty::I64);
        }
    }

    /// Terminate the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        let cur = self.current.index();
        assert!(!self.terminated[cur], "block already terminated");
        self.blocks[cur].term = Terminator::Jump(target);
        self.terminated[cur] = true;
    }

    /// Terminate the current block with a conditional branch.
    pub fn branch(&mut self, cond: impl Into<Operand>, then_: BlockId, else_: BlockId) {
        let cur = self.current.index();
        assert!(!self.terminated[cur], "block already terminated");
        self.blocks[cur].term = Terminator::Branch {
            cond: cond.into(),
            then_,
            else_,
        };
        self.terminated[cur] = true;
    }

    /// Terminate the current block with a return.
    pub fn ret(&mut self) {
        let cur = self.current.index();
        assert!(!self.terminated[cur], "block already terminated");
        self.blocks[cur].term = Terminator::Return;
        self.terminated[cur] = true;
    }

    /// Build a canonical counted loop `for (c = init; c < bound; c += step)`.
    ///
    /// The body closure receives the builder (positioned inside the loop
    /// body) and the counter register. Returns the header block id.
    ///
    /// The emitted shape is exactly what
    /// [`recognize_counted_loop`](crate::cfg::recognize_counted_loop)
    /// matches, so loops built this way are candidates for
    /// parallelization.
    pub fn counted_loop(
        &mut self,
        init: impl Into<Operand>,
        bound: impl Into<Operand>,
        step: i64,
        f: impl FnOnce(&mut Self, Reg),
    ) -> BlockId {
        let counter = self.reg();
        let cond = self.reg();
        let init = init.into();
        let bound = bound.into();
        // preheader (current block): counter = init
        match init {
            Operand::Imm(v) => self.emit(Inst::Const {
                dst: counter,
                value: v,
            }),
            Operand::Reg(_) => self.copy(counter, init),
        }
        let header = self.new_block("loop_header");
        let body = self.new_block("loop_body");
        let latch = self.new_block("loop_latch");
        let exit = self.new_block("loop_exit");
        self.jump(header);
        // header: cond = counter < bound; br cond ? body : exit
        self.switch_to(header);
        self.bin(cond, BinOp::CmpLt, counter, bound);
        self.branch(cond, body, exit);
        // body
        self.switch_to(body);
        f(self, counter);
        if !self.terminated[self.current.index()] {
            self.jump(latch);
        }
        // latch: counter += step; jump header
        self.switch_to(latch);
        self.bin(counter, BinOp::Add, counter, step);
        self.jump(header);
        self.switch_to(exit);
        header
    }

    /// Build an if/else diamond on a truthy condition.
    pub fn if_else(
        &mut self,
        cond: impl Into<Operand>,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        let then_b = self.new_block("if_then");
        let else_b = self.new_block("if_else");
        let join = self.new_block("if_join");
        self.branch(cond, then_b, else_b);
        self.switch_to(then_b);
        then_f(self);
        if !self.terminated[self.current.index()] {
            self.jump(join);
        }
        self.switch_to(else_b);
        else_f(self);
        if !self.terminated[self.current.index()] {
            self.jump(join);
        }
        self.switch_to(join);
    }

    /// Build an if without an else arm.
    pub fn if_then(&mut self, cond: impl Into<Operand>, then_f: impl FnOnce(&mut Self)) {
        self.if_else(cond, then_f, |_| {});
    }

    /// Build a general while loop.
    ///
    /// `cond_f` emits header code and returns the condition operand;
    /// `body_f` emits the body. While loops are *not* recognized as
    /// counted, so they are never distributed across cores — matching
    /// loops whose trip count is unknown at entry.
    pub fn while_loop(
        &mut self,
        cond_f: impl FnOnce(&mut Self) -> Operand,
        body_f: impl FnOnce(&mut Self),
    ) -> BlockId {
        let header = self.new_block("while_header");
        let body = self.new_block("while_body");
        let exit = self.new_block("while_exit");
        self.jump(header);
        self.switch_to(header);
        let cond = cond_f(self);
        self.branch(cond, body, exit);
        self.switch_to(body);
        body_f(self);
        if !self.terminated[self.current.index()] {
            self.jump(header);
        }
        self.switch_to(exit);
        header
    }

    /// Finish the program, terminating the current block with `ret` if
    /// still open.
    pub fn finish(mut self) -> Program {
        if !self.terminated[self.current.index()] {
            self.ret();
        }
        let program = Program {
            name: self.name,
            regions: self.regions,
            graph: Graph {
                blocks: self.blocks,
                entry: BlockId(0),
            },
            n_regs: self.n_regs,
        };
        debug_assert_eq!(program.validate(), Ok(()));
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_to_completion, Env};

    #[test]
    fn empty_program_is_valid() {
        let p = ProgramBuilder::new("empty").finish();
        assert!(p.validate().is_ok());
        assert_eq!(p.graph.len(), 1);
    }

    #[test]
    fn counted_loop_executes_expected_iterations() {
        let mut b = ProgramBuilder::new("count");
        let acc = b.reg();
        b.const_i(acc, 0);
        b.counted_loop(0, 10, 1, |b, _i| {
            b.bin(acc, BinOp::Add, acc, 1i64);
        });
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let thread = run_to_completion(&p, &mut env).unwrap();
        assert_eq!(thread.regs[acc.index()].as_int(), 10);
    }

    #[test]
    fn counted_loop_with_step() {
        let mut b = ProgramBuilder::new("step");
        let acc = b.reg();
        b.const_i(acc, 0);
        b.counted_loop(0, 10, 3, |b, i| {
            b.bin(acc, BinOp::Add, acc, i);
        });
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let thread = run_to_completion(&p, &mut env).unwrap();
        // i = 0, 3, 6, 9 -> sum 18
        assert_eq!(thread.regs[acc.index()].as_int(), 18);
    }

    #[test]
    fn if_else_both_arms() {
        let mut b = ProgramBuilder::new("ifelse");
        let [x, y] = b.regs();
        b.const_i(x, 1);
        b.if_else(x, |b| b.const_i(y, 10), |b| b.const_i(y, 20));
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let t = run_to_completion(&p, &mut env).unwrap();
        assert_eq!(t.regs[y.index()].as_int(), 10);
    }

    #[test]
    fn while_loop_runs_until_false() {
        let mut b = ProgramBuilder::new("while");
        let [n, cond] = b.regs();
        b.const_i(n, 5);
        b.while_loop(
            |b| {
                b.bin(cond, BinOp::CmpGt, n, 0i64);
                Operand::Reg(cond)
            },
            |b| {
                b.bin(n, BinOp::Sub, n, 1i64);
            },
        );
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let t = run_to_completion(&p, &mut env).unwrap();
        assert_eq!(t.regs[n.index()].as_int(), 0);
    }

    #[test]
    fn nested_loops_execute() {
        let mut b = ProgramBuilder::new("nested");
        let acc = b.reg();
        b.const_i(acc, 0);
        b.counted_loop(0, 3, 1, |b, _i| {
            b.counted_loop(0, 4, 1, |b, _j| {
                b.bin(acc, BinOp::Add, acc, 1i64);
            });
        });
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let t = run_to_completion(&p, &mut env).unwrap();
        assert_eq!(t.regs[acc.index()].as_int(), 12);
    }

    #[test]
    fn memory_round_trip() {
        let mut b = ProgramBuilder::new("mem");
        let r = b.region("buf", 64, Ty::I64);
        let [x, y] = b.regs();
        b.const_i(x, 99);
        b.store(x, AddrExpr::region(r, 8), Ty::I64);
        b.load(y, AddrExpr::region(r, 8), Ty::I64);
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let t = run_to_completion(&p, &mut env).unwrap();
        assert_eq!(t.regs[y.index()].as_int(), 99);
    }

    #[test]
    #[should_panic(expected = "terminated")]
    fn double_termination_panics() {
        let mut b = ProgramBuilder::new("bad");
        b.ret();
        b.ret();
    }

    #[test]
    fn alu_chain_emits_n_instructions() {
        let mut b = ProgramBuilder::new("chain");
        let r = b.reg();
        b.const_i(r, 0);
        b.alu_chain(r, 7);
        let p = b.finish();
        assert_eq!(p.graph.inst_count(), 8);
    }
}
