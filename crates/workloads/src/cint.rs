//! Synthetic stand-ins for the six SPEC CINT2000 benchmarks (paper §6.1).
//!
//! Each program has two kinds of phases: a coarse disjoint-array loop
//! that every compiler generation can parallelize (providing the
//! HCCv1/v2 coverage of Table 1) and one or more *small hot loops* with
//! genuine loop-carried dependences — short iterations, shared tables,
//! conditional scalar chains — that only HELIX-RC handles profitably.
//! The dependence structure of each hot loop is shaped after the
//! benchmark's published overhead profile (Fig. 12).

use crate::common::{doall_phase, fill_hash, masked, table_update, Scale};
use helix_ir::{AddrExpr, BinOp, Program, ProgramBuilder, Ty};

/// 164.gzip — LZ-style hash-chain compression.
///
/// Hot loop: hash the next word, read and replace the hash-chain head
/// (memory-carried), and fold matches into an unpredictable checksum
/// register (register-carried, demoted). Dominated by the added
/// instructions of demotion plus chain communication — the paper's
/// lowest CINT speedup (3.0×).
pub fn gzip(scale: Scale) -> Program {
    let n = scale.n(900);
    let mut b = ProgramBuilder::new("164.gzip");
    let input = b.region("input", (n as u64 + 1) * 8, Ty::I64);
    let window = b.region("window", (n as u64 + 1) * 8, Ty::I64);
    let head = b.region("head", 2048, Ty::I64);
    let out = b.region("out", 64, Ty::I64);
    fill_hash(&mut b, input, n, 7);
    // Coarse phase (HCCv1-parallelizable): pre-filter the input.
    doall_phase(&mut b, input, window, n, 11);
    // Hot loop: hash-chain updates.
    let crc = b.reg();
    b.const_i(crc, -1);
    b.counted_loop(0, n, 1, |b, i| {
        let x = b.reg();
        b.load(x, AddrExpr::region_indexed(window, i, 8, 0), Ty::I64);
        let h = b.reg();
        masked(b, h, x, 255);
        // prev = head[h]; head[h] = i (memory-carried dependence).
        let prev = b.reg();
        b.load(prev, AddrExpr::region_indexed(head, h, 8, 0), Ty::I64);
        b.store(i, AddrExpr::region_indexed(head, h, 8, 0), Ty::I64);
        // Match check feeds an unpredictable register chain.
        let c = b.reg();
        b.bin(c, BinOp::And, prev, 3i64);
        b.if_then(c, |b| {
            b.bin(crc, BinOp::Xor, crc, prev);
            b.bin(crc, BinOp::Shl, crc, 1i64);
        });
    });
    b.store(crc, AddrExpr::region(out, 0), Ty::I64);
    b.finish()
}

/// 175.vpr — placement cost update (the paper's Fig. 5 loop).
///
/// Hot loop: stream a large private cost array (memory-bound, 74% of its
/// overhead in the paper) and conditionally update one shared
/// bounding-box accumulator.
pub fn vpr(scale: Scale) -> Program {
    let n = scale.n(1000);
    let big = 8 * 1024i64; // words: a 64 KB streaming footprint (> L1)
    let mut b = ProgramBuilder::new("175.vpr");
    let input = b.region("nets", (n as u64 + 1) * 8, Ty::I64);
    let grid = b.region("grid", (big as u64) * 8, Ty::I64);
    let routed = b.region("routed", (n as u64 + 1) * 8, Ty::I64);
    let bb = b.region("bb_cost", 64, Ty::I64);
    fill_hash(&mut b, input, n, 13);
    doall_phase(&mut b, input, routed, n, 14);
    b.counted_loop(0, n, 1, |b, i| {
        // Strided walk of the big grid: private but cache-hostile.
        let j = b.reg();
        b.bin(j, BinOp::Mul, i, 173i64);
        b.bin(j, BinOp::And, j, big - 1);
        let x = b.reg();
        b.load(x, AddrExpr::region_indexed(grid, j, 8, 0), Ty::I64);
        b.bin(x, BinOp::Add, x, i);
        b.store(x, AddrExpr::region_indexed(grid, j, 8, 0), Ty::I64);
        // Fig. 5: one path updates the shared cost, the other does not.
        let c = b.reg();
        b.bin(c, BinOp::And, x, 1i64);
        b.if_else(
            c,
            |b| {
                let a = b.reg();
                b.load(a, AddrExpr::region(bb, 0), Ty::I64);
                b.bin(a, BinOp::Add, a, 1i64);
                b.store(a, AddrExpr::region(bb, 0), Ty::I64);
            },
            |b| {
                let t = b.reg();
                b.bin(t, BinOp::Mul, x, 3i64);
                b.store(t, AddrExpr::region_indexed(routed, i, 8, 0), Ty::I64);
            },
        );
    });
    b.finish()
}

/// 197.parser — dictionary/link-table lookups.
///
/// Hot loop: four *disjoint* shared tables (dictionary counts, word
/// counts, link counts, plus a demoted parser-state register) — the
/// segment-splitting showcase, with the suite's largest ring-cache
/// working set (Fig. 11d).
pub fn parser(scale: Scale) -> Program {
    let n = scale.n(800);
    let mut b = ProgramBuilder::new("197.parser");
    let text = b.region("text", (n as u64 + 1) * 8, Ty::I64);
    let tokens = b.region("tokens", (n as u64 + 1) * 8, Ty::I64);
    // Four kilowords of shared tables: exceeds the 1 KB per-node array.
    let dict = b.region("dict", 8192, Ty::I64);
    let words = b.region("words", 8192, Ty::I64);
    let links = b.region("links", 8192, Ty::I64);
    let out = b.region("out", 64, Ty::I64);
    fill_hash(&mut b, text, n, 29);
    doall_phase(&mut b, text, tokens, n, 19);
    let state = b.reg();
    b.const_i(state, 1);
    b.counted_loop(0, n, 1, |b, i| {
        let x = b.reg();
        b.load(x, AddrExpr::region_indexed(tokens, i, 8, 0), Ty::I64);
        let h1 = b.reg();
        masked(b, h1, x, 1023);
        table_update(b, dict, h1, 1i64, BinOp::Add);
        let h2 = b.reg();
        b.bin(h2, BinOp::Shr, x, 10i64);
        b.bin(h2, BinOp::And, h2, 1023i64);
        table_update(b, words, h2, x, BinOp::Xor);
        let h3 = b.reg();
        b.bin(h3, BinOp::Shr, x, 20i64);
        b.bin(h3, BinOp::And, h3, 1023i64);
        table_update(b, links, h3, 1i64, BinOp::Add);
        // Parser state machine: conditional, unpredictable.
        let c = b.reg();
        b.bin(c, BinOp::And, x, 7i64);
        b.if_then(c, |b| {
            b.bin(state, BinOp::Mul, state, 5i64);
            b.bin(state, BinOp::Xor, state, x);
        });
    });
    b.store(state, AddrExpr::region(out, 0), Ty::I64);
    b.finish()
}

/// 300.twolf — annealing-style cell swaps.
///
/// The hot loop has a *low trip count* (tens of iterations per
/// invocation) and is re-invoked from a serial outer loop whose
/// annealing temperature chain cannot be parallelized — idle cores from
/// short invocations dominate, as in the paper.
pub fn twolf(scale: Scale) -> Program {
    let outer = scale.n(28);
    let inner = 24i64; // fewer than 2x16 cores: low trip count overhead
    let mut b = ProgramBuilder::new("300.twolf");
    let cells = b.region("cells", 8192, Ty::I64);
    let netcost = b.region("netcost", 4096, Ty::I64);
    let scratch = b.region("scratch", (outer as u64 + 1) * 8, Ty::I64);
    let out = b.region("out", 64, Ty::I64);
    fill_hash(&mut b, cells, 1024, 31);
    // Coarse phase for v1/v2 coverage.
    doall_phase(&mut b, cells, scratch, outer.min(1024), 25);
    let temperature = b.reg();
    b.const_i(temperature, 1_000_003);
    b.counted_loop(0, outer, 1, |b, t| {
        // Serial annealing schedule (unpredictable chain blocks outer
        // parallelization).
        b.bin(temperature, BinOp::Mul, temperature, 16807i64);
        b.bin(temperature, BinOp::Rem, temperature, 2147483647i64);
        let seed = b.reg();
        b.bin(seed, BinOp::Add, temperature, t);
        // The hot inner loop: swap cost evaluation. The pricing
        // arithmetic happens on private scratch *before* touching the
        // shared cell, keeping the sequential segment tight.
        b.counted_loop(0, inner, 1, |b, i| {
            let j = b.reg();
            b.bin(j, BinOp::Mul, i, 97i64);
            b.bin(j, BinOp::Add, j, seed);
            b.bin(j, BinOp::And, j, 1023i64);
            let delta = b.reg();
            b.copy(delta, j);
            b.alu_chain(delta, 26); // private swap-cost arithmetic
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(cells, j, 8, 0), Ty::I64);
            b.bin(x, BinOp::Add, x, delta);
            b.store(x, AddrExpr::region_indexed(cells, j, 8, 0), Ty::I64);
            let h = b.reg();
            masked(b, h, delta, 511);
            table_update(b, netcost, h, 1i64, BinOp::Add);
        });
    });
    b.store(temperature, AddrExpr::region(out, 0), Ty::I64);
    b.finish()
}

/// 181.mcf — network-simplex arc relaxation.
///
/// Hot loop: arcs reference endpoint nodes through index arrays; node
/// potentials are shared (memory-carried) and an unpredictable register
/// chain tracks the best reduced cost. Dependence waiting and
/// communication split the overhead, as in the paper.
pub fn mcf(scale: Scale) -> Program {
    let n = scale.n(900);
    let nodes = 512i64;
    let mut b = ProgramBuilder::new("181.mcf");
    let tail = b.region("tail", (n as u64 + 1) * 8, Ty::I64);
    let head = b.region("head", (n as u64 + 1) * 8, Ty::I64);
    let cost = b.region("cost", (n as u64 + 1) * 8, Ty::I64);
    let pot = b.region("potential", (nodes as u64) * 8, Ty::I64);
    let flows = b.region("flows", (n as u64 + 1) * 8, Ty::I64);
    let out = b.region("out", 64, Ty::I64);
    fill_hash(&mut b, tail, n, 41);
    fill_hash(&mut b, head, n, 43);
    fill_hash(&mut b, cost, n, 47);
    doall_phase(&mut b, cost, flows, n, 23);
    let best = b.reg();
    b.const_i(best, i64::MAX);
    b.counted_loop(0, n, 1, |b, i| {
        let [t, h] = b.regs();
        b.load(t, AddrExpr::region_indexed(tail, i, 8, 0), Ty::I64);
        b.bin(t, BinOp::And, t, nodes - 1);
        b.load(h, AddrExpr::region_indexed(head, i, 8, 0), Ty::I64);
        b.bin(h, BinOp::And, h, nodes - 1);
        let c = b.reg();
        b.load(c, AddrExpr::region_indexed(cost, i, 8, 0), Ty::I64);
        b.alu_chain(c, 22); // pricing arithmetic (private)
                            // reduced = cost + pot[tail] - pot[head]  (shared reads)
        let [pt, red] = b.regs();
        b.load(pt, AddrExpr::region_indexed(pot, t, 8, 0), Ty::I64);
        b.bin(red, BinOp::Add, c, pt);
        let ph = b.reg();
        b.load(ph, AddrExpr::region_indexed(pot, h, 8, 0), Ty::I64);
        b.bin(red, BinOp::Sub, red, ph);
        // Negative reduced cost: pivot (shared write + register chain).
        let neg = b.reg();
        b.bin(neg, BinOp::And, red, 1i64);
        b.if_then(neg, |b| {
            let upd = b.reg();
            b.bin(upd, BinOp::Add, ph, 1i64);
            b.store(upd, AddrExpr::region_indexed(pot, h, 8, 0), Ty::I64);
            b.bin(best, BinOp::MinI, best, red);
            b.bin(best, BinOp::Xor, best, 1i64); // break the reduction pattern
        });
    });
    b.store(best, AddrExpr::region(out, 0), Ty::I64);
    b.finish()
}

/// 256.bzip2 — block counting/transform.
///
/// Hot loop: longer iterations (a burrows-wheeler-ish mixing chain) with
/// a 256-entry shared frequency table. Good speedup (the paper's 12×)
/// but with visible communication and dependence-waiting from the table.
pub fn bzip2(scale: Scale) -> Program {
    let n = scale.n(1100);
    let mut b = ProgramBuilder::new("256.bzip2");
    let block = b.region("block", (n as u64 + 1) * 8, Ty::I64);
    let sorted = b.region("sorted", (n as u64 + 1) * 8, Ty::I64);
    let freq = b.region("freq", 2048, Ty::I64);
    fill_hash(&mut b, block, n, 53);
    doall_phase(&mut b, block, sorted, n, 55);
    b.counted_loop(0, n, 1, |b, i| {
        let x = b.reg();
        b.load(x, AddrExpr::region_indexed(sorted, i, 8, 0), Ty::I64);
        b.alu_chain(x, 46);
        let h = b.reg();
        masked(b, h, x, 255);
        table_update(b, freq, h, 1i64, BinOp::Add);
        b.store(x, AddrExpr::region_indexed(block, i, 8, 0), Ty::I64);
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::interp::{run_to_completion, Env};

    #[test]
    fn all_cint_programs_validate_and_run() {
        for p in [
            gzip(Scale::Test),
            vpr(Scale::Test),
            parser(Scale::Test),
            twolf(Scale::Test),
            mcf(Scale::Test),
            bzip2(Scale::Test),
        ] {
            assert!(p.validate().is_ok(), "{}", p.name);
            let mut env = Env::for_program(&p);
            let t = run_to_completion(&p, &mut env).expect(&p.name);
            assert!(
                t.dyn_insts > 10_000,
                "{} too small: {}",
                p.name,
                t.dyn_insts
            );
        }
    }

    #[test]
    fn programs_are_deterministic() {
        let p1 = gzip(Scale::Test);
        let p2 = gzip(Scale::Test);
        assert_eq!(p1, p2);
        let mut e1 = Env::for_program(&p1);
        let mut e2 = Env::for_program(&p2);
        run_to_completion(&p1, &mut e1).unwrap();
        run_to_completion(&p2, &mut e2).unwrap();
        assert_eq!(e1.mem.digest(), e2.mem.digest());
    }
}
