//! Fundamental identifier and value types shared across the IR.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual register index.
///
/// Registers are program-wide (the IR is not in SSA form); the interpreter
/// allocates one slot per register per thread of execution.
///
/// # Examples
///
/// ```
/// use helix_ir::Reg;
/// let r = Reg(3);
/// assert_eq!(r.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u32);

impl Reg {
    /// Returns the register index as a `usize` suitable for slot lookup.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a basic block within a [`Graph`](crate::Graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Returns the block index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifier of a statically declared memory region.
///
/// Regions declared on the [`Program`](crate::Program) get ids `0..n`;
/// regions created at runtime by the `Alloc` intrinsic receive fresh ids
/// beyond the static ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Returns the region index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Identifier of a sequential segment, carried by `wait`/`signal`
/// instructions and by shared memory accesses.
///
/// Matches the integer parameter of the paper's ISA extension
/// (e.g. `wait 3` / `signal 3`, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// Returns the segment index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// Scalar machine types supported by memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer (also the representation of pointers).
    I64,
    /// 64-bit IEEE float.
    F64,
}

impl Ty {
    /// Size of the type in bytes.
    pub fn size(self) -> u64 {
        match self {
            Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 => 4,
            Ty::I64 | Ty::F64 => 8,
        }
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F64)
    }

    /// Whether two types could legally name the same storage.
    ///
    /// Used by the data-type alias-analysis extension (paper §2.2): accesses
    /// whose types are incompatible cannot reference the same runtime
    /// location in a type-safe program.
    pub fn compatible(self, other: Ty) -> bool {
        self == other
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A runtime scalar value.
///
/// Pointers are represented as [`Value::Int`] holding the byte address.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer (or pointer) value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
}

impl Value {
    /// Integer content of the value.
    ///
    /// Floats are truncated toward zero, mirroring a hardware `cvt`
    /// instruction; this keeps arithmetic total so the interpreter never
    /// panics on type confusion.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => v as i64,
        }
    }

    /// Floating-point content of the value (integers are converted).
    pub fn as_float(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
        }
    }

    /// The value interpreted as a byte address.
    pub fn as_addr(self) -> u64 {
        self.as_int() as u64
    }

    /// Whether the value is "truthy" (non-zero).
    pub fn as_bool(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
        }
    }

    /// Raw 64-bit pattern, used when storing to memory.
    pub fn to_bits(self) -> u64 {
        match self {
            Value::Int(v) => v as u64,
            Value::Float(v) => v.to_bits(),
        }
    }

    /// Reconstruct a value of type `ty` from raw bits loaded from memory.
    pub fn from_bits(bits: u64, ty: Ty) -> Value {
        match ty {
            Ty::F64 => Value::Float(f64::from_bits(bits)),
            Ty::I8 => Value::Int(bits as u8 as i8 as i64),
            Ty::I16 => Value::Int(bits as u16 as i16 as i64),
            Ty::I32 => Value::Int(bits as u32 as i32 as i64),
            Ty::I64 => Value::Int(bits as i64),
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_index() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(Reg(7).index(), 7);
    }

    #[test]
    fn ty_sizes() {
        assert_eq!(Ty::I8.size(), 1);
        assert_eq!(Ty::I16.size(), 2);
        assert_eq!(Ty::I32.size(), 4);
        assert_eq!(Ty::I64.size(), 8);
        assert_eq!(Ty::F64.size(), 8);
        assert!(Ty::F64.is_float());
        assert!(!Ty::I32.is_float());
    }

    #[test]
    fn ty_compatibility_is_exact() {
        assert!(Ty::I32.compatible(Ty::I32));
        assert!(!Ty::I32.compatible(Ty::I64));
        assert!(!Ty::F64.compatible(Ty::I64));
    }

    #[test]
    fn value_int_round_trip_through_bits() {
        for v in [-1i64, 0, 1, i64::MAX, i64::MIN, 42] {
            let val = Value::Int(v);
            assert_eq!(Value::from_bits(val.to_bits(), Ty::I64), val);
        }
    }

    #[test]
    fn value_float_round_trip_through_bits() {
        for v in [0.0f64, -1.5, std::f64::consts::PI, f64::MAX] {
            let val = Value::Float(v);
            assert_eq!(Value::from_bits(val.to_bits(), Ty::F64), val);
        }
    }

    #[test]
    fn narrow_loads_sign_extend() {
        assert_eq!(Value::from_bits(0xFF, Ty::I8), Value::Int(-1));
        assert_eq!(Value::from_bits(0x7F, Ty::I8), Value::Int(127));
        assert_eq!(Value::from_bits(0xFFFF, Ty::I16), Value::Int(-1));
        assert_eq!(Value::from_bits(0xFFFF_FFFF, Ty::I32), Value::Int(-1));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(3).as_float(), 3.0);
        assert_eq!(Value::Float(3.9).as_int(), 3);
        assert!(Value::Int(1).as_bool());
        assert!(!Value::Int(0).as_bool());
        assert_eq!(Value::Int(-8).as_addr(), (-8i64) as u64);
    }

    #[test]
    fn value_default_is_zero() {
        assert_eq!(Value::default(), Value::Int(0));
    }
}
